"""Record the reprolint engine baseline.

Times one full lint of the repo (``src tools tests examples``) through
:func:`tools.reprolint.analyze_project` and writes the numbers to
``BENCH_lint.json`` at the repo root:

* **cold** — empty cache, every file parsed and analyzed, whole-program
  pass (module graph, call graph, taint + effect fixpoints) built from
  scratch; the program-pass share is recorded separately as
  ``program_pass_s`` so effect-analysis cost is visible over time;
* **warm** — same cache, nothing changed: every per-file result loads
  by content hash and the program pass replays (the incremental
  promise: ``files_analyzed == 0``);
* **parallel** — cold again at 2 and 4 worker processes.

Every variant is asserted byte-identical to the cold serial report
before its timing is recorded, so the numbers can never drift apart
from correctness.  Timing lives here in ``tools/`` because
``src/repro`` is wall-clock-free by the determinism contract
(reprolint R001).

Usage::

    PYTHONPATH=src python tools/bench_lint.py            # records JSON
    PYTHONPATH=src python tools/bench_lint.py --quick    # CI smoke

The ``--quick`` mode runs the identical measurement but only prints
it; ``BENCH_lint.json`` is refreshed deliberately, without ``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tools.reprolint import ProjectResult, analyze_project  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_lint.json"
TARGETS = ("src", "tools", "tests", "examples")


def _report(result: ProjectResult) -> List[str]:
    return [violation.render()
            for violation in result.reported(audit_suppressions=True)]


def bench() -> Dict[str, object]:
    roots = [str(REPO_ROOT / target) for target in TARGETS]
    results: Dict[str, object] = {
        "targets": list(TARGETS),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }

    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "cache"
        start = time.perf_counter()
        cold = analyze_project(roots, cache_dir=cache)
        cold_s = time.perf_counter() - start
        reference = _report(cold)
        results["files_total"] = cold.stats.files_total
        results["violations"] = len(reference)
        results["cold_s"] = round(cold_s, 3)
        results["program_pass_s"] = round(cold.stats.program_pass_s, 3)
        print(f"cold: {cold_s:.2f}s ({cold.stats.files_total} files, "
              f"{len(reference)} findings, program pass incl. effect "
              f"fixpoint {cold.stats.program_pass_s:.2f}s)")

        start = time.perf_counter()
        warm = analyze_project(roots, cache_dir=cache)
        warm_s = time.perf_counter() - start
        if warm.stats.files_analyzed != 0:
            raise AssertionError(
                f"warm run re-analyzed {warm.stats.files_analyzed} files")
        if warm.stats.program_rerun:
            raise AssertionError("warm run re-ran the program pass")
        if _report(warm) != reference:
            raise AssertionError("warm report differs from cold")
        results["warm_s"] = round(warm_s, 3)
        results["warm_speedup"] = round(cold_s / warm_s, 2)
        print(f"warm: {warm_s:.2f}s (speedup {cold_s / warm_s:.2f}x, "
              f"{warm.stats.files_cached} cached, output identical)")

    parallel_timings: Dict[str, float] = {}
    for jobs in (2, 4):
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            parallel = analyze_project(roots, cache_dir=Path(tmp) / "cache",
                                       jobs=jobs)
            elapsed = time.perf_counter() - start
        if _report(parallel) != reference:
            raise AssertionError(f"jobs={jobs} report differs from serial")
        parallel_timings[str(jobs)] = round(elapsed, 3)
        print(f"parallel jobs={jobs}: {elapsed:.2f}s "
              f"(speedup {cold_s / elapsed:.2f}x, output identical)")
    results["parallel_cold_s"] = parallel_timings
    if (os.cpu_count() or 1) == 1:
        # Multi-worker numbers on a single core measure pool overhead,
        # not parallel speedup — flag them so tooling does not compare
        # them against multi-core baselines.
        results["constrained"] = True
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the reprolint incremental engine.")
    parser.add_argument("--quick", action="store_true",
                        help="run the measurement but do not write "
                             "BENCH_lint.json (CI smoke mode)")
    args = parser.parse_args(argv)

    results = bench()
    rendered = json.dumps(results, indent=2, sort_keys=True)
    if args.quick:
        print(rendered)
    else:
        OUTPUT.write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
