"""Record the mining-pipeline performance baseline.

Times the two single-day mine+analyze paths and the calendar miner on
a fixed simulated workload and writes the numbers to
``BENCH_miner.json`` at the repo root:

* **legacy** — per-entry scans: ``compute_hit_rates`` +
  ``DisposableZoneRanker.run_day`` + the entry-list analysis functions
  (daily report, hourly volumes, clients per name, CHR split);
* **digest** — one ``build_day_digest`` pass + the columnar
  counterparts (``run_digest`` and the ``*_from_digest`` analyses);
* **calendar** — :class:`repro.core.mining_pipeline.CalendarMiner` at
  1/2/4 workers (identical results, wall-clock only);
* **result cache** — a cold session that stores every day's mining
  result, then a warm session that replays it without mining.

Every timed path is asserted equal to the legacy oracle while being
timed.  The recorded file captures ``cpu_count``/``available_cpus``;
on a single schedulable core the multi-worker timings measure process
overhead, not speedup, and are flagged ``constrained``.  Each parallel
calendar run also records its IPC payload (``ipc_payload_bytes``, the
packed digest-column bytes dispatched to workers) next to
``legacy_pickle_payload_bytes``, what the retired dataset-pickling
dispatch would have shipped (see docs/PERFORMANCE.md §6).  Timing
lives here in ``tools/`` because ``src/repro`` is wall-clock-free by
the determinism contract (reprolint R001).

Usage::

    PYTHONPATH=src python tools/bench_miner.py            # MEDIUM
    PYTHONPATH=src python tools/bench_miner.py --quick    # SMALL, CI

The ``--quick`` mode runs the SMALL profile with few events so CI can
smoke-test the whole harness in seconds; its numbers are not meant to
be compared, only to prove the paths still run and still agree.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.chrdist import (chr_split,  # noqa: E402
                                    chr_split_from_digest)
from repro.analysis.clients import (clients_per_name,  # noqa: E402
                                    clients_per_name_from_digest)
from repro.analysis.summary import (build_daily_report,  # noqa: E402
                                    build_daily_report_from_digest)
from repro.analysis.volume import (hourly_volumes,  # noqa: E402
                                   hourly_volumes_from_digest)
from repro.core.classifier import LadTreeClassifier  # noqa: E402
from repro.core.features import FeatureExtractor  # noqa: E402
from repro.core.hitrate import (compute_hit_rates,  # noqa: E402
                                hit_rates_from_digest)
from repro.core.interning import build_day_digest  # noqa: E402
from repro.core.labeling import build_training_set  # noqa: E402
from repro.core.miner import MinerConfig  # noqa: E402
from repro.core.mining_pipeline import (CalendarMiner,  # noqa: E402
                                        MinerResultCache)
from repro.core.parallelism import available_cpu_count  # noqa: E402
from repro.core.ranking import (DailyMiningResult,  # noqa: E402
                                DisposableZoneRanker,
                                build_tree_from_digest)
from repro.experiments.context import (MEDIUM, SMALL,  # noqa: E402
                                       TRAINING_DATE, ScaleProfile)
from repro.pdns.records import FpDnsDataset  # noqa: E402
from repro.traffic.simulate import PAPER_DATES, TraceSimulator  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_miner.json"


def _prepare(profile: ScaleProfile, n_days: int, n_events: Optional[int]
             ) -> Tuple[List[FpDnsDataset], LadTreeClassifier]:
    """Simulate the bench days plus the training day; train the model."""
    bench_dates = PAPER_DATES[:n_days]
    dates = sorted([*bench_dates, TRAINING_DATE], key=lambda d: d.day_index)
    simulator = TraceSimulator(profile.simulator_config())
    days = dict(zip([date.label for date in dates],
                    simulator.run_days(dates, n_events=n_events)))
    digest = build_day_digest(days[TRAINING_DATE.label])
    tree = build_tree_from_digest(digest)
    extractor = FeatureExtractor(tree, hit_rates_from_digest(digest))
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)
    return [days[date.label] for date in bench_dates], classifier


def _legacy_day(dataset: FpDnsDataset, classifier: LadTreeClassifier) -> tuple:
    """The oracle: one day mined and analysed through per-entry scans."""
    hit_rates = compute_hit_rates(dataset)
    ranker = DisposableZoneRanker(classifier, MinerConfig())
    result = ranker.run_day(dataset, hit_rates)
    groups = result.groups
    report = build_daily_report(dataset, hit_rates=hit_rates,
                                disposable_groups=groups)
    volumes = (hourly_volumes(dataset, "below"),
               hourly_volumes(dataset, "above"))
    clients = clients_per_name(dataset, groups)
    split = chr_split(hit_rates, groups)
    return result, report, volumes, clients, split


def _digest_day(dataset: FpDnsDataset, classifier: LadTreeClassifier) -> tuple:
    """The same day through one digest pass + columnar consumers."""
    digest = build_day_digest(dataset)
    hit_rates = hit_rates_from_digest(digest)
    ranker = DisposableZoneRanker(classifier, MinerConfig())
    result = ranker.run_digest(digest, hit_rates)
    groups = result.groups
    report = build_daily_report_from_digest(digest, hit_rates=hit_rates,
                                            disposable_groups=groups)
    volumes = (hourly_volumes_from_digest(digest, "below"),
               hourly_volumes_from_digest(digest, "above"))
    clients = clients_per_name_from_digest(digest, groups)
    split = chr_split_from_digest(digest, groups, hit_rates)
    return result, report, volumes, clients, split


def _check_results_equal(reference: DailyMiningResult,
                         candidate: DailyMiningResult, label: str) -> None:
    """Mining results must agree exactly (findings compared as sets:
    the digest path orders findings by deterministic traversal, the
    legacy path by ``set`` iteration)."""
    same = (reference.day == candidate.day
            and set(reference.findings) == set(candidate.findings)
            and reference.queried_domains == candidate.queried_domains
            and reference.resolved_domains == candidate.resolved_domains
            and reference.distinct_rrs == candidate.distinct_rrs
            and reference.disposable_queried == candidate.disposable_queried
            and reference.disposable_resolved == candidate.disposable_resolved
            and reference.disposable_rrs == candidate.disposable_rrs)
    if not same:
        raise AssertionError(f"{label} differs from the legacy oracle "
                             f"on {reference.day}")


def _check_day_equal(legacy: tuple, digest: tuple) -> None:
    l_result, l_report, l_volumes, l_clients, l_split = legacy
    d_result, d_report, d_volumes, d_clients, d_split = digest
    _check_results_equal(l_result, d_result, "digest mining")
    assert l_report == d_report, "daily report differs"
    for l_series, d_series in zip(l_volumes, d_volumes):
        for column in ("total", "nxdomain", "google", "akamai"):
            assert np.array_equal(getattr(l_series, column),
                                  getattr(d_series, column)), \
                f"volume column {column} differs"
    assert np.array_equal(l_clients.disposable_counts,
                          d_clients.disposable_counts)
    assert np.array_equal(l_clients.other_counts, d_clients.other_counts)
    assert l_split.disposable_zero_fraction == d_split.disposable_zero_fraction
    assert l_split.non_disposable_median == d_split.non_disposable_median


def bench(profile: ScaleProfile, n_days: int,
          n_events: Optional[int]) -> Dict[str, object]:
    datasets, classifier = _prepare(profile, n_days, n_events)
    results: Dict[str, object] = {
        "profile": profile.name,
        "n_days": len(datasets),
        "events_per_day": n_events or profile.events_per_day,
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpu_count(),
        "python": sys.version.split()[0],
    }

    # -- single day: legacy per-entry vs columnar digest -----------------
    # Grouped best-of-N with the collector paused — the ``timeit``
    # discipline.  All repeats of one path run back to back and the
    # minimum of each group is the comparable number; the GC is
    # disabled during the timed regions (as ``timeit`` does by
    # default) because generational passes over the long-lived
    # simulated datasets otherwise charge each path a load-dependent,
    # allocation-pattern-dependent tax that drowns the real ratio on
    # the shared recording box.  Equality is asserted on the first
    # result of each group.
    day = datasets[0]
    legacy_s = digest_s = float("inf")
    legacy = digest = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(5):
            start = time.perf_counter()
            attempt = _legacy_day(day, classifier)
            legacy_s = min(legacy_s, time.perf_counter() - start)
            legacy = legacy if legacy is not None else attempt
        gc.collect()
        for _ in range(5):
            start = time.perf_counter()
            attempt = _digest_day(day, classifier)
            digest_s = min(digest_s, time.perf_counter() - start)
            digest = digest if digest is not None else attempt
    finally:
        gc.enable()
    assert legacy is not None and digest is not None
    _check_day_equal(legacy, digest)
    results["single_day_legacy_s"] = round(legacy_s, 3)
    results["single_day_digest_s"] = round(digest_s, 3)
    results["single_day_speedup"] = round(legacy_s / digest_s, 2)
    print(f"single day: legacy {legacy_s:.2f}s, digest {digest_s:.2f}s "
          f"(speedup {legacy_s / digest_s:.2f}x, output identical)")

    # -- calendar mining at 1/2/4 workers --------------------------------
    oracle = [DisposableZoneRanker(classifier, MinerConfig()).run_day(dataset)
              for dataset in datasets]
    # What the pre-columnar dispatch would have pickled to the pool:
    # the datasets themselves, entry lists and all.  The digest-column
    # dispatch's ``ipc_payload_bytes`` below is the after number.
    legacy_payload = sum(
        len(pickle.dumps(dataset, protocol=pickle.HIGHEST_PROTOCOL))
        for dataset in datasets)
    results["legacy_pickle_payload_bytes"] = legacy_payload
    print(f"legacy pickled payload: {legacy_payload} bytes")

    serial_results: Optional[List[DailyMiningResult]] = None
    calendar_timings: Dict[str, float] = {}
    ipc_payloads: Dict[str, int] = {}
    for n_workers in (1, 2, 4):
        miner = CalendarMiner(classifier, MinerConfig(), n_workers=n_workers)
        start = time.perf_counter()
        mined = miner.mine_calendar(datasets)
        elapsed = time.perf_counter() - start
        for reference, candidate in zip(oracle, mined):
            _check_results_equal(reference, candidate,
                                 f"calendar(n_workers={n_workers})")
        if serial_results is None:
            serial_results = mined
        else:
            assert mined == serial_results, \
                f"n_workers={n_workers} diverged from the 1-worker run"
        calendar_timings[str(n_workers)] = round(elapsed, 3)
        ipc = miner.last_ipc
        assert ipc is not None
        ipc_payloads[str(n_workers)] = ipc.payload_bytes
        print(f"calendar n_workers={n_workers}: {elapsed:.2f}s "
              f"(ipc {ipc.mode} {ipc.payload_bytes} bytes, "
              "output identical)")
        if ipc.payload_bytes:
            results["ipc_mode"] = ipc.mode
    results["calendar_s"] = calendar_timings
    results["ipc_payload_bytes"] = ipc_payloads
    if available_cpu_count() == 1:
        # Multi-worker numbers on a single core measure process
        # overhead, not parallel speedup — flag them so readers (and
        # tooling) do not compare them against multi-core baselines.
        results["constrained"] = True

    # -- miner result cache: cold store, warm replay ---------------------
    with tempfile.TemporaryDirectory() as tmp:
        cold_cache = MinerResultCache(tmp)
        cold_miner = CalendarMiner(classifier, MinerConfig(),
                                   cache=cold_cache)
        start = time.perf_counter()
        cold = cold_miner.mine_calendar(datasets)
        cold_s = time.perf_counter() - start
        warm_cache = MinerResultCache(tmp)
        warm_miner = CalendarMiner(classifier, MinerConfig(),
                                   cache=warm_cache)
        start = time.perf_counter()
        warm = warm_miner.mine_calendar(datasets)
        warm_s = time.perf_counter() - start
        assert warm_cache.misses == 0, "warm session missed the cache"
        assert warm == cold, "cache replay diverged from the cold run"
        for reference, candidate in zip(oracle, warm):
            _check_results_equal(reference, candidate, "cache replay")
    results["cache_cold_s"] = round(cold_s, 3)
    results["cache_warm_s"] = round(warm_s, 3)
    results["cache_warm_speedup"] = round(cold_s / warm_s, 2)
    print(f"result cache: cold {cold_s:.2f}s, warm {warm_s:.2f}s "
          f"(speedup {cold_s / warm_s:.2f}x, {warm_cache.hits} hits, "
          "output identical)")
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="SMALL profile, few events: CI smoke mode "
                             "(does not overwrite the recorded baseline)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write results (default {OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        results = bench(SMALL, n_days=2, n_events=4_000)
        results["mode"] = "quick"
        print(json.dumps(results, indent=2))
        return 0

    results = bench(MEDIUM, n_days=3, n_events=None)
    results["mode"] = "baseline"
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
