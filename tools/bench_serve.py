"""Record the serving-engine performance baseline.

Replays a realistic qname stream (the reference day's below-the-
resolver query column) against the :mod:`repro.service` classification
engine three ways and writes the numbers to ``BENCH_serve.json`` at
the repo root:

* **single** — the per-name oracle: one ``classify_one`` call per
  qname (fresh ``depth_groups`` walk + 1-row model call each time);
* **batched cold** — ``classify_batch`` in serving-sized chunks from
  the engine's cold-start state (``clear_caches()``): interned
  resolution, columnar feature extraction per distinct (zone, depth)
  group, one stacked ``decision_function`` call per chunk;
* **batched warm** — the same chunks again with every cache hot:
  verdicts come straight from the per-qname memo (one dict probe per
  name), no resolution and no extraction at all.

Every batched pass is asserted verdict-for-verdict equal to the
single-name oracle *while being timed* (frozen-dataclass equality —
same reasons, scores, probabilities, bit for bit).  The baseline mode
additionally asserts the two ISSUE-8 acceptance ratios: batched ≥ 5×
single QPS and warm ≥ 20× cold QPS.  ``cpu_count``/``available_cpus``
are recorded and single-core boxes are flagged ``constrained``.
Timing lives here in ``tools/`` because ``src/repro`` is
wall-clock-free by the determinism contract (reprolint R001).

Usage::

    PYTHONPATH=src python tools/bench_serve.py            # MEDIUM
    PYTHONPATH=src python tools/bench_serve.py --quick    # SMALL, CI

The ``--quick`` mode runs the SMALL profile with few events so CI can
smoke-test the whole path in seconds; it checks equality but not the
throughput ratios, and does not overwrite the recorded baseline.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.classifier import LadTreeClassifier  # noqa: E402
from repro.core.classifier.compiled import compile_lad_tree  # noqa: E402
from repro.core.features import FeatureExtractor  # noqa: E402
from repro.core.hitrate import hit_rates_from_digest  # noqa: E402
from repro.core.interning import DayDigest, build_day_digest  # noqa: E402
from repro.core.labeling import build_training_set  # noqa: E402
from repro.core.parallelism import available_cpu_count  # noqa: E402
from repro.core.ranking import build_tree_from_digest  # noqa: E402
from repro.experiments.context import (MEDIUM, SMALL,  # noqa: E402
                                       TRAINING_DATE, ScaleProfile)
from repro.service.engine import (ClassificationEngine,  # noqa: E402
                                  EngineConfig, Verdict)
from repro.traffic.simulate import PAPER_DATES, TraceSimulator  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_serve.json"


def _prepare(profile: ScaleProfile, n_events: Optional[int]
             ) -> Tuple[DayDigest, ClassificationEngine]:
    """Simulate the training + reference days; build the engine."""
    reference = PAPER_DATES[0]
    dates = sorted([reference, TRAINING_DATE], key=lambda d: d.day_index)
    simulator = TraceSimulator(profile.simulator_config())
    days = dict(zip([date.label for date in dates],
                    simulator.run_days(dates, n_events=n_events)))

    training_digest = build_day_digest(days[TRAINING_DATE.label])
    tree = build_tree_from_digest(training_digest)
    extractor = FeatureExtractor(tree,
                                 hit_rates_from_digest(training_digest))
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)

    serving_digest = build_day_digest(days[reference.label])
    engine = ClassificationEngine.from_digest(
        serving_digest, compile_lad_tree(classifier),
        # Roomy cache: the bench asserts the warm pass never evicts,
        # so the warm number measures pure cache-hit serving.
        config=EngineConfig(cache_size=65_536))
    return serving_digest, engine


def _query_stream(digest: DayDigest, n_names: int) -> List[str]:
    """The first ``n_names`` below-stream queries of the day, replayed
    in arrival order — real traffic shape: hot names repeat, NXDOMAIN
    names map to unknown groups, apexes and effective TLDs appear."""
    table = digest.names
    return [table.name(int(nid))
            for nid in digest.below.name_ids[:n_names]]


def _chunks(stream: List[str], size: int) -> List[List[str]]:
    return [stream[start:start + size]
            for start in range(0, len(stream), size)]


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    values = np.array(latencies, dtype=float) * 1000.0  # ms
    return {"p50_ms": round(float(np.percentile(values, 50)), 3),
            "p95_ms": round(float(np.percentile(values, 95)), 3),
            "p99_ms": round(float(np.percentile(values, 99)), 3)}


def _run_batched(engine: ClassificationEngine, chunks: List[List[str]]
                 ) -> Tuple[float, List[float], List[Verdict]]:
    """One timed pass over all chunks; per-chunk latencies recorded."""
    verdicts: List[Verdict] = []
    latencies: List[float] = []
    start = time.perf_counter()
    for chunk in chunks:
        chunk_start = time.perf_counter()
        verdicts.extend(engine.classify_batch(chunk))
        latencies.append(time.perf_counter() - chunk_start)
    return time.perf_counter() - start, latencies, verdicts


def bench(profile: ScaleProfile, n_events: Optional[int], n_names: int,
          chunk_size: int, repeats: int,
          assert_ratios: bool) -> Dict[str, object]:
    digest, engine = _prepare(profile, n_events)
    stream = _query_stream(digest, n_names)
    chunks = _chunks(stream, chunk_size)
    distinct_names = len(set(stream))

    results: Dict[str, object] = {
        "profile": profile.name,
        "events_per_day": n_events or profile.events_per_day,
        "stream_names": len(stream),
        "distinct_names": distinct_names,
        "chunk_size": chunk_size,
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpu_count(),
        "python": sys.version.split()[0],
    }
    if available_cpu_count() == 1:
        results["constrained"] = True

    # Grouped best-of-N with the collector paused (the ``timeit``
    # discipline, as in tools/bench_miner.py): all repeats of one path
    # run back to back and the minimum is the comparable number.
    gc.collect()
    gc.disable()
    try:
        # -- single-name oracle loop ---------------------------------
        single_s = float("inf")
        oracle: Optional[List[Verdict]] = None
        for _ in range(repeats):
            start = time.perf_counter()
            attempt = [engine.classify_one(qname) for qname in stream]
            single_s = min(single_s, time.perf_counter() - start)
            oracle = oracle if oracle is not None else attempt

        # -- batched, cold verdict cache -----------------------------
        cold_s = float("inf")
        cold_latencies: List[float] = []
        batched: Optional[List[Verdict]] = None
        for _ in range(repeats):
            engine.clear_caches()
            elapsed, latencies, attempt = _run_batched(engine, chunks)
            if elapsed < cold_s:
                cold_s, cold_latencies = elapsed, latencies
            if batched is None:
                batched = attempt
                assert batched == oracle, \
                    "batched verdicts differ from the per-name oracle"

        # -- batched, warm verdict cache -----------------------------
        # The last cold pass left the verdict memo and the group LRU
        # populated; every warm pass must be answered without a single
        # new cache miss or group extraction.
        warm_s = float("inf")
        warm_latencies: List[float] = []
        warm: Optional[List[Verdict]] = None
        misses_before = engine.cache.misses
        extractions_before = engine.groups_extracted
        for _ in range(repeats):
            elapsed, latencies, attempt = _run_batched(engine, chunks)
            if elapsed < warm_s:
                warm_s, warm_latencies = elapsed, latencies
            if warm is None:
                warm = attempt
                assert warm == oracle, \
                    "cache-warm verdicts differ from the per-name oracle"
        assert engine.cache.misses == misses_before, \
            "warm passes missed the verdict cache"
        assert engine.groups_extracted == extractions_before, \
            "warm passes re-extracted group features"
        assert engine.cache.evictions == 0, \
            "verdict cache evicted during the bench (cache_size too small)"
    finally:
        gc.enable()

    assert oracle is not None
    group_keys = {(verdict.zone, verdict.depth) for verdict in oracle
                  if verdict.reason in ("classified", "unknown-group",
                                        "small-group")}
    results["distinct_group_keys"] = len(group_keys)
    results["verdict_reasons"] = {
        reason: sum(1 for verdict in oracle if verdict.reason == reason)
        for reason in sorted({verdict.reason for verdict in oracle})}
    results["disposable_fraction"] = round(
        sum(1 for verdict in oracle if verdict.disposable) / len(oracle), 4)

    n = len(stream)
    single_qps = n / single_s
    cold_qps = n / cold_s
    warm_qps = n / warm_s
    results["single_s"] = round(single_s, 4)
    results["batched_cold_s"] = round(cold_s, 4)
    results["batched_warm_s"] = round(warm_s, 4)
    results["single_qps"] = round(single_qps, 1)
    results["batched_cold_qps"] = round(cold_qps, 1)
    results["batched_warm_qps"] = round(warm_qps, 1)
    results["batched_vs_single_speedup"] = round(cold_qps / single_qps, 2)
    results["warm_vs_cold_speedup"] = round(warm_qps / cold_qps, 2)
    results["cold_chunk_latency"] = _percentiles(cold_latencies)
    results["warm_chunk_latency"] = _percentiles(warm_latencies)
    results["verdict_cache"] = engine.cache.stats()

    print(f"single:       {single_s:.3f}s  ({single_qps:,.0f} qps)")
    print(f"batched cold: {cold_s:.3f}s  ({cold_qps:,.0f} qps, "
          f"{cold_qps / single_qps:.1f}x single, verdicts identical)")
    print(f"batched warm: {warm_s:.3f}s  ({warm_qps:,.0f} qps, "
          f"{warm_qps / cold_qps:.1f}x cold, verdicts identical)")

    if assert_ratios:
        assert cold_qps / single_qps >= 5.0, \
            (f"batched engine is only {cold_qps / single_qps:.2f}x the "
             f"single-name loop (acceptance floor: 5x)")
        assert warm_qps / cold_qps >= 20.0, \
            (f"cache-warm serving is only {warm_qps / cold_qps:.2f}x "
             f"cold (acceptance floor: 20x)")
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="SMALL profile, few events: CI smoke mode "
                             "(equality checks only; does not overwrite "
                             "the recorded baseline)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write results (default {OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        results = bench(SMALL, n_events=4_000, n_names=2_000,
                        chunk_size=256, repeats=2, assert_ratios=False)
        results["mode"] = "quick"
        print(json.dumps(results, indent=2))
        return 0

    results = bench(MEDIUM, n_events=None, n_names=12_000,
                    chunk_size=1_024, repeats=3, assert_ratios=True)
    results["mode"] = "baseline"
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
