"""Record the pdns-store baseline: in-memory database vs segmented store.

Replays a simulated multi-month ingest calendar (92 days by default;
the paper's year-scale collection motivates the on-disk layout) into
both pdns backends and writes the numbers to ``BENCH_pdns.json`` at
the repo root:

* **peak memory** — each backend ingests the whole calendar inside a
  fresh subprocess and reports ``ru_maxrss``; a third *baseline*
  subprocess generates the same workload without ingesting anything so
  the interpreter + workload cost can be subtracted.  The headline
  ratio compares the *deltas* attributable to the backends.
* **query latency** — point lookups (``first_seen``) and zone queries
  (``names_under_zone``) timed on both backends, with every timed
  result compared against the in-memory oracle.
* **prefilter effectiveness** — the store's opened/skipped counters
  over the timed point lookups; skipping means a segment answered from
  its sorted-hash prefilters without its payload being touched.
* **compaction** — full-store compaction is timed, and determinism is
  re-proven at bench scale: two copies of the segment directory are
  compacted along different merge schedules and must end up with
  byte-identical files.

Timing lives here in ``tools/`` because ``src/repro`` is
wall-clock-free by the determinism contract (reprolint R001).

Usage::

    PYTHONPATH=src python tools/bench_pdns.py            # 92-day baseline
    PYTHONPATH=src python tools/bench_pdns.py --quick    # 10-day CI smoke

``--quick`` replays a 10-day calendar so CI can smoke the harness in
seconds; it still asserts oracle equality, prefilter skipping and
compaction determinism, but does not overwrite the recorded baseline
and does not enforce the memory ratio (too small to be meaningful).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import resource
import shutil
import subprocess
import sys
import tempfile
import time
from datetime import date, timedelta
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.records import RRKey  # noqa: E402
from repro.dns.message import RRType  # noqa: E402
from repro.pdns.database import PassiveDnsDatabase  # noqa: E402
from repro.pdns.segments import SEGMENT_SUFFIX  # noqa: E402
from repro.pdns.store import SegmentedPdnsStore  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_pdns.json"

REPEATS = 3

#: Rare zone that only appears on every 9th calendar day, so zone
#: queries for it can demonstrate prefilter segment skipping.
BURST_ZONE = "burst.example.org"

FIRST_DAY = date(2011, 2, 22)  # the paper's collection start


def day_label(index: int) -> str:
    return (FIRST_DAY + timedelta(days=index)).isoformat()


def day_keys(index: int, n_fresh: int, n_stable: int) -> List[RRKey]:
    """Deterministic workload for one calendar day.

    Mimics the paper's traffic mix: a large churning population of
    single-use names under a handful of disposable service zones, a
    stable core that repeats every day (exercising cross-segment
    dedup), and an occasional burst under a rare zone.
    """
    keys: List[RRKey] = [
        (f"u{index:03d}x{i:05d}.metric.cdn-{i % 7}.example.com",
         RRType.A, f"10.{(i // 250) % 200}.{i % 250}.{index % 200 + 1}")
        for i in range(n_fresh)]
    keys.extend(
        (f"stable{i:04d}.www.example.net", RRType.A, f"192.0.2.{i % 200 + 1}")
        for i in range(n_stable))
    if index % 9 == 0:
        keys.extend(
            (f"b{index:03d}x{i:03d}.{BURST_ZONE}", RRType.A,
             f"198.51.100.{i % 200 + 1}")
            for i in range(60))
    return keys


def _best_of(repeats: int, run: Callable[[], object]
             ) -> Tuple[float, object]:
    """Grouped best-of-N with the collector paused (timeit discipline);
    returns (min seconds, first result)."""
    best = float("inf")
    first: Optional[object] = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            result = run()
            best = min(best, time.perf_counter() - start)
            if first is None:
                first = result
    finally:
        gc.enable()
    assert first is not None
    return best, first


# ---------------------------------------------------------------- workers

def run_worker(kind: str, n_days: int, n_fresh: int, n_stable: int,
               directory: Optional[str]) -> int:
    """Subprocess body: replay the calendar into one backend (or none,
    for the baseline probe) and print peak RSS as JSON on stdout."""
    rows = 0
    backend: object = None
    if kind == "memory":
        backend = PassiveDnsDatabase()
    elif kind == "segmented":
        assert directory is not None, "--worker segmented needs --dir"
        backend = SegmentedPdnsStore(directory)
    for index in range(n_days):
        keys = day_keys(index, n_fresh, n_stable)
        rows += len(keys)
        if backend is not None:
            backend.ingest_rrs(day_label(index), keys)
    sample = [day_keys(n_days // 2, n_fresh, n_stable)[i] for i in range(50)]
    if backend is not None:  # peak must cover the query path too
        for key in sample:
            backend.first_seen(key)
        backend.names_under_zone(BURST_ZONE)
    payload: Dict[str, object] = {
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "rows_replayed": rows,
    }
    if isinstance(backend, SegmentedPdnsStore):
        payload["storage_bytes"] = backend.storage_bytes()
        payload["n_segments"] = backend.stats().n_segments
        payload["db_rows"] = len(backend)
    elif isinstance(backend, PassiveDnsDatabase):
        payload["db_rows"] = len(backend)
    print(json.dumps(payload))
    return 0


def _probe(kind: str, n_days: int, n_fresh: int, n_stable: int,
           directory: Optional[str] = None) -> Dict[str, object]:
    command = [sys.executable, str(Path(__file__).resolve()),
               "--worker", kind, "--days", str(n_days),
               "--fresh", str(n_fresh), "--stable", str(n_stable)]
    if directory is not None:
        command += ["--dir", directory]
    completed = subprocess.run(command, capture_output=True, text=True,
                               check=True)
    return json.loads(completed.stdout)


# ------------------------------------------------------------ bench body

def _copy_segments(source: Path, target: Path) -> None:
    target.mkdir(parents=True, exist_ok=True)
    for path in sorted(source.glob(f"*{SEGMENT_SUFFIX}")):
        shutil.copy(path, target / path.name)


def _segment_digests(directory: Path) -> List[str]:
    import hashlib
    return sorted(
        hashlib.sha256(path.read_bytes()).hexdigest()
        for path in directory.glob(f"*{SEGMENT_SUFFIX}"))


def bench(n_days: int, n_fresh: int, n_stable: int,
          quick: bool) -> Dict[str, object]:
    results: Dict[str, object] = {
        "n_days": n_days,
        "fresh_per_day": n_fresh,
        "stable_per_day": n_stable,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    with tempfile.TemporaryDirectory() as tmp:
        segments_dir = Path(tmp) / "segments"
        segments_dir.mkdir()

        # -- peak memory: one subprocess per backend ----------------------
        baseline = _probe("baseline", n_days, n_fresh, n_stable)
        memory = _probe("memory", n_days, n_fresh, n_stable)
        segmented = _probe("segmented", n_days, n_fresh, n_stable,
                           directory=str(segments_dir))
        assert memory["db_rows"] == segmented["db_rows"], \
            "backends disagree on unique row count"
        base_kb = int(baseline["ru_maxrss_kb"])
        memory_delta_kb = max(int(memory["ru_maxrss_kb"]) - base_kb, 1)
        segmented_delta_kb = max(int(segmented["ru_maxrss_kb"]) - base_kb, 1)
        mem_ratio = memory_delta_kb / segmented_delta_kb
        results["rows_unique"] = memory["db_rows"]
        results["rows_replayed"] = memory["rows_replayed"]
        results["peak_rss_baseline_kb"] = base_kb
        results["peak_rss_memory_kb"] = memory["ru_maxrss_kb"]
        results["peak_rss_segmented_kb"] = segmented["ru_maxrss_kb"]
        results["peak_rss_delta_memory_kb"] = memory_delta_kb
        results["peak_rss_delta_segmented_kb"] = segmented_delta_kb
        results["peak_rss_ratio"] = round(mem_ratio, 2)
        results["segments_on_disk"] = segmented["n_segments"]
        results["storage_bytes"] = segmented["storage_bytes"]
        print(f"peak RSS over interpreter baseline: in-memory "
              f"{memory_delta_kb / 1024:.0f} MiB, segmented "
              f"{segmented_delta_kb / 1024:.0f} MiB "
              f"({mem_ratio:.1f}x lower)")
        if not quick:
            assert n_days >= 90, "baseline must replay a 90+ day calendar"
            assert mem_ratio >= 5.0, \
                f"segmented store must beat in-memory RSS 5x, got " \
                f"{mem_ratio:.1f}x"

        # -- oracle + reopened store in this process ----------------------
        oracle = PassiveDnsDatabase()
        for index in range(n_days):
            oracle.ingest_rrs(day_label(index),
                              day_keys(index, n_fresh, n_stable))
        store = SegmentedPdnsStore(segments_dir)
        assert store.new_records_per_day() == oracle.new_records_per_day(), \
            "reopened store ledger diverged from oracle"

        # Point keys spread across the calendar, grouped by day so the
        # resident-segment LRU behaves the way a scan would.
        point_sample = [key
                        for index in range(0, n_days, max(n_days // 10, 1))
                        for key in day_keys(index, n_fresh, n_stable)[:30]]

        def points_memory() -> List[Optional[str]]:
            return [oracle.first_seen(key) for key in point_sample]

        def points_segmented() -> List[Optional[str]]:
            return [store.first_seen(key) for key in point_sample]

        store.reset_counters()
        seg_point_s, seg_points = _best_of(REPEATS, points_segmented)
        stats = store.stats()
        probes = stats.segments_opened + stats.segments_skipped
        skip_ratio = stats.segments_skipped / max(probes, 1)
        mem_point_s, mem_points = _best_of(REPEATS, points_memory)
        assert seg_points == mem_points, "point lookups diverged from oracle"
        assert None not in mem_points, "point sample hit an unknown key"
        assert skip_ratio >= 0.5, \
            f"prefilters must skip >=50% of segments, got {skip_ratio:.0%}"
        results["point_lookups"] = len(point_sample)
        results["point_memory_s"] = round(mem_point_s, 4)
        results["point_segmented_s"] = round(seg_point_s, 4)
        results["prefilter_skip_ratio"] = round(skip_ratio, 4)
        print(f"point lookups ({len(point_sample)}): in-memory "
              f"{mem_point_s:.3f}s, segmented {seg_point_s:.3f}s, "
              f"prefilters skipped {skip_ratio:.1%} of segment probes "
              "(results identical)")

        def zones_memory() -> List[object]:
            return [sorted(oracle.names_under_zone(BURST_ZONE)),
                    sorted(oracle.names_under_zone("absent.example"))]

        def zones_segmented() -> List[object]:
            return [sorted(store.names_under_zone(BURST_ZONE)),
                    sorted(store.names_under_zone("absent.example"))]

        store.reset_counters()
        seg_zone_s, seg_zones = _best_of(REPEATS, zones_segmented)
        zone_stats = store.stats()
        mem_zone_s, mem_zones = _best_of(REPEATS, zones_memory)
        assert seg_zones == mem_zones, "zone queries diverged from oracle"
        assert seg_zones[0], "burst zone unexpectedly empty"
        results["zone_memory_s"] = round(mem_zone_s, 4)
        results["zone_segmented_s"] = round(seg_zone_s, 4)
        results["zone_segments_opened"] = zone_stats.segments_opened
        results["zone_segments_skipped"] = zone_stats.segments_skipped
        print(f"zone queries: in-memory {mem_zone_s:.3f}s, segmented "
              f"{seg_zone_s:.3f}s, opened {zone_stats.segments_opened} / "
              f"skipped {zone_stats.segments_skipped} segments "
              "(results identical)")

        # -- compaction: timed, and byte-determinism at bench scale -------
        one_shot_dir = Path(tmp) / "compact-one-shot"
        staged_dir = Path(tmp) / "compact-staged"
        _copy_segments(segments_dir, one_shot_dir)
        _copy_segments(segments_dir, staged_dir)
        one_shot = SegmentedPdnsStore(one_shot_dir)
        compact_s, report = _best_of(1, one_shot.compact)
        staged = SegmentedPdnsStore(staged_dir)
        staged.compact(max_rows=max(len(staged) // 3, 1))
        staged.compact()
        assert _segment_digests(one_shot_dir) == _segment_digests(staged_dir), \
            "compaction output depends on merge order"
        assert one_shot.new_records_per_day() == oracle.new_records_per_day(), \
            "compaction changed the first-seen ledger"
        results["compact_s"] = round(compact_s, 3)
        results["compact_merged_segments"] = report.merged_segments
        results["compact_bytes_before"] = report.bytes_before
        results["compact_bytes_after"] = report.bytes_after
        print(f"compaction: merged {report.merged_segments} segments in "
              f"{compact_s:.2f}s ({report.bytes_before} -> "
              f"{report.bytes_after} bytes; byte-identical across merge "
              "schedules)")

    if (os.cpu_count() or 1) == 1:
        results["constrained"] = True
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="10-day calendar: CI smoke mode (does not "
                             "overwrite the recorded baseline)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write results (default {OUTPUT})")
    parser.add_argument("--worker",
                        choices=["baseline", "memory", "segmented"],
                        help=argparse.SUPPRESS)  # internal: RSS probe body
    parser.add_argument("--days", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--fresh", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--stable", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--dir", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.worker:
        return run_worker(args.worker, args.days, args.fresh, args.stable,
                          args.dir)

    if args.quick:
        results = bench(n_days=10, n_fresh=600, n_stable=40, quick=True)
        results["mode"] = "quick"
        print(json.dumps(results, indent=2))
        return 0

    results = bench(n_days=92, n_fresh=20_000, n_stable=500, quick=False)
    results["mode"] = "baseline"
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
