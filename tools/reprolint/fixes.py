"""Safe autofix engine (``--fix`` / ``--fix-check``).

Three rules have *mechanical* fixes whose before/after semantics
differ only in ways the rule exists to forbid, so applying them can
never change a correct program's meaning:

* **R009** nondet-iteration-order — wrap the set being iterated in
  ``sorted(...)`` (or turn ``list(the_set)`` into ``sorted(the_set)``);
  the output order becomes a function of the contents.
* **R010** unsorted-fs-listing — wrap the listing call in
  ``sorted(...)``.  ``os.walk`` is *not* auto-fixable (sorting the
  outside only sorts the top level) and is skipped.
* **S001** stale-suppression — delete the dead directive comment (the
  whole line when the comment stands alone, the trailing comment
  otherwise).

Fixes are span-based :class:`Patch` objects over the original source,
so they compose: all patches for a file are applied in one pass,
back-to-front, and overlapping patches are *skipped*, never merged —
the next ``--fix`` iteration picks up whatever the re-analysis still
reports.  The engine is idempotent by construction: patches are only
generated for *current* violations, and every fix removes the
violation that produced it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from tools.reprolint.astutil import (is_set_typed, iter_scopes, parent_map,
                                     set_typed_names)
from tools.reprolint.engine import Violation
from tools.reprolint.qualnames import build_alias_table, qualified_name

__all__ = ["FIXABLE_RULES", "Patch", "apply_patches", "fixes_for_file"]

#: Rules the autofixer knows how to repair.
FIXABLE_RULES = frozenset({"R009", "R010", "S001"})

#: R010 functions that have no safe mechanical fix.
_UNFIXABLE_LISTINGS = frozenset({"os.walk", "os.fwalk"})

_DIRECTIVE_START = re.compile(r"#\s*reprolint:\s*(?:disable-file|disable)\b")


@dataclass(frozen=True)
class Patch:
    """One span replacement: ``source[start:end] -> replacement``.

    Positions use the AST convention — 1-based lines, 0-based columns —
    so they line up with node attributes and :class:`Violation` sites.
    """

    path: str
    rule_id: str
    start_line: int
    start_col: int
    end_line: int
    end_col: int
    replacement: str
    description: str
    #: Line of the violation this patch repairs (SARIF ``fixes``
    #: objects are attached per result through this).
    violation_line: int = 0

    def sort_key(self) -> Tuple[int, int, int, int]:
        return (self.start_line, self.start_col,
                self.end_line, self.end_col)


def _line_starts(source: str) -> List[int]:
    starts = [0]
    for idx, char in enumerate(source):
        if char == "\n":
            starts.append(idx + 1)
    return starts


def _offset(starts: Sequence[int], line: int, col: int) -> int:
    return starts[line - 1] + col


def apply_patches(source: str,
                  patches: Iterable[Patch]) -> Tuple[str, List[Patch],
                                                     List[Patch]]:
    """Apply non-overlapping patches; return ``(text, applied, skipped)``.

    Patches are ordered by span start; a patch overlapping an earlier
    (kept) one is skipped, so nested fixes defer to the outermost and
    the caller re-analyzes before trying again.
    """
    starts = _line_starts(source)
    spans = sorted(
        ((_offset(starts, p.start_line, p.start_col),
          _offset(starts, p.end_line, p.end_col), p)
         for p in patches),
        key=lambda item: (item[0], item[1]))
    applied: List[Patch] = []
    skipped: List[Patch] = []
    kept: List[Tuple[int, int, Patch]] = []
    last_end = -1
    for begin, end, patch in spans:
        if begin < last_end:
            skipped.append(patch)
            continue
        kept.append((begin, end, patch))
        applied.append(patch)
        last_end = max(last_end, end)
    text = source
    for begin, end, patch in reversed(kept):
        text = text[:begin] + patch.replacement + text[end:]
    return text, applied, skipped


class _FileFixer:
    """Per-file fix generation: one parse, many violations."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.starts = _line_starts(source)
        try:
            self.tree: Optional[ast.AST] = ast.parse(source, filename=path)
        except SyntaxError:
            self.tree = None
            self.parents: Dict[ast.AST, ast.AST] = {}
            self.aliases: Dict[str, str] = {}
            return
        self.parents = parent_map(self.tree)
        self.aliases = build_alias_table(self.tree)
        self._scope_sets: Optional[Dict[int, frozenset]] = None

    # -- helpers ------------------------------------------------------

    def _segment(self, node: ast.AST) -> str:
        begin = _offset(self.starts, node.lineno, node.col_offset)
        end = _offset(self.starts, node.end_lineno, node.end_col_offset)
        return self.source[begin:end]

    def _wrap_sorted(self, node: ast.AST, rule_id: str,
                     what: str) -> Patch:
        return Patch(
            path=self.path, rule_id=rule_id,
            start_line=node.lineno, start_col=node.col_offset,
            end_line=node.end_lineno, end_col=node.end_col_offset,
            replacement=f"sorted({self._segment(node)})",
            description=f"wrap {what} in sorted(...)")

    def _nodes_at(self, line: int, col: int) -> List[ast.AST]:
        assert self.tree is not None
        return [node for node in ast.walk(self.tree)
                if getattr(node, "lineno", None) == line
                and getattr(node, "col_offset", None) == col
                and hasattr(node, "end_lineno")]

    def _set_names_for(self, node: ast.AST) -> frozenset:
        """Set-typed local names of ``node``'s enclosing scope."""
        assert self.tree is not None
        current: ast.AST = node
        while current in self.parents:
            current = self.parents[current]
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Module)):
                break
        for scope, _ in iter_scopes(self.tree):
            if scope is current:
                return frozenset(set_typed_names(scope))
        return frozenset(set_typed_names(self.tree))

    # -- rule fixers --------------------------------------------------

    def fix(self, violation: Violation) -> List[Patch]:
        if self.tree is None and violation.rule_id != "S001":
            return []
        if violation.rule_id == "R009":
            return self._fix_r009(violation)
        if violation.rule_id == "R010":
            return self._fix_r010(violation)
        if violation.rule_id == "S001":
            return self._fix_s001(violation)
        return []

    def _fix_r009(self, violation: Violation) -> List[Patch]:
        nodes = self._nodes_at(violation.line, violation.col)
        calls = [n for n in nodes if isinstance(n, ast.Call)]
        comps = [n for n in nodes
                 if isinstance(n, (ast.ListComp, ast.GeneratorExp))]
        if calls:
            call = calls[0]
            func = call.func
            if (isinstance(func, ast.Name) and func.id == "list"
                    and call.args):
                # ``list(the_set)`` -> ``sorted(the_set)``: same list,
                # content-determined order.
                return [Patch(
                    path=self.path, rule_id="R009",
                    start_line=func.lineno, start_col=func.col_offset,
                    end_line=func.end_lineno, end_col=func.end_col_offset,
                    replacement="sorted",
                    description="materialise via sorted(...) instead of "
                                "list(...)")]
            if (isinstance(func, ast.Name)
                    and func.id in ("tuple", "enumerate", "iter")
                    and call.args):
                return [self._wrap_sorted(call.args[0], "R009",
                                          f"the set passed to {func.id}()")]
            if (isinstance(func, ast.Attribute) and func.attr == "join"
                    and call.args):
                return [self._wrap_sorted(call.args[0], "R009",
                                          "the set passed to str.join()")]
            # e.g. a bare ``set(...)`` used as a for-loop iterable.
            return [self._wrap_sorted(call, "R009", "the iterated set")]
        if comps:
            comp = comps[0]
            set_names = self._set_names_for(comp)
            patches = [self._wrap_sorted(gen.iter, "R009",
                                         "the comprehension's set iterable")
                       for gen in comp.generators
                       if is_set_typed(gen.iter, set_names)]
            return patches
        exprs = [n for n in nodes if isinstance(n, ast.expr)]
        if exprs:
            return [self._wrap_sorted(exprs[0], "R009",
                                      "the iterated set")]
        return []

    def _fix_r010(self, violation: Violation) -> List[Patch]:
        for node in self._nodes_at(violation.line, violation.col):
            if not isinstance(node, ast.Call):
                continue
            resolved = qualified_name(node.func, self.aliases)
            if resolved in _UNFIXABLE_LISTINGS:
                return []  # sorting outside os.walk fixes nothing
            return [self._wrap_sorted(node, "R010", "the directory listing")]
        return []

    def _fix_s001(self, violation: Violation) -> List[Patch]:
        if violation.line > len(self.lines):
            return []
        text = self.lines[violation.line - 1]
        match = _DIRECTIVE_START.search(text)
        if match is None:
            return []
        before = text[:match.start()]
        if before.strip() == "":
            # Comment-only line: remove it entirely, newline included.
            end_line = violation.line + 1
            end_col = 0
            if violation.line == len(self.lines):
                end_line, end_col = violation.line, len(text)
            return [Patch(
                path=self.path, rule_id="S001",
                start_line=violation.line, start_col=0,
                end_line=end_line, end_col=end_col,
                replacement="",
                description="delete stale suppression line")]
        return [Patch(
            path=self.path, rule_id="S001",
            start_line=violation.line, start_col=len(before.rstrip()),
            end_line=violation.line, end_col=len(text),
            replacement="",
            description="strip stale trailing suppression comment")]


def fixes_for_file(path: str, source: str,
                   violations: Sequence[Violation]) -> List[Patch]:
    """Patches for every fixable violation of one file.

    Unfixable rules (anything outside :data:`FIXABLE_RULES`) and sites
    the fixer cannot locate or repair safely yield no patch — they
    simply stay reported.
    """
    relevant = [v for v in violations
                if v.path == path and v.rule_id in FIXABLE_RULES]
    if not relevant:
        return []
    fixer = _FileFixer(path, source)
    patches: List[Patch] = []
    for violation in sorted(relevant, key=Violation.sort_key):
        patches.extend(replace(patch, violation_line=violation.line)
                       for patch in fixer.fix(violation))
    return patches
