"""Shared AST helpers for rules and the whole-program facts collector.

Everything here is purely syntactic: no imports are executed, no types
are inferred beyond what literal syntax and local assignments prove.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

__all__ = [
    "ORDER_INSENSITIVE_REDUCERS",
    "call_name",
    "is_set_typed",
    "iter_scopes",
    "parent_map",
    "sanitizing_ancestor",
    "set_typed_names",
]

#: Builtins/callables whose result does not depend on the iteration
#: order of their iterable argument, so feeding them an unordered
#: collection is deterministic.
ORDER_INSENSITIVE_REDUCERS = frozenset({
    "sorted", "sum", "len", "min", "max", "set", "frozenset", "any", "all",
    "Counter", "collections.Counter",
})

#: Set operators that preserve set-ness.
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    """Child → parent for every node in ``tree``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def call_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolved dotted name of a call's callee, or ``None``."""
    if not isinstance(node, ast.Call):
        return None
    from tools.reprolint.qualnames import qualified_name
    return qualified_name(node.func, aliases)


def iter_scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, ast.AST]]:
    """Yield ``(scope_node, scope_body_owner)`` for the module and every
    function, so rules can reason about one lexical scope at a time."""
    yield tree, tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node


def _is_set_annotation(annotation: ast.expr) -> bool:
    """``Set[...]``/``FrozenSet[...]``/``set[...]``/``typing.Set`` etc."""
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in ("Set", "FrozenSet", "AbstractSet",
                               "MutableSet")
    if isinstance(target, ast.Name):
        return target.id in ("set", "frozenset", "Set", "FrozenSet",
                             "AbstractSet", "MutableSet")
    return False


def is_set_typed(node: ast.expr, set_names: Set[str]) -> bool:
    """True when ``node`` is *syntactically* a set: a set literal or
    comprehension, a ``set()``/``frozenset()`` call, a set-operator
    combination of set-typed operands, or a name proven set-typed by
    every assignment in its scope (``set_names``)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return (is_set_typed(node.left, set_names)
                or is_set_typed(node.right, set_names))
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def set_typed_names(scope: ast.AST) -> Set[str]:
    """Names that every direct assignment in ``scope`` proves set-typed.

    Only assignments belonging to this scope are considered (nested
    function bodies are their own scopes); a name also bound by a
    ``for`` target, ``with`` alias, or function argument is dropped —
    its type is unknowable syntactically.
    """
    candidates: Set[str] = set()
    disproven: Set[str] = set()

    def local_nodes(root: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(root):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)) and child is not root:
                continue
            yield child
            yield from local_nodes(child)

    known: Set[str] = set()
    for node in local_nodes(scope):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    known.add(target.id)
                    if is_set_typed(node.value, candidates):
                        candidates.add(target.id)
                    else:
                        disproven.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                known.add(node.target.id)
                if _is_set_annotation(node.annotation):
                    candidates.add(node.target.id)
                elif node.value is not None and is_set_typed(
                        node.value, candidates):
                    candidates.add(node.target.id)
                else:
                    disproven.add(node.target.id)
        elif isinstance(node, ast.AugAssign):
            # x |= other keeps set-ness; any other augmented op on a
            # candidate leaves it as-is (sets support -=, &=, ^= too).
            continue
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    disproven.add(name_node.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            disproven.add(name_node.id)
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            disproven.add(arg.arg)
    return candidates - disproven


def sanitizing_ancestor(node: ast.AST, parents: Dict[ast.AST, ast.AST],
                        aliases: Dict[str, str]) -> Optional[str]:
    """Name of an enclosing order-insensitive reducer call, or ``None``.

    Walks up the expression tree (stopping at the enclosing statement)
    looking for ``sorted(...)``/``sum(...)``/... wrapped around
    ``node`` — including through generator expressions, so
    ``sorted(x.name for x in some_set)`` counts as sanitized.
    """
    current = node
    while True:
        parent = parents.get(current)
        if parent is None or isinstance(parent, ast.stmt):
            return None
        if isinstance(parent, ast.Call) and current is not parent.func:
            name = call_name(parent, aliases)
            if name is not None:
                terminal = name.rsplit(".", 1)[-1]
                if (name in ORDER_INSENSITIVE_REDUCERS
                        or terminal in ORDER_INSENSITIVE_REDUCERS):
                    return terminal
        current = parent
