"""Project-wide module import graph.

Built from :class:`~tools.reprolint.facts.FileFacts` import lists: the
nodes are the modules of the analyzed files, and an edge ``A → B``
means "module A imports module B".  Imported names that do not resolve
to an analyzed module (stdlib, numpy, symbols re-exported from a
package ``__init__``) are simply dropped — the graph is *project*
structure, and over-approximating edges would only make the
incremental dirty-set larger, never wrong.

The graph serves two jobs:

* **incremental invalidation** — when a module's facts change, the
  module plus its transitive *dependents* (reverse-edge closure) are
  the files whose whole-program conclusions may shift
  (:meth:`ModuleGraph.dependents_closure`);
* **program-pass caching** — :meth:`ModuleGraph.fingerprint` hashes the
  node and edge sets, so the expensive cross-file passes re-run only
  when the import structure (or any file's facts) actually changed.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, Iterable, List, Mapping, Set, Tuple

from tools.reprolint.facts import FileFacts

__all__ = ["ModuleGraph", "build_module_graph"]


class ModuleGraph:
    """Directed import graph over the analyzed project modules."""

    def __init__(self, edges: Mapping[str, FrozenSet[str]]) -> None:
        self._edges: Dict[str, FrozenSet[str]] = dict(edges)
        reverse: Dict[str, Set[str]] = {module: set() for module in edges}
        for module, targets in edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(module)
        self._reverse: Dict[str, FrozenSet[str]] = {
            module: frozenset(deps) for module, deps in reverse.items()}

    # -- queries -------------------------------------------------------

    @property
    def modules(self) -> List[str]:
        return sorted(self._edges)

    def imports_of(self, module: str) -> FrozenSet[str]:
        return self._edges.get(module, frozenset())

    def dependents_of(self, module: str) -> FrozenSet[str]:
        """Modules that directly import ``module``."""
        return self._reverse.get(module, frozenset())

    def dependents_closure(self, modules: Iterable[str]) -> FrozenSet[str]:
        """``modules`` plus everything that transitively imports them."""
        frontier = list(modules)
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for dependent in self._reverse.get(current, frozenset()):
                if dependent not in seen:
                    seen.add(dependent)
                    frontier.append(dependent)
        return frozenset(seen)

    def edge_list(self) -> List[Tuple[str, str]]:
        return sorted((module, target)
                      for module, targets in self._edges.items()
                      for target in targets)

    def fingerprint(self) -> str:
        """Stable hash of the node and edge sets."""
        digest = hashlib.sha256()
        for module in self.modules:
            digest.update(module.encode("utf-8"))
            digest.update(b"\x00")
        for source, target in self.edge_list():
            digest.update(f"{source}>{target}".encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()


def build_module_graph(facts: Iterable[FileFacts]) -> ModuleGraph:
    """Resolve each file's imports against the analyzed module set."""
    by_module: Dict[str, FileFacts] = {}
    for file_facts in facts:
        if file_facts.module is not None:
            by_module[file_facts.module] = file_facts
    known = set(by_module)
    edges: Dict[str, FrozenSet[str]] = {}
    for module, file_facts in by_module.items():
        resolved: Set[str] = set()
        for imported in file_facts.imports:
            if imported in known and imported != module:
                resolved.add(imported)
            else:
                # ``from repro.core import keys`` records
                # ``repro.core.keys``; if only the package is analyzed,
                # fall back to the longest known prefix.
                parts = imported.split(".")
                for cut in range(len(parts) - 1, 0, -1):
                    prefix = ".".join(parts[:cut])
                    if prefix in known:
                        if prefix != module:
                            resolved.add(prefix)
                        break
        edges[module] = frozenset(resolved)
    return ModuleGraph(edges)
