"""Violation baselines: grandfather known debt, forbid new debt.

A baseline file records *how many* violations of each rule each file
is allowed to keep: ``{"src/repro/core/tracking.py::R015": 3}``.
Applying it subtracts that allowance from the report, so CI stays
green on the grandfathered set while any **new** violation — one more
in a baselined file, or any in a clean file — still fails.

The allowance is a ratchet, not a licence: entries whose allowance is
not fully used are returned as *unused*, and the repo self-check test
fails on them, forcing the baseline to shrink as debt is paid down
(``--write-baseline`` regenerates it).  Counts are keyed by
``relative/path::RULE`` with POSIX separators so the file is stable
across machines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, List, Sequence, Tuple

from tools.reprolint.engine import Violation

__all__ = ["Baseline", "baseline_key"]

_VERSION = 1


def _normalize(path: str, root: Path) -> str:
    """``path`` relative to ``root`` (POSIX), or as given if outside."""
    try:
        relative = Path(path).resolve().relative_to(root.resolve())
    except ValueError:
        relative = Path(path)
    return str(PurePosixPath(*relative.parts))


def baseline_key(violation: Violation, root: Path) -> str:
    return f"{_normalize(violation.path, root)}::{violation.rule_id}"


@dataclass
class Baseline:
    """Per-``path::rule`` violation allowances."""

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{payload.get('version')!r}")
        counts = {str(key): int(count)
                  for key, count in payload.get("counts", {}).items()
                  if int(count) > 0}
        return cls(counts=counts)

    def save(self, path: Path) -> None:
        payload = {
            "version": _VERSION,
            "counts": {key: self.counts[key] for key in sorted(self.counts)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")

    @classmethod
    def from_violations(cls, violations: Sequence[Violation],
                        root: Path) -> "Baseline":
        counts: Dict[str, int] = {}
        for violation in violations:
            key = baseline_key(violation, root)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts=counts)

    def apply(self, violations: Sequence[Violation],
              root: Path) -> Tuple[List[Violation], int, Dict[str, int]]:
        """Subtract the allowance from ``violations``.

        Returns ``(kept, suppressed_count, unused)`` where *kept* are
        the violations exceeding their allowance (new debt), and
        *unused* maps baseline keys to leftover allowance (paid-down
        debt whose entry must now shrink).
        """
        remaining = dict(self.counts)
        kept: List[Violation] = []
        suppressed = 0
        for violation in sorted(violations, key=Violation.sort_key):
            key = baseline_key(violation, root)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                kept.append(violation)
        unused = {key: count for key, count in sorted(remaining.items())
                  if count > 0}
        return kept, suppressed, unused

    def total(self) -> int:
        return sum(self.counts.values())
