"""Rule engine: file discovery, parsing, rule dispatch, suppression.

The engine is deliberately small: a :class:`Rule` sees one parsed module
(:class:`ModuleContext`) at a time and yields :class:`Violation` objects.
Suppression comments are applied centrally so individual rules never need
to know about them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from tools.reprolint.suppressions import Suppressions, scan_comments

__all__ = [
    "EXCLUDED_DIR_NAMES",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "Violation",
    "discover_files",
    "lint_source",
    "module_name_for",
]

#: Directory names skipped during recursive discovery. ``corpus`` holds
#: intentionally-bad lint fixtures; passing such a directory *explicitly*
#: on the command line still lints it (explicit beats default).
EXCLUDED_DIR_NAMES = frozenset({
    "__pycache__", ".git", ".mypy_cache", ".pytest_cache", ".ruff_cache",
    "build", "dist", "corpus",
})

#: Pseudo rule id for files that fail to parse.
PARSE_ERROR_ID = "E999"


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and a human-readable message."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one module."""

    path: str
    source: str
    tree: ast.Module
    module: Optional[str]  # dotted name, e.g. "repro.analysis.tail"
    suppressions: Suppressions = field(default_factory=lambda: scan_comments(""))

    @property
    def module_parts(self) -> Sequence[str]:
        return self.module.split(".") if self.module else ()

    def in_package(self, prefix: str) -> bool:
        """True if the module is ``prefix`` or lives under ``prefix.``."""
        if self.module is None:
            return False
        return self.module == prefix or self.module.startswith(prefix + ".")


class Rule:
    """Base class for all rules.

    Subclasses set ``rule_id``/``name``/``description`` and implement
    :meth:`check`; :meth:`applies_to` scopes the rule to parts of the
    tree (e.g. determinism rules only run on ``repro.*`` modules).
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def applies_to(self, ctx: ModuleContext) -> bool:
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: ModuleContext, node: ast.AST,
                  message: str) -> Violation:
        return Violation(rule_id=self.rule_id, path=ctx.path,
                         line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0),
                         message=message)


def module_name_for(path: Path) -> Optional[str]:
    """Infer the dotted module name from package ``__init__.py`` files.

    Walks up from the file while each parent directory is a package, so
    ``src/repro/analysis/tail.py`` resolves to ``repro.analysis.tail``
    regardless of where the tree is rooted.
    """
    path = path.resolve()
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        return None
    return ".".join(reversed(parts))


def discover_files(roots: Sequence[str]) -> List[Path]:
    """Expand the given paths into a sorted, de-duplicated file list."""
    seen: Dict[Path, None] = {}
    for root in roots:
        root_path = Path(root)
        if root_path.is_file():
            seen.setdefault(root_path, None)
            continue
        if not root_path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {root}")
        for candidate in sorted(root_path.rglob("*.py")):
            relative = candidate.relative_to(root_path)
            skip = any(part in EXCLUDED_DIR_NAMES or part.endswith(".egg-info")
                       for part in relative.parts[:-1])
            if not skip:
                seen.setdefault(candidate, None)
    return sorted(seen, key=str)


def lint_source(source: str, path: str, rules: Sequence[Rule],
                module: Optional[str] = None,
                respect_suppressions: bool = True) -> List[Violation]:
    """Lint one in-memory module. The unit the tests drive directly."""
    suppressions = scan_comments(source)
    if suppressions.module_override is not None:
        module = suppressions.module_override
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(rule_id=PARSE_ERROR_ID, path=path,
                          line=exc.lineno or 1, col=exc.offset or 0,
                          message=f"syntax error: {exc.msg}")]
    ctx = ModuleContext(path=path, source=source, tree=tree, module=module,
                        suppressions=suppressions)
    found: List[Violation] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if respect_suppressions and suppressions.is_suppressed(
                    violation.rule_id, violation.line):
                continue
            found.append(violation)
    return sorted(found, key=Violation.sort_key)


class LintEngine:
    """Run a rule set over files and directories."""

    def __init__(self, rules: Sequence[Rule],
                 respect_suppressions: bool = True) -> None:
        self.rules = list(rules)
        self.respect_suppressions = respect_suppressions

    def run(self, roots: Sequence[str]) -> List[Violation]:
        violations: List[Violation] = []
        for path in discover_files(roots):
            violations.extend(self.run_file(path))
        return sorted(violations, key=Violation.sort_key)

    def run_file(self, path: Path) -> List[Violation]:
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Violation(rule_id=PARSE_ERROR_ID, path=str(path), line=1,
                              col=0, message=f"unreadable file: {exc}")]
        return lint_source(source, str(path), self.rules,
                           module=module_name_for(path),
                           respect_suppressions=self.respect_suppressions)
