"""Incremental, parallel analysis sessions.

This is the v2 engine driver.  One :func:`analyze_project` call:

1. discovers files (sorted, de-duplicated — same as v1);
2. content-hashes each file and looks its analysis up in the
   :class:`~tools.reprolint.cache.LintResultCache`; only **misses**
   are parsed and analyzed, optionally fanned out over a process pool
   (``jobs``), and the fresh results are published back to the cache;
3. rebuilds the module import graph and call graph from the per-file
   facts and runs the whole-program rules (R011, R012) — unless the
   program-level cache key (a hash over every file's facts
   fingerprint) is unchanged, in which case the cached program
   violations are replayed and the graphs are never built;
4. applies suppression comments, runs the stale-suppression audit,
   and returns one deterministic, sorted report.

Results are byte-identical across ``jobs`` settings and across
cold/warm runs: workers return pure data, the merge is sorted, and
cache hits replay exactly what a fresh analysis would produce.
"""

from __future__ import annotations

import ast
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from tools.reprolint.cache import LintResultCache, file_key
from tools.reprolint.callgraph import build_program_facts
from tools.reprolint.engine import (PARSE_ERROR_ID, Violation, discover_files,
                                    module_name_for)
from tools.reprolint.facts import FileFacts, collect_facts, facts_fingerprint
from tools.reprolint.graph import build_module_graph
from tools.reprolint.rules import ALL_PROGRAM_RULES, ALL_RULES
from tools.reprolint.suppressions import Directive, scan_comments

__all__ = [
    "FileResult",
    "ProjectResult",
    "SessionStats",
    "STALE_SUPPRESSION_ID",
    "analyze_project",
]

#: Pseudo rule id for ``--audit-suppressions`` findings.
STALE_SUPPRESSION_ID = "S001"

#: Schema version of cached per-file results; bump to invalidate.
#: v2: effect facts (effects/raises/broad_handlers/import_sites).
_RESULT_VERSION = 2


@dataclass
class FileResult:
    """Everything one file contributes: raw (pre-suppression) local
    violations, whole-program facts, and its suppression directives."""

    path: str
    module: Optional[str]
    violations: List[Violation]
    facts: FileFacts
    directives: Tuple[Directive, ...]
    file_suppressions: Tuple[str, ...]  # rules disabled file-wide
    line_suppressions: Dict[int, Tuple[str, ...]]

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if ("all" in self.file_suppressions
                or rule_id in self.file_suppressions):
            return True
        rules = self.line_suppressions.get(line, ())
        return "all" in rules or rule_id in rules

    # -- JSON round-trip (the cache payload) --------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": _RESULT_VERSION,
            "path": self.path,
            "module": self.module,
            "violations": [[v.rule_id, v.line, v.col, v.message]
                           for v in self.violations],
            "facts": self.facts.to_json(),
            "directives": [[d.line, d.kind, sorted(d.rules),
                            list(d.covered_lines)]
                           for d in self.directives],
            "file_suppressions": list(self.file_suppressions),
            "line_suppressions": {str(line): list(rules) for line, rules
                                  in self.line_suppressions.items()},
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "FileResult":
        if payload.get("version") != _RESULT_VERSION:
            raise ValueError("cached lint result version mismatch")
        path = payload["path"]
        violations = [Violation(rule_id=rule, path=path, line=line, col=col,
                                message=message)
                      for rule, line, col, message in payload["violations"]]
        directives = tuple(
            Directive(line=line, kind=kind, rules=frozenset(rules),
                      covered_lines=tuple(covered))
            for line, kind, rules, covered in payload["directives"])
        return cls(
            path=path, module=payload["module"], violations=violations,
            facts=FileFacts.from_json(payload["facts"]),
            directives=directives,
            file_suppressions=tuple(payload["file_suppressions"]),
            line_suppressions={int(line): tuple(rules) for line, rules
                               in payload["line_suppressions"].items()})


@dataclass
class SessionStats:
    """What the engine actually did — asserted by the incremental
    tests and recorded by ``tools/bench_lint.py``."""

    files_total: int = 0
    files_analyzed: int = 0
    files_cached: int = 0
    program_rerun: bool = False
    #: Wall-clock seconds of the whole-program pass (graph builds +
    #: taint/effect fixpoints + R011–R017); 0.0 when it was cached.
    program_pass_s: float = 0.0
    #: Modules whose facts changed since the previous run, plus their
    #: transitive dependents in the import graph — the whole-program
    #: blast radius of the edit.
    dirty_modules: List[str] = field(default_factory=list)


@dataclass
class ProjectResult:
    """One session's complete, deterministic report."""

    violations: List[Violation]          # post-suppression
    raw_violations: List[Violation]      # pre-suppression (audit input)
    stale_suppressions: List[Violation]  # S001 findings
    stats: SessionStats
    files: Dict[str, FileResult]

    def reported(self, audit_suppressions: bool = False) -> List[Violation]:
        found = list(self.violations)
        if audit_suppressions:
            found.extend(self.stale_suppressions)
        return sorted(found, key=Violation.sort_key)


def analyze_source(source: str, path: str,
                   module: Optional[str]) -> FileResult:
    """Full per-file analysis: local rules + facts + directives.

    Violations come back **unsuppressed**; suppression filtering and
    the audit happen at session level where program-rule violations
    are also known.
    """
    suppressions = scan_comments(source)
    if suppressions.module_override is not None:
        module = suppressions.module_override
    line_suppressions = {
        line: tuple(sorted(rules))
        for line, rules in getattr(suppressions, "_line_rules").items()}
    file_suppressions = tuple(sorted(getattr(suppressions, "_file_rules")))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        violation = Violation(rule_id=PARSE_ERROR_ID, path=path,
                              line=exc.lineno or 1, col=exc.offset or 0,
                              message=f"syntax error: {exc.msg}")
        empty = FileFacts(path=path, module=module, imports=(), defs=(),
                          worker_targets=())
        return FileResult(path=path, module=module, violations=[violation],
                          facts=empty, directives=suppressions.directives,
                          file_suppressions=file_suppressions,
                          line_suppressions=line_suppressions)
    from tools.reprolint.engine import ModuleContext
    ctx = ModuleContext(path=path, source=source, tree=tree, module=module,
                        suppressions=suppressions)
    violations: List[Violation] = []
    for rule in ALL_RULES:
        if rule.applies_to(ctx):
            violations.extend(rule.check(ctx))
    violations.sort(key=Violation.sort_key)
    facts = collect_facts(tree, path, module)
    return FileResult(path=path, module=module, violations=violations,
                      facts=facts, directives=suppressions.directives,
                      file_suppressions=file_suppressions,
                      line_suppressions=line_suppressions)


def _analyze_for_pool(item: Tuple[str, str, Optional[str]]) -> Dict[str, Any]:
    """Process-pool worker: analyze one file, return pure JSON data.

    Top-level by necessity (R007): the callable is pickled into the
    worker by qualified name.
    """
    path, source, module = item
    return analyze_source(source, path, module).to_json()


def _read_file(path: Path) -> Tuple[Optional[str], Optional[Violation]]:
    try:
        return path.read_text(encoding="utf-8"), None
    except (OSError, UnicodeDecodeError) as exc:
        return None, Violation(rule_id=PARSE_ERROR_ID, path=str(path),
                               line=1, col=0,
                               message=f"unreadable file: {exc}")


def _program_key(results: Sequence[FileResult],
                 fingerprints: Dict[str, str]) -> str:
    import hashlib
    from tools.reprolint.cache import engine_fingerprint
    digest = hashlib.sha256()
    digest.update(engine_fingerprint().encode())
    for result in sorted(results, key=lambda r: r.path):
        digest.update(result.path.encode())
        digest.update(b"\x00")
        digest.update(fingerprints[result.path].encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def _run_program_rules(results: Sequence[FileResult]) -> List[Violation]:
    program = build_program_facts([result.facts for result in results])
    violations: List[Violation] = []
    for rule in ALL_PROGRAM_RULES:
        violations.extend(rule.check(program))
    return sorted(violations, key=Violation.sort_key)


def _dirty_modules(results: Sequence[FileResult],
                   previous: Optional[Dict[str, Any]],
                   fingerprints: Dict[str, str]) -> List[str]:
    """Changed modules + their transitive dependents (import graph)."""
    current: Dict[str, str] = {}
    for result in results:
        if result.module is not None:
            current[result.module] = fingerprints[result.path]
    if previous is None:
        return sorted(current)
    before = previous.get("fingerprints", {})
    changed = {module for module, fingerprint in current.items()
               if before.get(module) != fingerprint}
    changed.update(module for module in before if module not in current)
    if not changed:
        return []
    graph = build_module_graph([result.facts for result in results])
    return sorted(graph.dependents_closure(changed & set(current))
                  | (changed - set(current)))


def analyze_project(roots: Sequence[str], *,
                    jobs: int = 1,
                    cache_dir: Optional[Path] = None,
                    respect_suppressions: bool = True) -> ProjectResult:
    """Analyze ``roots`` incrementally; see module docstring.

    ``cache_dir=None`` disables caching entirely (every file is
    analyzed fresh, the program pass always runs).  ``jobs`` counts
    worker processes; ``1`` analyzes in-process.
    """
    stats = SessionStats()
    cache = LintResultCache(cache_dir) if cache_dir is not None else None

    paths = discover_files(roots)
    stats.files_total = len(paths)

    results: Dict[str, FileResult] = {}
    unreadable: List[Violation] = []
    pending: List[Tuple[str, str, Optional[str], Optional[str]]] = []

    for path in paths:
        path_str = str(path)
        source, error = _read_file(path)
        if source is None:
            assert error is not None
            unreadable.append(error)
            continue
        module = module_name_for(path)
        key = None
        if cache is not None:
            key = file_key(path_str, module, source.encode("utf-8"))
            payload = cache.load(key)
            if payload is not None:
                try:
                    results[path_str] = FileResult.from_json(payload)
                    stats.files_cached += 1
                    continue
                except (KeyError, TypeError, ValueError):
                    pass  # corrupt payload: treat as a miss
        pending.append((path_str, source, module, key))

    stats.files_analyzed = len(pending)
    work = [(path_str, source, module)
            for path_str, source, module, _ in pending]
    if jobs > 1 and len(work) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunk = max(1, len(work) // (jobs * 4))
            payloads = list(pool.map(_analyze_for_pool, work,
                                     chunksize=chunk))
    else:
        payloads = [_analyze_for_pool(item) for item in work]
    for (path_str, _, _, key), payload in zip(pending, payloads):
        result = FileResult.from_json(payload)
        results[path_str] = result
        if cache is not None and key is not None:
            cache.store(key, payload)

    ordered = [results[path_str] for path_str in sorted(results)]

    # -- whole-program pass (cached by facts fingerprint) --------------
    # Fingerprints are computed once per session and shared by the
    # program key, the persisted per-module fingerprints, and the
    # dirty-module closure: the serialisation behind them is the
    # dominant cost of a fully warm run.
    fingerprints = {result.path: facts_fingerprint(result.facts)
                    for result in ordered}
    program_key = _program_key(ordered, fingerprints)
    program_violations: Optional[List[Violation]] = None
    previous_state = cache.load_program_state() if cache is not None else None
    if (previous_state is not None
            and previous_state.get("program_key") == program_key):
        program_violations = [
            Violation(rule_id=rule, path=path, line=line, col=col,
                      message=message)
            for rule, path, line, col, message
            in previous_state.get("violations", [])]
    if program_violations is None:
        stats.program_rerun = True
        began = time.perf_counter()
        program_violations = _run_program_rules(ordered)
        stats.program_pass_s = time.perf_counter() - began
    stats.dirty_modules = _dirty_modules(ordered, previous_state,
                                         fingerprints) \
        if stats.program_rerun else []
    if cache is not None:
        cache.store_program_state({
            "program_key": program_key,
            "fingerprints": {result.module: fingerprints[result.path]
                             for result in ordered
                             if result.module is not None},
            "violations": [[v.rule_id, v.path, v.line, v.col, v.message]
                           for v in program_violations],
        })

    # -- merge, suppress, audit ---------------------------------------
    raw: List[Violation] = list(unreadable)
    for result in ordered:
        raw.extend(result.violations)
    raw.extend(program_violations)
    raw.sort(key=Violation.sort_key)

    reported: List[Violation] = []
    for violation in raw:
        result = results.get(violation.path)
        if (respect_suppressions and result is not None
                and result.is_suppressed(violation.rule_id, violation.line)):
            continue
        reported.append(violation)

    stale: List[Violation] = []
    raw_by_path: Dict[str, List[Violation]] = {}
    for violation in raw:
        raw_by_path.setdefault(violation.path, []).append(violation)
    for result in ordered:
        in_file = raw_by_path.get(result.path, [])
        for directive in result.directives:
            if any(directive.matches(v.rule_id, v.line) for v in in_file):
                continue
            stale.append(Violation(
                rule_id=STALE_SUPPRESSION_ID, path=result.path,
                line=directive.line, col=0,
                message=(f"stale suppression `{directive.render()}` — no "
                         f"{'/'.join(sorted(directive.rules))} violation "
                         f"is suppressed by this comment any more; "
                         f"delete it")))
    stale.sort(key=Violation.sort_key)

    return ProjectResult(violations=reported, raw_violations=raw,
                         stale_suppressions=stale, stats=stats,
                         files=results)
