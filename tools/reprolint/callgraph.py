"""Conservative intra-project call graph + determinism-taint pass.

Nodes are the qualified names of every function the facts collector
saw (``repro.core.keys.versioned_key``,
``repro.pdns.database.PdnsDatabase.ingest``, and one pseudo-node per
module for its top-level code).  An edge ``f → g`` exists when ``f``'s
body contains a call that *resolves* to ``g``: through an import
alias, a local module-level name, or a ``self.``/``cls.`` method of
the same class.  Unresolvable calls (arbitrary attribute chains,
higher-order values) produce no edge — the graph under-approximates
reachability but never invents it, which keeps the downstream rules'
false-positive rate near zero at the cost of missing exotic flows.

Two fixpoints are computed on top:

* **worker reachability** — everything transitively callable from a
  function that is dispatched into a worker process
  (``pool.map(fn, ...)``, ``Process(target=fn)``); rule R011 flags
  module-state writes inside that set.
* **taint** — a function is *tainted* when its body invokes a
  nondeterminism source (wall clock, global-state RNG, unsorted
  directory listing, ``hash()``) or when it calls a tainted project
  function; rule R012 flags tainted values flowing into cache-key /
  artifact / parallel-dispatch sinks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from tools.reprolint.facts import DefFacts, FileFacts
from tools.reprolint.graph import ModuleGraph, build_module_graph

__all__ = ["CallGraph", "ProgramFacts", "build_program_facts"]


class CallGraph:
    """Resolved call edges over every def in the analyzed file set."""

    def __init__(self, files: Iterable[FileFacts]) -> None:
        self.defs: Dict[str, DefFacts] = {}
        self.def_paths: Dict[str, str] = {}
        for file_facts in files:
            for def_facts in file_facts.defs:
                self.defs[def_facts.qualname] = def_facts
                self.def_paths[def_facts.qualname] = file_facts.path
        self._edges: Dict[str, FrozenSet[str]] = {
            qualname: frozenset(target for target in def_facts.calls
                                if target in self.defs
                                and target != qualname)
            for qualname, def_facts in self.defs.items()}

    def callees_of(self, qualname: str) -> FrozenSet[str]:
        return self._edges.get(qualname, frozenset())

    def edge_list(self) -> List[Tuple[str, str]]:
        return sorted((source, target)
                      for source, targets in self._edges.items()
                      for target in targets)

    def reachable_from(self, roots: Iterable[str]) -> FrozenSet[str]:
        """``roots`` plus every def transitively callable from them."""
        frontier = [root for root in roots if root in self.defs]
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for callee in self._edges.get(current, frozenset()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    # -- taint ---------------------------------------------------------

    def taint_map(self) -> Dict[str, str]:
        """Tainted def → human-readable root cause.

        A def is seeded tainted by a direct nondeterminism source in
        its body; taint then propagates caller-ward until fixpoint
        (``f`` calling tainted ``g`` makes ``f`` tainted).  The value
        explains the chain: ``"time.time"`` for a seed,
        ``"repro.x.helper (via time.time)"`` one hop up.
        """
        tainted: Dict[str, str] = {}
        for qualname, def_facts in self.defs.items():
            if def_facts.source_calls:
                tainted[qualname] = def_facts.source_calls[0][1]
        callers: Dict[str, Set[str]] = {}
        for source, targets in self._edges.items():
            for target in targets:
                callers.setdefault(target, set()).add(source)
        frontier = sorted(tainted)
        while frontier:
            current = frontier.pop()
            reason = tainted[current]
            root = reason.split(" (via ", 1)[0] if " (via " in reason \
                else reason
            for caller in sorted(callers.get(current, set())):
                if caller not in tainted:
                    tainted[caller] = f"{current} (via {root})"
                    frontier.append(caller)
        return tainted


class ProgramFacts:
    """Everything the whole-program rules consume, in one place."""

    def __init__(self, files: Mapping[str, FileFacts]) -> None:
        self.files: Dict[str, FileFacts] = dict(files)
        ordered = [self.files[path] for path in sorted(self.files)]
        self.module_graph: ModuleGraph = build_module_graph(ordered)
        self.call_graph: CallGraph = CallGraph(ordered)

    def module_of_def(self, qualname: str) -> Optional[str]:
        path = self.call_graph.def_paths.get(qualname)
        if path is None:
            return None
        facts = self.files.get(path)
        return facts.module if facts is not None else None

    def worker_entry_points(self) -> List[str]:
        """Resolved callables dispatched into worker processes."""
        entries: Set[str] = set()
        for path in sorted(self.files):
            for _, target in self.files[path].worker_targets:
                if target in self.call_graph.defs:
                    entries.add(target)
        return sorted(entries)


def build_program_facts(files: Iterable[FileFacts]) -> ProgramFacts:
    return ProgramFacts({facts.path: facts for facts in files})
