"""Conservative intra-project call graph + determinism-taint pass.

Nodes are the qualified names of every function the facts collector
saw (``repro.core.keys.versioned_key``,
``repro.pdns.database.PdnsDatabase.ingest``, and one pseudo-node per
module for its top-level code).  An edge ``f → g`` exists when ``f``'s
body contains a call that *resolves* to ``g``: through an import
alias, a local module-level name, or a ``self.``/``cls.`` method of
the same class.  Unresolvable calls (arbitrary attribute chains,
higher-order values) produce no edge — the graph under-approximates
reachability but never invents it, which keeps the downstream rules'
false-positive rate near zero at the cost of missing exotic flows.

Three fixpoints are computed on top, all instances of one caller-ward
propagation (:meth:`CallGraph.propagate`):

* **worker reachability** — everything transitively callable from a
  function that is dispatched into a worker process
  (``pool.map(fn, ...)``, ``Process(target=fn)``); rule R011 flags
  module-state writes inside that set.
* **taint** — a function is *tainted* when its body invokes a
  nondeterminism source (wall clock, global-state RNG, unsorted
  directory listing, ``hash()``) or when it calls a tainted project
  function; rule R012 flags tainted values flowing into cache-key /
  artifact / parallel-dispatch sinks.
* **effects** — a function carries an effect (``materializes_entries``,
  ``performs_io``, ``blocks``, ``pickles_large``,
  ``mutates_module_state``) when its body exhibits it directly or when
  it calls a project function that carries it; rules R013/R014 consume
  the map, and R016 runs the same propagation over corruption-raising
  exception facts.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from tools.reprolint.facts import DefFacts, EFFECT_NAMES, FileFacts
from tools.reprolint.graph import ModuleGraph, build_module_graph

__all__ = ["CallGraph", "ProgramFacts", "build_program_facts"]


class CallGraph:
    """Resolved call edges over every def in the analyzed file set."""

    def __init__(self, files: Iterable[FileFacts]) -> None:
        self.defs: Dict[str, DefFacts] = {}
        self.def_paths: Dict[str, str] = {}
        for file_facts in files:
            for def_facts in file_facts.defs:
                self.defs[def_facts.qualname] = def_facts
                self.def_paths[def_facts.qualname] = file_facts.path
        self._edges: Dict[str, FrozenSet[str]] = {
            qualname: frozenset(target for target in def_facts.calls
                                if target in self.defs
                                and target != qualname)
            for qualname, def_facts in self.defs.items()}

    def callees_of(self, qualname: str) -> FrozenSet[str]:
        return self._edges.get(qualname, frozenset())

    def edge_list(self) -> List[Tuple[str, str]]:
        return sorted((source, target)
                      for source, targets in self._edges.items()
                      for target in targets)

    def reachable_from(self, roots: Iterable[str]) -> FrozenSet[str]:
        """``roots`` plus every def transitively callable from them."""
        frontier = [root for root in roots if root in self.defs]
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for callee in self._edges.get(current, frozenset()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    # -- caller-ward fixpoints ----------------------------------------

    def _caller_index(self) -> Dict[str, Set[str]]:
        callers: Dict[str, Set[str]] = {}
        for source, targets in self._edges.items():
            for target in targets:
                callers.setdefault(target, set()).add(source)
        return callers

    def propagate(self, seeds: Mapping[str, str]) -> Dict[str, str]:
        """Caller-ward fixpoint of a seeded property.

        ``seeds`` maps a def to the human-readable reason it holds the
        property directly.  The result adds every transitive caller,
        with a chain reason: ``"time.time"`` for a seed,
        ``"repro.x.helper (via time.time)"`` one hop up.  Seeds outside
        the graph are ignored.
        """
        marked: Dict[str, str] = {qualname: reason
                                  for qualname, reason in seeds.items()
                                  if qualname in self.defs}
        callers = self._caller_index()
        frontier = sorted(marked)
        while frontier:
            current = frontier.pop()
            reason = marked[current]
            root = reason.split(" (via ", 1)[0] if " (via " in reason \
                else reason
            for caller in sorted(callers.get(current, set())):
                if caller not in marked:
                    marked[caller] = f"{current} (via {root})"
                    frontier.append(caller)
        return marked

    def taint_map(self) -> Dict[str, str]:
        """Tainted def → human-readable root cause.

        A def is seeded tainted by a direct nondeterminism source in
        its body; taint then propagates caller-ward until fixpoint
        (``f`` calling tainted ``g`` makes ``f`` tainted).
        """
        return self.propagate({
            qualname: def_facts.source_calls[0][1]
            for qualname, def_facts in self.defs.items()
            if def_facts.source_calls})

    # -- effects -------------------------------------------------------

    def effect_map(self) -> Dict[str, Dict[str, str]]:
        """Per-def effect sets, propagated over the call graph.

        Maps each def to ``{effect name: reason}`` for every effect in
        :data:`~tools.reprolint.facts.EFFECT_NAMES` it exhibits —
        directly (the reason is the effect site's display detail) or
        transitively (the reason is the callee chain).  Defs with no
        effects are absent.
        """
        combined: Dict[str, Dict[str, str]] = {}
        for effect in EFFECT_NAMES:
            seeds: Dict[str, str] = {}
            for qualname, def_facts in self.defs.items():
                for name, _line, _col, detail in def_facts.effects:
                    if name == effect and qualname not in seeds:
                        seeds[qualname] = detail
                if (effect == "mutates_module_state"
                        and def_facts.global_writes
                        and qualname not in seeds):
                    first = def_facts.global_writes[0]
                    seeds[qualname] = f"writes module-level `{first[2]}`"
            for qualname, reason in self.propagate(seeds).items():
                combined.setdefault(qualname, {})[effect] = reason
        return combined


class ProgramFacts:
    """Everything the whole-program rules consume, in one place."""

    def __init__(self, files: Mapping[str, FileFacts]) -> None:
        self.files: Dict[str, FileFacts] = dict(files)
        ordered = [self.files[path] for path in sorted(self.files)]
        self.module_graph: ModuleGraph = build_module_graph(ordered)
        self.call_graph: CallGraph = CallGraph(ordered)

    def module_of_def(self, qualname: str) -> Optional[str]:
        path = self.call_graph.def_paths.get(qualname)
        if path is None:
            return None
        facts = self.files.get(path)
        return facts.module if facts is not None else None

    def worker_entry_points(self) -> List[str]:
        """Resolved callables dispatched into worker processes."""
        entries: Set[str] = set()
        for path in sorted(self.files):
            for _, target in self.files[path].worker_targets:
                if target in self.call_graph.defs:
                    entries.add(target)
        return sorted(entries)


def build_program_facts(files: Iterable[FileFacts]) -> ProgramFacts:
    return ProgramFacts({facts.path: facts for facts in files})
