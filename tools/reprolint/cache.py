"""Incremental result cache, backed by the repo's own ArtifactStore.

Per-file analysis results (violations + whole-program facts +
suppression directives) are content-addressed: the key hashes the
file's path, module identity, source bytes, and the *engine
fingerprint* — a hash of every ``tools/reprolint`` source file — so
editing either a target file or the linter itself invalidates exactly
the right entries.  Blobs are stored through
:class:`repro.core.artifact_store.ArtifactStore` (dogfooding the same
atomic-publish / corrupt-blob-is-a-miss semantics the simulation
caches rely on, rule R008's reference implementation).

Whole-program passes are cached the same way under a key derived from
every analyzed file's facts fingerprint: rerunning over an unchanged
tree skips graph construction and the taint fixpoint entirely, and
one well-known mutable blob (:data:`PROGRAM_STATE_KEY`) remembers the
previous run's per-module fingerprints + import edges so the engine
can report *which* dependents a change dirtied.
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = [
    "LintResultCache",
    "default_cache_dir",
    "engine_fingerprint",
]

_REPROLINT_DIR = Path(__file__).resolve().parent
_REPO_ROOT = _REPROLINT_DIR.parents[1]


def _import_artifact_store() -> Any:
    """Import :class:`ArtifactStore`, adding ``src/`` to ``sys.path``
    when the package is not installed (plain checkout)."""
    try:
        from repro.core.artifact_store import ArtifactStore
    except ImportError:
        src = _REPO_ROOT / "src"
        if str(src) not in sys.path and (src / "repro").is_dir():
            sys.path.insert(0, str(src))
        from repro.core.artifact_store import ArtifactStore
    return ArtifactStore


#: Suffix of cached per-file and program-pass results.
RESULT_SUFFIX = ".lint.json"

#: Well-known key of the previous-run program state blob.
PROGRAM_STATE_KEY = "program-state"

_FINGERPRINT: Optional[str] = None


def engine_fingerprint() -> str:
    """Hash of every reprolint source file (cached per process).

    Any change to the engine, a rule, or this module rotates the
    fingerprint and with it every cache key — stale results from an
    older linter can never be replayed.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        digest = hashlib.sha256()
        for path in sorted(_REPROLINT_DIR.rglob("*.py")):
            digest.update(str(path.relative_to(_REPROLINT_DIR)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def default_cache_dir() -> Path:
    return _REPO_ROOT / ".reprolint-cache"


def file_key(path: str, module: Optional[str], source: bytes) -> str:
    """Content-hash cache key for one file's analysis result."""
    digest = hashlib.sha256()
    digest.update(engine_fingerprint().encode())
    digest.update(b"\x00")
    digest.update(path.encode())
    digest.update(b"\x00")
    digest.update((module or "").encode())
    digest.update(b"\x00")
    digest.update(source)
    return digest.hexdigest()


class LintResultCache:
    """JSON blobs in an :class:`ArtifactStore`, keyed by content hash."""

    def __init__(self, root: Path) -> None:
        store_cls = _import_artifact_store()
        self._store = store_cls(root, suffix=RESULT_SUFFIX)

    @property
    def hits(self) -> int:
        return self._store.hits

    @property
    def misses(self) -> int:
        return self._store.misses

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        return self._store.load(
            key, _decode_json,
            miss_on=(ValueError, KeyError, TypeError))

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        blob = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        self._store.store_bytes(key, blob)

    # -- previous-run program state (mutable, not content-addressed) --

    def load_program_state(self) -> Optional[Dict[str, Any]]:
        return self._store.load(
            PROGRAM_STATE_KEY, _decode_json,
            miss_on=(ValueError, KeyError, TypeError))

    def store_program_state(self, payload: Dict[str, Any]) -> None:
        self.store(PROGRAM_STATE_KEY, payload)


def _decode_json(data: bytes) -> Dict[str, Any]:
    value = json.loads(data.decode("utf-8"))
    if not isinstance(value, dict):
        raise ValueError("cached lint result must be a JSON object")
    return value
