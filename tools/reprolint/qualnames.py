"""Resolve call targets to dotted qualified names through import aliases.

``import numpy as np`` followed by ``np.random.rand(3)`` resolves to
``numpy.random.rand``; ``from datetime import datetime`` followed by
``datetime.now()`` resolves to ``datetime.datetime.now``. Purely
syntactic — no imports are executed.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["build_alias_table", "qualified_name"]


def build_alias_table(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted origin they were imported as."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".", 1)[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue  # relative imports never reach stdlib/numpy names
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(node: ast.AST,
                   aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name for a ``Name``/``Attribute`` chain, alias-expanded.

    Returns ``None`` for anything else (subscripts, calls, literals):
    those cannot be statically resolved and are left alone.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = parts[0]
    if head in aliases:
        return ".".join([aliases[head]] + parts[1:])
    return ".".join(parts)
