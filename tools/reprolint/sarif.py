"""SARIF 2.1.0 rendering, so CI can annotate PRs with findings.

Only the schema subset GitHub code scanning actually consumes is
emitted: one run, a tool driver with the full rule catalogue
(R001–R017 plus the audit pseudo-rule), and one result per violation
with a physical location.  Columns are converted from the engine's
0-based ``col`` to SARIF's 1-based ``startColumn``.

When autofix patches are supplied (``render_sarif(..., patches=...)``),
each result whose site has a patch carries a SARIF ``fixes`` object —
``artifactChanges`` with a ``deletedRegion`` and ``insertedContent`` —
so code-scanning UIs can offer the one-click sorted-wrap.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from tools.reprolint.engine import PARSE_ERROR_ID, Violation
from tools.reprolint.rules import ALL_PROGRAM_RULES, ALL_RULES

if TYPE_CHECKING:
    from tools.reprolint.fixes import Patch

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "render_sarif",
           "sarif_document"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: Rules that exist outside the two registries.
_PSEUDO_RULES = (
    (PARSE_ERROR_ID, "parse-error", "The file failed to parse."),
    ("S001", "stale-suppression",
     "A `# reprolint: disable` comment no longer suppresses anything."),
)


def _rule_catalogue() -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    for rule in list(ALL_RULES) + list(ALL_PROGRAM_RULES):
        entries.append({
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        })
    for rule_id, name, description in _PSEUDO_RULES:
        entries.append({
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": name},
            "fullDescription": {"text": description},
            "defaultConfiguration": {"level": "error"},
        })
    return entries


def _fix_object(uri: str, patches: Sequence["Patch"]) -> Dict[str, Any]:
    return {
        "description": {"text": patches[0].description},
        "artifactChanges": [{
            "artifactLocation": {"uri": uri},
            "replacements": [{
                "deletedRegion": {
                    "startLine": patch.start_line,
                    "startColumn": patch.start_col + 1,
                    "endLine": patch.end_line,
                    "endColumn": patch.end_col + 1,
                },
                "insertedContent": {"text": patch.replacement},
            } for patch in patches],
        }],
    }


def _result(violation: Violation, rule_index: Dict[str, int],
            patches: Sequence["Patch"] = ()) -> Dict[str, Any]:
    uri = violation.path.replace("\\", "/")
    entry: Dict[str, Any] = {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
                "region": {
                    "startLine": max(1, violation.line),
                    "startColumn": max(1, violation.col + 1),
                },
            },
        }],
    }
    if violation.rule_id in rule_index:
        entry["ruleIndex"] = rule_index[violation.rule_id]
    owned = [patch for patch in patches
             if patch.path == violation.path
             and patch.rule_id == violation.rule_id
             and patch.violation_line == violation.line]
    if owned:
        entry["fixes"] = [_fix_object(uri, owned)]
    return entry


def sarif_document(violations: Sequence[Violation],
                   patches: Optional[Sequence["Patch"]] = None
                   ) -> Dict[str, Any]:
    """The SARIF log as a plain dict (tests poke at the shape)."""
    rules = _rule_catalogue()
    rule_index = {rule["id"]: position
                  for position, rule in enumerate(rules)}
    all_patches = list(patches or ())
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "reprolint",
                    "informationUri":
                        "docs/STATIC_ANALYSIS.md",
                    "version": "3.0.0",
                    "rules": rules,
                },
            },
            "columnKind": "unicodeCodePoints",
            "results": [_result(violation, rule_index, all_patches)
                        for violation in violations],
        }],
    }


def render_sarif(violations: Sequence[Violation],
                 patches: Optional[Sequence["Patch"]] = None) -> str:
    return json.dumps(sarif_document(violations, patches=patches),
                      indent=2, sort_keys=True)
