"""Suppression-comment handling.

Two comment directives are recognized anywhere a ``#`` comment is legal:

``# reprolint: disable=R001`` (or ``disable=R001,R006`` or ``disable=all``)
    Suppresses the named rules on the physical line carrying the comment.
    When the comment is the only thing on its line, it suppresses the
    *next* line instead, so multi-line statements can be annotated above.

``# reprolint: disable-file=R001`` (or ``disable-file=all``)
    Suppresses the named rules for the whole file.

A third directive, ``# reprolint: module=repro.core.something``, does not
suppress anything: it overrides the module name the engine infers from
the file path. It exists so the known-bad fixture corpus under
``tests/tools/corpus/`` can exercise rules that are scoped to ``repro.*``
modules without living inside the package.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["Directive", "Suppressions", "scan_comments"]

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable|module)\s*=\s*([\w.,*\s-]+)")

ALL_RULES_TOKEN = frozenset({"all", "*"})


def _parse_rule_list(raw: str) -> FrozenSet[str]:
    parts = {part.strip() for part in raw.split(",") if part.strip()}
    if parts & ALL_RULES_TOKEN:
        return frozenset({"all"})
    return frozenset(parts)


@dataclass(frozen=True)
class Directive:
    """One suppression comment, as written: where it sits, what kind it
    is, which rules it names, and which physical lines it covers.

    The stale-suppression audit (``--audit-suppressions``) marks a
    directive *stale* when no reported-or-suppressed violation matches
    both its rule set and its covered lines.
    """

    line: int                       # line carrying the comment
    kind: str                       # "disable" | "disable-file"
    rules: FrozenSet[str]           # rule ids, or {"all"}
    covered_lines: Tuple[int, ...]  # () for file-level directives

    def matches(self, rule_id: str, violation_line: int) -> bool:
        if "all" not in self.rules and rule_id not in self.rules:
            return False
        if self.kind == "disable-file":
            return True
        return violation_line in self.covered_lines

    def render(self) -> str:
        rules = ",".join(sorted(self.rules))
        return f"# reprolint: {self.kind}={rules}"


class Suppressions:
    """Per-file suppression state queried by the engine."""

    def __init__(self, line_rules: Dict[int, FrozenSet[str]],
                 file_rules: FrozenSet[str],
                 module_override: Optional[str] = None,
                 directives: Tuple[Directive, ...] = ()) -> None:
        self._line_rules = line_rules
        self._file_rules = file_rules
        self.module_override = module_override
        self.directives = directives

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self._file_rules or rule_id in self._file_rules:
            return True
        rules = self._line_rules.get(line)
        if rules is None:
            return False
        return "all" in rules or rule_id in rules


def scan_comments(source: str) -> Suppressions:
    """Extract suppression directives from ``source``.

    Tokenizes so that directives inside string literals are ignored.
    Falls back to a line scan if the file does not tokenize (the engine
    reports the syntax error separately).
    """
    comments: List[Tuple[int, str, bool]] = []  # (line, text, comment_only)
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            stripped = text.strip()
            if "#" in text:
                comments.append((lineno, text[text.index("#"):],
                                 stripped.startswith("#")))
    else:
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comment_only = tok.line.strip().startswith("#")
                comments.append((tok.start[0], tok.string, comment_only))

    line_rules: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    module_override: Optional[str] = None
    directives: List[Directive] = []
    for lineno, text, comment_only in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        kind, payload = match.group(1), match.group(2)
        if kind == "module":
            module_override = payload.strip()
            continue
        rules = _parse_rule_list(payload)
        if kind == "disable-file":
            file_rules |= rules
            directives.append(Directive(line=lineno, kind=kind,
                                        rules=rules, covered_lines=()))
        else:
            target = lineno + 1 if comment_only else lineno
            covered = [target]
            line_rules.setdefault(target, set()).update(rules)
            if comment_only:
                # A standalone directive also covers its own line so a
                # block of stacked directives never mis-targets.
                line_rules.setdefault(lineno, set()).update(rules)
                covered.append(lineno)
            directives.append(Directive(line=lineno, kind=kind,
                                        rules=rules,
                                        covered_lines=tuple(sorted(set(covered)))))

    frozen = {line: frozenset(rules) for line, rules in line_rules.items()}
    return Suppressions(frozen, frozenset(file_rules), module_override,
                        tuple(directives))
