"""R008 atomic-cache-publish: cache writes must publish atomically.

The on-disk caches (:mod:`repro.traffic.artifacts`,
:mod:`repro.core.mining_pipeline`) are shared between concurrent
processes — sharded simulators and calendar-miner workers all write to
the same directory.  A cache method that opens the *final* path for
writing exposes a torn-read window: a concurrent reader (or a crashed
writer) sees a half-written blob.  Worse, two writers using the same
fixed temp name (``<key>.tmp``) truncate each other mid-write.  The
repo-wide contract is the one :class:`repro.core.artifact_store
.ArtifactStore` implements: write to a per-process unique temp file
(``tempfile.mkstemp``) and publish with ``os.replace``.

This rule flags file-writing calls inside methods of cache/store
classes (class name containing ``Cache`` or ``Store``) when the class
performs no ``replace``/``rename`` publication anywhere in its body.

Flagged write calls:

- ``open(path, "w"/"wb"/"wt"/"a"...)`` and ``gzip.open``/``bz2.open``/
  ``lzma.open`` with a write or append mode,
- ``path.write_text(...)`` / ``path.write_bytes(...)``,
- ``np.save``/``np.savez``/``np.savez_compressed``,
- ``json.dump``/``pickle.dump`` (writing into an already-open handle
  implies that handle was opened on some path).

A class that calls ``os.replace``/``os.rename`` (or the ``Path``
method equivalents) somewhere in its body is considered to implement
the temp-then-publish pattern and is not flagged — the rule is a
tripwire for caches that skip the pattern entirely, not a dataflow
prover.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from tools.reprolint.engine import ModuleContext, Rule, Violation

__all__ = ["AtomicCachePublishRule"]

#: Class-name substrings identifying persistence classes.
_CACHE_NAME_MARKERS = ("Cache", "Store")

#: ``module.open``-style openers that hit the filesystem.
_OPEN_FUNCTIONS = frozenset({"open"})
_OPEN_MODULES = frozenset({"gzip", "bz2", "lzma", "io"})

#: ``Path`` convenience writers.
_PATH_WRITERS = frozenset({"write_text", "write_bytes"})

#: numpy array persisters.
_NUMPY_WRITERS = frozenset({"save", "savez", "savez_compressed"})
_NUMPY_MODULES = frozenset({"np", "numpy"})

#: serialisers that write into an open handle.
_DUMPERS = frozenset({"dump"})
_DUMPER_MODULES = frozenset({"json", "pickle", "marshal"})

#: Calls whose presence marks the atomic-publish pattern.
_PUBLISH_ATTRS = frozenset({"replace", "rename"})


def _is_write_mode(call: ast.Call) -> bool:
    """True if an ``open``-style call's mode literal writes or appends."""
    mode: ast.expr | None = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return any(flag in mode.value for flag in ("w", "a", "x", "+"))
    return False


def _module_of(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    return ""


def _write_call_reason(call: ast.Call) -> str:
    """Why this call writes a file directly, or '' if it doesn't."""
    func = call.func
    if isinstance(func, ast.Name) and func.id in _OPEN_FUNCTIONS:
        if _is_write_mode(call):
            return "open(..., 'w')"
        return ""
    if isinstance(func, ast.Attribute):
        module = _module_of(func)
        if func.attr in _OPEN_FUNCTIONS and module in _OPEN_MODULES:
            if _is_write_mode(call):
                return f"{module}.open(..., 'w')"
            return ""
        if func.attr in _PATH_WRITERS:
            return f".{func.attr}()"
        if func.attr in _NUMPY_WRITERS and module in _NUMPY_MODULES:
            return f"{module}.{func.attr}()"
        if func.attr in _DUMPERS and module in _DUMPER_MODULES:
            return f"{module}.{func.attr}()"
    return ""


def _publishes_atomically(class_node: ast.ClassDef) -> bool:
    """True if the class body contains a replace/rename publication."""
    for node in ast.walk(class_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _PUBLISH_ATTRS:
            return True
    return False


class AtomicCachePublishRule(Rule):
    rule_id = "R008"
    name = "atomic-cache-publish"
    description = ("cache/store classes must publish blobs atomically: "
                   "write to a per-process unique temp file and "
                   "os.replace() it into place, never open the final "
                   "path for writing.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        classes: List[ast.ClassDef] = [
            node for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ClassDef)
            and any(marker in node.name for marker in _CACHE_NAME_MARKERS)]
        for class_node in classes:
            if _publishes_atomically(class_node):
                continue
            for node in ast.walk(class_node):
                if not isinstance(node, ast.Call):
                    continue
                reason = _write_call_reason(node)
                if reason:
                    yield self.violation(
                        ctx, node,
                        f"{class_node.name} writes via {reason} without an "
                        "os.replace() publish — write to a mkstemp() temp "
                        "file and os.replace() it into place (see "
                        "repro.core.artifact_store.ArtifactStore)")
