"""R015 unbounded-growth: long-lived objects must bound their state.

The ROADMAP targets a streaming/online mining mode and a resident
``repro serve`` daemon; both die slowly if any long-lived object
(cache, tracker, collector, registry, context) accumulates per-day or
per-query state with no eviction path.  This rule finds classes whose
name marks them long-lived and whose ``self.*`` containers only ever
grow: every mutation site is an append/add/update/``[...] =`` store,
and no method anywhere in the class shrinks (``pop``/``clear``/
``del``/slice-reset), resets the attribute, or checks ``len()``
against a bound.

One violation per attribute (at its first growth site outside
``__init__``), so a leaky ledger reads as one finding, not fifty.
The fix is a retention bound, an eviction path, or — when unbounded
growth *is* the semantics (e.g. a first-seen ledger) — a baseline
entry with a burn-down note.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.reprolint.engine import ModuleContext, Rule, Violation

__all__ = ["UnboundedGrowthRule"]

#: Class-name fragments that mark an object as long-lived.
_LONG_LIVED = re.compile(
    r"Cache|Store|Tracker|Collector|Registry|Ledger|Context|"
    r"Accumulator|History|Session|Monitor|Journal")

#: Container method calls that grow the receiver.
_GROW_CALLS = frozenset({
    "append", "appendleft", "add", "update", "extend", "insert",
    "setdefault",
})

#: Container method calls that shrink (or may shrink) the receiver.
_SHRINK_CALLS = frozenset({
    "pop", "popitem", "popleft", "remove", "discard", "clear",
    "prune", "evict", "expire", "trim", "compact", "truncate",
    "drop", "release",
})


def _is_self_attr(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _self_attr_method(func: ast.expr) -> Optional[Tuple[str, str]]:
    """``("attr", "meth")`` for ``self.<attr>.<meth>(...)``."""
    if isinstance(func, ast.Attribute) and _is_self_attr(func.value):
        return func.value.attr, func.attr
    return None


def _len_of_self_attr(node: ast.expr) -> Optional[str]:
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "len" and node.args
            and _is_self_attr(node.args[0])):
        return node.args[0].attr
    return None


def _is_bounded_constructor(value: ast.expr) -> bool:
    """``deque(maxlen=...)`` with a real bound: grows, but never
    beyond ``maxlen`` — append past the limit evicts the other end."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    terminal = (func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None)
    if terminal != "deque":
        return False
    for keyword in value.keywords:
        if keyword.arg == "maxlen":
            is_none = (isinstance(keyword.value, ast.Constant)
                       and keyword.value.value is None)
            return not is_none
    return False


class UnboundedGrowthRule(Rule):
    rule_id = "R015"
    name = "unbounded-growth"
    description = ("long-lived objects (caches, trackers, collectors, "
                   "contexts) must not hold containers that only ever "
                   "grow — add a retention bound, an eviction path, or "
                   "a documented reset, or the streaming/daemon modes "
                   "leak without limit.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if (isinstance(node, ast.ClassDef)
                    and _LONG_LIVED.search(node.name)):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: ModuleContext,
                     cls: ast.ClassDef) -> Iterator[Violation]:
        grows: Dict[str, List[Tuple[ast.AST, str]]] = {}
        bounded: Set[str] = set()
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            in_init = method.name == "__init__"
            for inner in ast.walk(method):
                if isinstance(inner, ast.Call):
                    target = _self_attr_method(inner.func)
                    if target is None:
                        continue
                    attr, meth = target
                    if meth in _SHRINK_CALLS:
                        bounded.add(attr)
                    elif meth in _GROW_CALLS and not in_init:
                        grows.setdefault(attr, []).append(
                            (inner, f".{meth}(...)"))
                elif isinstance(inner, ast.Assign):
                    if _is_bounded_constructor(inner.value):
                        for tgt in inner.targets:
                            if _is_self_attr(tgt):
                                bounded.add(tgt.attr)
                    for tgt in inner.targets:
                        self._classify_store(tgt, in_init, grows, bounded)
                elif isinstance(inner, ast.Delete):
                    for tgt in inner.targets:
                        if (isinstance(tgt, ast.Subscript)
                                and _is_self_attr(tgt.value)):
                            bounded.add(tgt.value.attr)
                        elif _is_self_attr(tgt):
                            bounded.add(tgt.attr)
                elif isinstance(inner, ast.Compare):
                    for operand in [inner.left] + list(inner.comparators):
                        attr = _len_of_self_attr(operand)
                        if attr is not None:
                            bounded.add(attr)
        for attr in sorted(grows):
            if attr in bounded:
                continue
            sites = sorted(grows[attr],
                           key=lambda pair: (pair[0].lineno,
                                             pair[0].col_offset))
            node, how = sites[0]
            noun = "site" if len(sites) == 1 else "sites"
            yield self.violation(
                ctx, node,
                f"`self.{attr}` on long-lived `{cls.name}` only ever "
                f"grows ({len(sites)} {how} {noun}, no "
                f"pop/clear/del/len-bound anywhere in the class) — "
                f"long-running streaming or serve modes will leak; add "
                f"a retention bound or eviction path")

    @staticmethod
    def _classify_store(target: ast.expr, in_init: bool,
                        grows: Dict[str, List[Tuple[ast.AST, str]]],
                        bounded: Set[str]) -> None:
        if isinstance(target, ast.Subscript) and _is_self_attr(target.value):
            attr = target.value.attr
            if isinstance(target.slice, ast.Slice):
                bounded.add(attr)  # slice reset: self._x[:k] = ...
            elif not in_init:
                grows.setdefault(attr, []).append((target, "[...] ="))
        elif _is_self_attr(target) and not in_init:
            # Reassignment outside __init__ is a reset: bounded.
            bounded.add(target.attr)
