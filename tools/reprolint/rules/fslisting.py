"""R010 unsorted-fs-listing: directory listings must be sorted.

``os.listdir``, ``os.scandir``, ``glob.glob`` and ``Path.iterdir`` /
``Path.glob`` return entries in *filesystem* order — an artifact of
inode allocation that differs between machines, filesystems, and even
runs.  Any listing that feeds computation (cache pruning, artifact
discovery, corpus loading) therefore injects host state into the
result unless the listing is sorted first.

Flagged: a listing call whose value escapes without an enclosing
``sorted(...)`` (or another order-insensitive reducer such as ``sum``
/ ``len`` / ``max`` / ``set``).  ``os.walk`` is always flagged — even
``sorted(os.walk(...))`` only sorts the top level; walk manually over
sorted listings instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.astutil import parent_map, sanitizing_ancestor
from tools.reprolint.engine import ModuleContext, Rule, Violation
from tools.reprolint.qualnames import build_alias_table, qualified_name

__all__ = ["UnsortedFsListingRule"]

#: Fully-qualified listing functions (resolved through import aliases).
_LISTING_FUNCTIONS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: Path-object listing methods, matched by attribute name on any
#: receiver (purely syntactic; ``glob.glob`` resolves above first).
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Never acceptable unsorted; sorted() on the outside is not enough.
_WALK_FUNCTIONS = frozenset({"os.walk", "os.fwalk"})


class UnsortedFsListingRule(Rule):
    rule_id = "R010"
    name = "unsorted-fs-listing"
    description = ("directory listings (os.listdir, glob, Path.iterdir/"
                   "glob/rglob) come back in filesystem order; wrap them "
                   "in sorted(...) before the order can reach any "
                   "computation or output.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") or ctx.in_package("tools")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        aliases = build_alias_table(ctx.tree)
        parents = parent_map(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = qualified_name(node.func, aliases)
            if resolved in _WALK_FUNCTIONS:
                yield self.violation(
                    ctx, node,
                    f"`{resolved}()` yields filesystem-ordered listings "
                    f"at every level and sorted() on the outside only "
                    f"sorts the top — recurse over sorted(iterdir()) "
                    f"instead")
                continue
            listing = None
            if resolved in _LISTING_FUNCTIONS:
                listing = resolved
            elif (resolved not in _LISTING_FUNCTIONS
                  and isinstance(node.func, ast.Attribute)
                  and node.func.attr in _LISTING_METHODS):
                listing = f".{node.func.attr}"
            if listing is None:
                continue
            if sanitizing_ancestor(node, parents, aliases) is not None:
                continue
            yield self.violation(
                ctx, node,
                f"`{listing}(...)` returns entries in filesystem order, "
                f"which varies across hosts and runs — wrap the listing "
                f"in sorted(...) so downstream results are a function of "
                f"the directory contents only")
