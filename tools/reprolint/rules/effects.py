"""Whole-program effect rules R013, R014, R016, R017.

These consume the v3 effect facts (:mod:`tools.reprolint.facts`) and
the caller-ward propagation on the call graph
(:meth:`tools.reprolint.callgraph.CallGraph.propagate`):

* **R013** — entry materialisation reachable from a digest-native hot
  path.  ``run_digest`` / ``*_from_digest`` functions and worker entry
  points exist precisely so the per-entry rows never get rebuilt; a
  ``.entries()``-style call anywhere in their call cone reintroduces
  the O(entries) transposition the fpDNS-v2 columnar plane avoids.
* **R014** — heavy per-entry payloads (entry lists, datasets) pickled
  into ``ProcessPoolExecutor`` / ``multiprocessing`` dispatches.  This
  is the ROADMAP's measured failure mode: sharded simulation ran at
  0.18x serial because each worker deserialised the full entry list.
* **R016** — broad ``except`` handlers that swallow corruption
  signals: the try body (transitively) raises ``*FormatError`` /
  ``*CorruptionError`` or calls a raw decoder, and the handler neither
  narrows the exception type nor re-raises, so a corrupt artifact
  degrades into a silent miss.
* **R017** — service/CLI layering: ``repro.*`` library modules must
  never import the service surfaces (``repro.service``,
  ``repro.experiments.cli``), so a future ``repro serve`` daemon can
  embed the library without dragging in argument parsing or sockets.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from tools.reprolint.callgraph import ProgramFacts
from tools.reprolint.engine import Violation
from tools.reprolint.facts import is_corruption_exception
from tools.reprolint.rules.whole_program import ProgramRule, _in_scope

__all__ = [
    "ALL_EFFECT_RULES",
    "DigestPathMaterializationRule",
    "HeavyPayloadIpcRule",
    "ServiceImportLayeringRule",
    "SwallowedCorruptionRule",
]

#: Function-name shapes that mark a digest-native hot path.
_HOT_ROOT_TERMINALS = frozenset({"run_digest"})
_HOT_ROOT_SUFFIXES = ("_from_digest",)

#: Raw decoders whose broad-catch wrappers hide corruption (R016).
_DIRECT_DECODERS = frozenset({
    "json.load", "json.loads", "pickle.load", "pickle.loads",
    "marshal.load", "marshal.loads", "numpy.load",
})

#: Module prefixes that *are* the service/CLI surface (R017).
_SURFACE_PREFIXES = ("repro.service", "repro.experiments.cli",
                     "repro.__main__")


def _is_hot_root(qualname: str) -> bool:
    terminal = qualname.rsplit(".", 1)[-1]
    return (terminal in _HOT_ROOT_TERMINALS
            or any(terminal.endswith(suffix)
                   for suffix in _HOT_ROOT_SUFFIXES))


def _is_surface_module(module: str) -> bool:
    return any(module == prefix or module.startswith(prefix + ".")
               for prefix in _SURFACE_PREFIXES)


class DigestPathMaterializationRule(ProgramRule):
    rule_id = "R013"
    name = "digest-path-materialization"
    description = ("functions reachable from a digest-native hot path "
                   "(run_digest, *_from_digest, worker entry points) "
                   "must not materialise per-entry rows (.entries(), "
                   "entries_snapshot(), ...) — stay columnar or move "
                   "the materialisation off the hot path.")

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        graph = program.call_graph
        roots = sorted({qualname for qualname in graph.defs
                        if _is_hot_root(qualname)}
                       | set(program.worker_entry_points()))
        hit_by: Dict[str, List[str]] = {}
        for root in roots:
            for qualname in graph.reachable_from([root]):
                hit_by.setdefault(qualname, []).append(root)
        for qualname in sorted(graph.defs):
            roots_hitting = hit_by.get(qualname)
            if not roots_hitting:
                continue
            module = program.module_of_def(qualname)
            if module is None or not _in_scope(module):
                continue
            for effect, line, col, detail in graph.defs[qualname].effects:
                if effect != "materializes_entries":
                    continue
                shown = ", ".join(f"`{root}`"
                                  for root in sorted(roots_hitting)[:3])
                extra = len(roots_hitting) - 3
                if extra > 0:
                    shown += f" (+{extra} more)"
                yield Violation(
                    rule_id=self.rule_id,
                    path=graph.def_paths[qualname], line=line, col=col,
                    message=(f"{detail} materialises per-entry rows "
                             f"inside `{qualname}`, which is reachable "
                             f"from digest-native hot path(s) {shown} — "
                             f"stay on the columnar digest plane "
                             f"(day_digest/digest_of) or move the "
                             f"materialisation off the hot path"))


class HeavyPayloadIpcRule(ProgramRule):
    rule_id = "R014"
    name = "heavy-payload-ipc"
    description = ("entry lists and datasets must not be pickled into "
                   "pool/Process dispatches — pass digest columns or "
                   "fpDNS-v2 blob paths and materialise inside the "
                   "worker (sharded simulation measured 0.18x serial "
                   "from exactly this).")

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        graph = program.call_graph
        for qualname in sorted(graph.defs):
            module = program.module_of_def(qualname)
            if module is None or not _in_scope(module):
                continue
            for effect, line, col, detail in graph.defs[qualname].effects:
                if effect != "pickles_large":
                    continue
                yield Violation(
                    rule_id=self.rule_id,
                    path=graph.def_paths[qualname], line=line, col=col,
                    message=(f"{detail} — per-entry payloads crossing "
                             f"the process boundary are re-pickled for "
                             f"every task; pass digest columns or blob "
                             f"paths and let the worker materialise "
                             f"locally"))


class SwallowedCorruptionRule(ProgramRule):
    rule_id = "R016"
    name = "swallowed-corruption"
    description = ("broad `except` around decode/load paths converts "
                   "corrupt artifacts into silent cache misses — catch "
                   "FormatError (or the specific corruption exception) "
                   "narrowly, or re-raise.")

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        graph = program.call_graph
        seeds: Dict[str, str] = {}
        for qualname, def_facts in graph.defs.items():
            for raised in def_facts.raises:
                if is_corruption_exception(raised):
                    seeds.setdefault(qualname, f"raises `{raised}`")
        raisers = graph.propagate(seeds)
        for qualname in sorted(graph.defs):
            module = program.module_of_def(qualname)
            if module is None or not _in_scope(module):
                continue
            def_facts = graph.defs[qualname]
            for line, col, kind, calls in def_facts.broad_handlers:
                evidence: List[str] = []
                for call in calls:
                    if call in raisers:
                        evidence.append(f"`{call}` ({raisers[call]})")
                    elif call in _DIRECT_DECODERS:
                        evidence.append(f"decoder `{call}(...)`")
                if not evidence:
                    continue
                shown = "; ".join(sorted(evidence)[:3])
                yield Violation(
                    rule_id=self.rule_id,
                    path=graph.def_paths[qualname], line=line, col=col,
                    message=(f"broad `{kind}` swallows corruption "
                             f"signals from the try body ({shown}) — "
                             f"catch the corruption exception narrowly "
                             f"so corrupt artifacts fail loudly instead "
                             f"of degrading into silent misses"))


class ServiceImportLayeringRule(ProgramRule):
    rule_id = "R017"
    name = "service-import-layering"
    description = ("repro.* library modules must not import the "
                   "service/CLI surfaces (repro.service, "
                   "repro.experiments.cli) — the library has to stay "
                   "embeddable by the `repro serve` daemon without "
                   "dragging in argument parsing or sockets.")

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        for path in sorted(program.files):
            facts = program.files[path]
            module = facts.module
            if module is None or not (module == "repro"
                                      or module.startswith("repro.")):
                continue
            if _is_surface_module(module):
                continue
            seen_lines = set()
            for line, imported in sorted(facts.import_sites):
                if not _is_surface_module(imported):
                    continue
                if line in seen_lines:
                    continue
                seen_lines.add(line)
                yield Violation(
                    rule_id=self.rule_id, path=path, line=line, col=0,
                    message=(f"library module `{module}` imports "
                             f"service/CLI surface `{imported}` — "
                             f"invert the dependency (the surface "
                             f"imports the library) or move the shared "
                             f"code into the library layer"))


ALL_EFFECT_RULES: List[ProgramRule] = [
    DigestPathMaterializationRule(),
    HeavyPayloadIpcRule(),
    SwallowedCorruptionRule(),
    ServiceImportLayeringRule(),
]
