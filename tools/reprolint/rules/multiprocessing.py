"""R007 picklable-workers: multiprocessing entry points must pickle.

The sharded simulator (:mod:`repro.traffic.parallel`) fans work out to
``multiprocessing`` pools.  Worker callables cross the process boundary
by pickling, and pickle serialises functions *by qualified name*: a
lambda or a function defined inside another function imports fine in
the parent but raises ``PicklingError`` the first time a pool actually
runs — typically only under a multi-worker configuration that the test
suite's fast paths never exercise.  This rule makes that a static
error instead.

Flagged:

- a ``lambda`` or nested ``def`` passed as the callable of a pool
  dispatch method (``pool.map(lambda ...)``),
- a ``lambda`` or nested ``def`` as the ``target=`` of a ``Process``.

Top-level functions (including imported names) pass: they have a
stable qualified name the child process can re-import.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from tools.reprolint.engine import ModuleContext, Rule, Violation

__all__ = ["PicklableWorkersRule"]

#: Pool methods whose first argument (or ``func=``) runs in a worker.
_POOL_DISPATCH = frozenset({
    "map", "map_async", "imap", "imap_unordered",
    "apply", "apply_async", "starmap", "starmap_async",
})

#: Constructors whose ``target=`` runs in a worker.
_PROCESS_TYPES = frozenset({"Process"})


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function's body."""
    nested: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    nested.add(inner.name)
    return nested


def _worker_argument(call: ast.Call) -> ast.expr:
    """The callable a pool dispatch call would ship to a worker."""
    for keyword in call.keywords:
        if keyword.arg == "func":
            return keyword.value
    if call.args:
        return call.args[0]
    return call.func  # degenerate call; nothing to flag


class PicklableWorkersRule(Rule):
    rule_id = "R007"
    name = "picklable-workers"
    description = ("multiprocessing worker entry points must be top-level "
                   "functions: lambdas and nested defs cannot be pickled "
                   "across the process boundary.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        nested = _nested_function_names(ctx.tree)

        def unpicklable(candidate: ast.expr) -> str:
            if isinstance(candidate, ast.Lambda):
                return "a lambda"
            if isinstance(candidate, ast.Name) and candidate.id in nested:
                return f"nested function {candidate.id!r}"
            return ""

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in _POOL_DISPATCH):
                reason = unpicklable(_worker_argument(node))
                if reason:
                    yield self.violation(
                        ctx, node,
                        f"{reason} passed to pool.{func.attr}() cannot be "
                        "pickled into a worker process — use a top-level "
                        "function")
            target_name = (func.attr if isinstance(func, ast.Attribute)
                           else func.id if isinstance(func, ast.Name)
                           else "")
            if target_name in _PROCESS_TYPES:
                for keyword in node.keywords:
                    if keyword.arg != "target":
                        continue
                    reason = unpicklable(keyword.value)
                    if reason:
                        yield self.violation(
                            ctx, node,
                            f"{reason} as Process(target=...) cannot be "
                            "pickled into a worker process — use a "
                            "top-level function")
