"""R001 no-wall-clock and R002 seeded-rng-only.

Every figure and table in EXPERIMENTS.md must be bit-reproducible from a
seed. A single ``time.time()`` or unseeded ``random`` call inside
``src/repro/`` silently breaks that contract, so both are banned at the
AST level: simulation code sees only simulated timestamps
(``QueryEvent.timestamp``) and RNG instances threaded through
constructors (``np.random.default_rng(seed)`` / ``random.Random(seed)``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import ModuleContext, Rule, Violation
from tools.reprolint.nondet import (BANNED_CLOCKS, NUMPY_RANDOM_OK,
                                    SEEDED_CONSTRUCTORS)
from tools.reprolint.qualnames import build_alias_table, qualified_name

__all__ = ["BANNED_CLOCKS", "NUMPY_RANDOM_OK", "NoWallClockRule",
           "SEEDED_CONSTRUCTORS", "SeededRngOnlyRule"]


class NoWallClockRule(Rule):
    rule_id = "R001"
    name = "no-wall-clock"
    description = ("Wall-clock reads (time.time, datetime.now, ...) are "
                   "banned inside src/repro/ — simulated time only.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        aliases = build_alias_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = qualified_name(node.func, aliases)
            if target in BANNED_CLOCKS:
                yield self.violation(
                    ctx, node,
                    f"wall-clock read `{target}()` — repro code must use "
                    f"simulated timestamps (e.g. QueryEvent.timestamp), "
                    f"never host time")


class SeededRngOnlyRule(Rule):
    rule_id = "R002"
    name = "seeded-rng-only"
    description = ("Module-level random.*/np.random.* convenience calls are "
                   "banned; thread random.Random(seed) or "
                   "np.random.default_rng(seed) instances through "
                   "constructors instead.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        aliases = build_alias_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = qualified_name(node.func, aliases)
            if target is None:
                continue
            if target == "random.SystemRandom":
                yield self.violation(
                    ctx, node,
                    "`random.SystemRandom` is never reproducible; use "
                    "`random.Random(seed)` or `np.random.default_rng(seed)`")
            elif target in SEEDED_CONSTRUCTORS:
                if not node.args and not node.keywords:
                    yield self.violation(
                        ctx, node,
                        f"`{target}()` without an explicit seed is "
                        f"entropy-seeded and breaks bit-reproducibility; "
                        f"pass a seed")
            elif target.startswith("random."):
                yield self.violation(
                    ctx, node,
                    f"global-state RNG call `{target}()` — construct "
                    f"`random.Random(seed)` and thread it through instead")
            elif (target.startswith("numpy.random.")
                  and target not in NUMPY_RANDOM_OK):
                yield self.violation(
                    ctx, node,
                    f"legacy/global numpy RNG call `{target}()` — use a "
                    f"`np.random.default_rng(seed)` Generator instance "
                    f"threaded through constructors")
