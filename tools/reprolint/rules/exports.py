"""R005 all-exports-exist: honest ``__all__`` in every public module.

``tests/test_public_api.py`` checks exports resolve at runtime for the
packages it lists; this rule closes the gap statically for *every*
module: each name in ``__all__`` must be defined or imported, and each
public module must declare ``__all__`` at all (the convention this repo
uses to mark its supported surface and to make mypy's implicit-reexport
rules predictable).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from tools.reprolint.engine import ModuleContext, Rule, Violation

__all__ = ["AllExportsExistRule"]

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def _collect_names(body: List[ast.stmt], defined: Set[str],
                   star_import: List[bool]) -> None:
    """Names bound at module level, descending into compound statements
    (if/try/for/while/with) but not into new scopes."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            defined.add(stmt.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign,
                               ast.For, ast.AsyncFor)):
            targets: List[ast.expr]
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            else:
                targets = [stmt.target]
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        defined.add(node.id)
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                _collect_names(stmt.body, defined, star_import)
                _collect_names(stmt.orelse, defined, star_import)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                defined.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name == "*":
                    star_import[0] = True
                else:
                    defined.add(alias.asname or alias.name)
        elif isinstance(stmt, ast.If):
            _collect_names(stmt.body, defined, star_import)
            _collect_names(stmt.orelse, defined, star_import)
        elif isinstance(stmt, ast.Try):
            _collect_names(stmt.body, defined, star_import)
            for handler in stmt.handlers:
                _collect_names(handler.body, defined, star_import)
            _collect_names(stmt.orelse, defined, star_import)
            _collect_names(stmt.finalbody, defined, star_import)
        elif isinstance(stmt, (ast.While,)):
            _collect_names(stmt.body, defined, star_import)
            _collect_names(stmt.orelse, defined, star_import)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for node in ast.walk(item.optional_vars):
                        if isinstance(node, ast.Name):
                            defined.add(node.id)
            _collect_names(stmt.body, defined, star_import)


def _literal_all(tree: ast.Module) \
        -> Tuple[Optional[ast.stmt], List[Tuple[str, ast.stmt]]]:
    """The ``__all__`` statement and its string entries, if present."""
    found: Optional[ast.stmt] = None
    names: List[Tuple[str, ast.stmt]] = []
    for stmt in tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            target, value = stmt.target, stmt.value
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        found = stmt
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) \
                        and isinstance(element.value, str):
                    names.append((element.value, stmt))
    return found, names


class AllExportsExistRule(Rule):
    rule_id = "R005"
    name = "all-exports-exist"
    description = ("Every name in __all__ must be defined; every public "
                   "repro module must declare __all__.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        if not ctx.in_package("repro"):
            return False
        # Private modules (and __main__ shims) are exempt; module names
        # for packages are the package itself, never "__init__".
        return not ctx.module_parts[-1].startswith("_")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        all_stmt, exported = _literal_all(ctx.tree)
        if all_stmt is None:
            yield self.violation(
                ctx, ctx.tree.body[0] if ctx.tree.body else ctx.tree,
                f"public module `{ctx.module}` does not declare __all__ — "
                f"list its supported names explicitly")
            return
        defined: Set[str] = set()
        star_import = [False]
        _collect_names(ctx.tree.body, defined, star_import)
        if star_import[0]:
            return  # `import *` makes static verification impossible
        for name, stmt in exported:
            if name not in defined:
                yield self.violation(
                    ctx, stmt,
                    f"`__all__` exports `{name}` but `{ctx.module}` never "
                    f"defines or imports it")
