"""R006 no-float-eq: tolerance helpers instead of ``==`` on floats.

The measurement layers (``repro.analysis``, ``repro.impact``) aggregate
hit rates, ratios, and cache fractions; exact ``==``/``!=`` on such
values is a latent bug the interpreter will never flag. Compare integer
counts where possible, or use :func:`repro.core.numeric.approx_eq` /
:func:`repro.core.numeric.is_zero`.

Static float-ness is undecidable, so this rule flags comparisons where
either operand *syntactically* looks float-valued:

- a float literal (``x == 0.0``),
- a true division (``hits / total == other``),
- a call to ``.mean()`` / ``.std()`` / ``.var()``,
- a name or attribute whose final identifier ends in ``_rate``,
  ``_ratio``, ``_fraction``, ``_frac``, or ``_share``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.reprolint.engine import ModuleContext, Rule, Violation

__all__ = ["NoFloatEqRule"]

_FLOAT_METHODS = frozenset({"mean", "std", "var"})
_FLOAT_SUFFIXES = ("_rate", "_ratio", "_fraction", "_frac", "_share")


def _identifier(node: ast.expr) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _looks_float(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in _FLOAT_METHODS:
            return True
    if isinstance(node, ast.UnaryOp):
        return _looks_float(node.operand)
    name = _identifier(node)
    return name.endswith(_FLOAT_SUFFIXES)


class NoFloatEqRule(Rule):
    rule_id = "R006"
    name = "no-float-eq"
    description = ("No ==/!= between float-typed expressions in analysis/ "
                   "and impact/; use repro.core.numeric.approx_eq/is_zero "
                   "or compare integer counts.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return (ctx.in_package("repro.analysis")
                or ctx.in_package("repro.impact"))

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _looks_float(left) or _looks_float(right):
                    yield self.violation(
                        ctx, node,
                        "exact ==/!= on a float-valued expression — use "
                        "repro.core.numeric.approx_eq/is_zero (or compare "
                        "the underlying integer counts)")
                    break
