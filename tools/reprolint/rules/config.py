"""R004 frozen-config: ``*Config`` dataclasses must be frozen or validate.

Config objects are captured by long-lived simulators and experiment
contexts; silent mutation or out-of-range values corrupt a whole run.
A dataclass whose name ends in ``Config`` must therefore either be
``@dataclass(frozen=True)`` or define ``__post_init__`` validation, the
pattern set by ``MinerConfig`` in ``src/repro/core/miner.py``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from tools.reprolint.engine import ModuleContext, Rule, Violation
from tools.reprolint.qualnames import build_alias_table, qualified_name

__all__ = ["FrozenConfigRule"]

_DATACLASS_NAMES = frozenset({"dataclass", "dataclasses.dataclass"})


def _dataclass_decorator(node: ast.ClassDef,
                         aliases: Dict[str, str]) -> Optional[ast.expr]:
    """The ``@dataclass`` decorator node, or ``None``."""
    for decorator in node.decorator_list:
        func = decorator.func if isinstance(decorator, ast.Call) else decorator
        if qualified_name(func, aliases) in _DATACLASS_NAMES:
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _has_post_init(node: ast.ClassDef) -> bool:
    return any(isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
               and stmt.name == "__post_init__"
               for stmt in node.body)


class FrozenConfigRule(Rule):
    rule_id = "R004"
    name = "frozen-config"
    description = ("Dataclasses named *Config must be frozen=True or "
                   "validate in __post_init__.")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        aliases = build_alias_table(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config"):
                continue
            decorator = _dataclass_decorator(node, aliases)
            if decorator is None:
                continue
            if _is_frozen(decorator) or _has_post_init(node):
                continue
            yield self.violation(
                ctx, node,
                f"config dataclass `{node.name}` is mutable and unvalidated "
                f"— declare `@dataclass(frozen=True)` or add a "
                f"`__post_init__` that range-checks its fields (see "
                f"MinerConfig)")
