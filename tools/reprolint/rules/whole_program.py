"""Whole-program rules R011 and R012.

Unlike R001–R010, these cannot be decided one file at a time: a worker
entry point may live in ``traffic.parallel`` while the global it
mutates sits three calls away in ``core``, and a cache key may be
derived in ``core.keys`` from a value produced by a tainted helper in
another package.  Both rules therefore run over
:class:`~tools.reprolint.callgraph.ProgramFacts` — the module import
graph, the conservative call graph, and the per-def facts — after
every file's local analysis completes.

Violations are reported in ``repro.*``/``tools.*`` modules only; test
modules participate in the graphs (their dispatches make functions
worker-reachable) but are not themselves lint targets.
"""

from __future__ import annotations

from typing import Iterator, List

from tools.reprolint.callgraph import ProgramFacts
from tools.reprolint.engine import Violation

__all__ = ["ALL_PROGRAM_RULES", "ProgramRule",
           "TaintedCacheKeyRule", "WorkerSharedStateMutationRule"]


def _in_scope(module: str) -> bool:
    for prefix in ("repro", "tools"):
        if module == prefix or module.startswith(prefix + "."):
            return True
    return False


class ProgramRule:
    """Base class for rules that see the whole program at once."""

    rule_id: str = ""
    name: str = ""
    description: str = ""

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        raise NotImplementedError


class WorkerSharedStateMutationRule(ProgramRule):
    rule_id = "R011"
    name = "worker-shared-state-mutation"
    description = ("functions reachable from a multiprocessing worker "
                   "entry point must not mutate module-level state: each "
                   "worker mutates its own copy, so results silently "
                   "depend on the work partition and worker count.")

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        graph = program.call_graph
        reachable = graph.reachable_from(program.worker_entry_points())
        for qualname in sorted(reachable):
            def_facts = graph.defs[qualname]
            module = program.module_of_def(qualname)
            if module is None or not _in_scope(module):
                continue
            for line, col, name, how in def_facts.global_writes:
                yield Violation(
                    rule_id=self.rule_id,
                    path=graph.def_paths[qualname], line=line, col=col,
                    message=(f"`{qualname}` runs inside worker processes "
                             f"(reachable from a pool/Process dispatch) "
                             f"but writes module-level `{name}` via "
                             f"{how} — each worker mutates a private "
                             f"copy, so the result depends on the work "
                             f"partition; pass state in and return it "
                             f"out instead"))


class TaintedCacheKeyRule(ProgramRule):
    rule_id = "R012"
    name = "tainted-cache-key"
    description = ("values derived from nondeterminism sources (wall "
                   "clock, global RNG, unsorted listings, hash()) must "
                   "never reach a cache key, an artifact payload, or a "
                   "parallel dispatch boundary — keys must be pure "
                   "content hashes.")

    def check(self, program: ProgramFacts) -> Iterator[Violation]:
        graph = program.call_graph
        tainted = graph.taint_map()
        for qualname in sorted(graph.defs):
            def_facts = graph.defs[qualname]
            module = program.module_of_def(qualname)
            if module is None or not _in_scope(module):
                continue
            for sink in def_facts.sink_calls:
                reasons: List[str] = [
                    f"nondeterminism source `{source}()`"
                    for source in sink.direct_sources]
                for target in sink.arg_calls:
                    if target in tainted:
                        reasons.append(
                            f"call to `{target}`, tainted by "
                            f"{tainted[target]}")
                if not reasons:
                    continue
                yield Violation(
                    rule_id=self.rule_id,
                    path=graph.def_paths[qualname],
                    line=sink.line, col=sink.col,
                    message=(f"argument of sink `{sink.sink}(...)` is "
                             f"tainted: {'; '.join(sorted(reasons))} — "
                             f"cache keys and artifact payloads must be "
                             f"pure functions of input content"))


ALL_PROGRAM_RULES: List[ProgramRule] = [
    WorkerSharedStateMutationRule(),
    TaintedCacheKeyRule(),
]
