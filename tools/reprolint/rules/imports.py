"""R003 import-layering: enforce the DAG in :mod:`tools.reprolint.layering`.

The layering is what will let the simulator shard and parallelize later:
``repro.core`` must stay import-free of the traffic/experiment layers so
a worker process can load just the miner. Violations name the offending
edge so the fix is obvious.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from tools.reprolint.engine import ModuleContext, Rule, Violation
from tools.reprolint.layering import ALLOWED_IMPORTS, subpackage_of

__all__ = ["ImportLayeringRule"]


def _resolve_relative(module: str, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted name for a relative ``from ... import`` target."""
    parts = module.split(".")
    # level=1 means "current package": drop the module's own leaf name.
    if node.level > len(parts):
        return None
    base = parts[:len(parts) - node.level]
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None


class ImportLayeringRule(Rule):
    rule_id = "R003"
    name = "import-layering"
    description = ("Enforce the package DAG core -> {dns, pdns} -> traffic "
                   "-> analysis -> impact -> experiments; textutil is a "
                   "shared leaf.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return subpackage_of(ctx.module) is not None

    def _imported_modules(self, ctx: ModuleContext) \
            -> Iterator[Tuple[ast.stmt, str]]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield node, alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    assert ctx.module is not None
                    resolved = _resolve_relative(ctx.module, node)
                    if resolved is not None:
                        yield node, resolved
                elif node.module is not None:
                    yield node, node.module

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        src_sub = subpackage_of(ctx.module)
        assert src_sub is not None
        allowed = ALLOWED_IMPORTS.get(src_sub)
        for node, imported in self._imported_modules(ctx):
            dst_sub = subpackage_of(imported)
            if dst_sub is None or dst_sub == src_sub or dst_sub == "":
                continue
            if allowed is None:
                yield self.violation(
                    ctx, node,
                    f"unknown subpackage `repro.{src_sub}` — add it to the "
                    f"layering DAG in tools/reprolint/layering.py")
                return
            if dst_sub not in allowed:
                yield self.violation(
                    ctx, node,
                    f"layering violation: edge `{src_sub} -> {dst_sub}` is "
                    f"not in the DAG ({ctx.module} imports {imported}); "
                    f"allowed targets for `{src_sub}`: "
                    f"{sorted(allowed) or 'none'}")
