"""Rule registry. Import a rule's module to add it; order fixes output."""

from __future__ import annotations

from typing import Dict, List, Optional

from tools.reprolint.engine import Rule
from tools.reprolint.rules.atomicity import AtomicCachePublishRule
from tools.reprolint.rules.config import FrozenConfigRule
from tools.reprolint.rules.determinism import NoWallClockRule, SeededRngOnlyRule
from tools.reprolint.rules.exports import AllExportsExistRule
from tools.reprolint.rules.floats import NoFloatEqRule
from tools.reprolint.rules.imports import ImportLayeringRule
from tools.reprolint.rules.multiprocessing import PicklableWorkersRule

__all__ = ["ALL_RULES", "rule_by_id"]

ALL_RULES: List[Rule] = [
    NoWallClockRule(),
    SeededRngOnlyRule(),
    ImportLayeringRule(),
    FrozenConfigRule(),
    AllExportsExistRule(),
    NoFloatEqRule(),
    PicklableWorkersRule(),
    AtomicCachePublishRule(),
]

_BY_ID: Dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}


def rule_by_id(rule_id: str) -> Optional[Rule]:
    return _BY_ID.get(rule_id)
