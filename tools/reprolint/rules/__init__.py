"""Rule registry. Import a rule's module to add it; order fixes output."""

from __future__ import annotations

from typing import Dict, List, Optional

from tools.reprolint.engine import Rule
from tools.reprolint.rules.atomicity import AtomicCachePublishRule
from tools.reprolint.rules.config import FrozenConfigRule
from tools.reprolint.rules.determinism import NoWallClockRule, SeededRngOnlyRule
from tools.reprolint.rules.effects import ALL_EFFECT_RULES
from tools.reprolint.rules.exports import AllExportsExistRule
from tools.reprolint.rules.floats import NoFloatEqRule
from tools.reprolint.rules.fslisting import UnsortedFsListingRule
from tools.reprolint.rules.growth import UnboundedGrowthRule
from tools.reprolint.rules.imports import ImportLayeringRule
from tools.reprolint.rules.iteration import NondetIterationOrderRule
from tools.reprolint.rules.multiprocessing import PicklableWorkersRule
from tools.reprolint.rules.whole_program import (
    ALL_PROGRAM_RULES as _CORE_PROGRAM_RULES, ProgramRule)

__all__ = ["ALL_PROGRAM_RULES", "ALL_RULES", "ProgramRule", "rule_by_id"]

ALL_RULES: List[Rule] = [
    NoWallClockRule(),
    SeededRngOnlyRule(),
    ImportLayeringRule(),
    FrozenConfigRule(),
    AllExportsExistRule(),
    NoFloatEqRule(),
    PicklableWorkersRule(),
    AtomicCachePublishRule(),
    NondetIterationOrderRule(),
    UnsortedFsListingRule(),
    UnboundedGrowthRule(),
]

ALL_PROGRAM_RULES: List[ProgramRule] = (list(_CORE_PROGRAM_RULES)
                                        + list(ALL_EFFECT_RULES))

_BY_ID: Dict[str, object] = {rule.rule_id: rule for rule in ALL_RULES}
_BY_ID.update({rule.rule_id: rule for rule in ALL_PROGRAM_RULES})


def rule_by_id(rule_id: str) -> Optional[object]:
    return _BY_ID.get(rule_id)
