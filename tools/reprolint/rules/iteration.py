"""R009 nondet-iteration-order: set iteration must not feed ordered output.

CPython randomizes ``str`` hashes per process (PYTHONHASHSEED), so the
iteration order of a ``set`` of names differs between runs even for
identical contents.  Anywhere that order is materialised into an
ordered artifact — a list, a dict built key-by-key, a joined string, a
stream of yielded values — the result is no longer a pure function of
the input, and the byte-identical-output proofs in the bench/equality
suites silently stop holding.

Flagged, for an expression that is *syntactically* a set (literal,
comprehension, ``set()``/``frozenset()`` call, set-operator
combination, or a local name every assignment proves set-typed):

- ``for x in <set>:`` whose loop body accumulates in order
  (``.append``/``.extend``/``.insert``/``.write``, a subscript store,
  or a ``yield``),
- a list comprehension or generator expression iterating the set,
  unless it feeds an order-insensitive reducer (``sorted``, ``sum``,
  ``len``, ``min``, ``max``, ``set``, ``any``, ``all``, ...),
- ``list(<set>)``, ``tuple(<set>)``, ``enumerate(<set>)`` and
  ``sep.join(<set>)`` outside such a reducer.

The fix is a one-word wrap: iterate ``sorted(the_set)`` so the
materialised order is a function of the *contents*, not of the hash
seed.  Set comprehensions / membership tests / ``len`` are untouched —
unordered consumption of unordered data is fine.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from tools.reprolint.astutil import (ORDER_INSENSITIVE_REDUCERS, is_set_typed,
                                     iter_scopes, parent_map, set_typed_names)
from tools.reprolint.engine import ModuleContext, Rule, Violation
from tools.reprolint.qualnames import build_alias_table, qualified_name

__all__ = ["NondetIterationOrderRule"]

#: Calls that materialise their argument's iteration order.
_ORDERED_MATERIALIZERS = frozenset({"list", "tuple", "enumerate", "iter"})

#: Loop-body calls that accumulate in iteration order.
_ORDERED_ACCUMULATORS = frozenset({
    "append", "extend", "insert", "appendleft", "write", "writelines",
})


def _body_accumulates_in_order(loop: ast.For) -> bool:
    """True when the loop body materialises iteration order."""
    for node in loop.body + loop.orelse:
        for inner in ast.walk(node):
            if isinstance(inner, ast.Call):
                func = inner.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _ORDERED_ACCUMULATORS):
                    return True
            elif isinstance(inner, (ast.Yield, ast.YieldFrom)):
                return True
            elif isinstance(inner, (ast.Assign, ast.AugAssign)):
                targets = (inner.targets if isinstance(inner, ast.Assign)
                           else [inner.target])
                if any(isinstance(t, ast.Subscript) for t in targets):
                    return True
    return False


def _reducer_consumes(node: ast.AST, parents: Dict[ast.AST, ast.AST],
                      aliases: Dict[str, str]) -> bool:
    """True when ``node``'s immediate consumer is order-insensitive."""
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node is not parent.func:
        name = qualified_name(parent.func, aliases)
        if name is not None:
            terminal = name.rsplit(".", 1)[-1]
            return (name in ORDER_INSENSITIVE_REDUCERS
                    or terminal in ORDER_INSENSITIVE_REDUCERS)
    return False


class NondetIterationOrderRule(Rule):
    rule_id = "R009"
    name = "nondet-iteration-order"
    description = ("set iteration order is randomized per process "
                   "(PYTHONHASHSEED); iterating a set into ordered output "
                   "(list/dict build, join, yield) breaks byte-"
                   "reproducibility — iterate sorted(the_set) instead.")

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") or ctx.in_package("tools")

    def check(self, ctx: ModuleContext) -> Iterator[Violation]:
        aliases = build_alias_table(ctx.tree)
        parents = parent_map(ctx.tree)
        flagged: Set[int] = set()

        def emit(node: ast.AST, what: str) -> Iterator[Violation]:
            key = id(node)
            if key in flagged:
                return
            flagged.add(key)
            yield self.violation(
                ctx, node,
                f"{what} iterates a set in hash order, which varies per "
                f"process under PYTHONHASHSEED — wrap the set in "
                f"sorted(...) so the output order depends only on its "
                f"contents")

        for scope, _ in iter_scopes(ctx.tree):
            set_names = set_typed_names(scope)
            for node in self._scope_walk(scope):
                if isinstance(node, ast.For):
                    if (is_set_typed(node.iter, set_names)
                            and _body_accumulates_in_order(node)):
                        yield from emit(node.iter,
                                        "for-loop with ordered accumulation")
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                    if not any(is_set_typed(gen.iter, set_names)
                               for gen in node.generators):
                        continue
                    if _reducer_consumes(node, parents, aliases):
                        continue
                    kind = ("list comprehension"
                            if isinstance(node, ast.ListComp)
                            else "generator expression")
                    yield from emit(node, kind)
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (isinstance(func, ast.Name)
                            and func.id in _ORDERED_MATERIALIZERS
                            and node.args
                            and is_set_typed(node.args[0], set_names)
                            and not _reducer_consumes(node, parents,
                                                      aliases)):
                        yield from emit(node, f"{func.id}(...)")
                    elif (isinstance(func, ast.Attribute)
                          and func.attr == "join" and node.args
                          and is_set_typed(node.args[0], set_names)):
                        yield from emit(node, "str.join(...)")

    @staticmethod
    def _scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
        """Nodes belonging to ``scope``, excluding nested function
        bodies (they are visited as their own scopes)."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
