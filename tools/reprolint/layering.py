"""The package layering DAG enforced by rule R003.

The reproduction is layered so the simulator can later be sharded and
parallelized without import cycles (ROADMAP north-star)::

    core ──► {dns, pdns} ──► traffic ──► analysis ──► impact ──►
    experiments ──► service

``textutil`` is a leaf utility importable from every layer (including
``core``, whose profiler renders reports with it); ``analysis``
and ``impact`` form the measurement band, with ``impact`` allowed to
consume ``analysis`` results (e.g. pDNS dedup feeding the storage study)
but never the reverse. ``experiments`` and ``service`` are the two
surface layers allowed to see everything below them; nothing may
import either back (``service`` additionally has its own dedicated
rule, R017).  ``experiments`` may import ``service`` — the CLI wires
the ``serve`` subcommand — but not the reverse dependency cycle:
``service`` consuming experiment contexts is a one-way edge because
``experiments`` only touches ``service`` from its CLI surface.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Optional

__all__ = ["ALLOWED_IMPORTS", "subpackage_of"]

_EVERYTHING = frozenset({
    "textutil", "core", "dns", "pdns", "traffic", "analysis", "impact",
    "experiments", "service",
})

#: For each first-level subpackage (or top-level module) of ``repro``,
#: the set of sibling subpackages it may import from.
ALLOWED_IMPORTS: Mapping[str, FrozenSet[str]] = {
    "textutil": frozenset(),
    "core": frozenset({"textutil"}),
    "dns": frozenset({"core", "textutil"}),
    "pdns": frozenset({"core", "dns", "textutil"}),
    "traffic": frozenset({"core", "dns", "pdns", "textutil"}),
    "analysis": frozenset({"core", "dns", "pdns", "traffic", "textutil"}),
    "impact": frozenset({"core", "dns", "pdns", "traffic", "analysis",
                         "textutil"}),
    "experiments": _EVERYTHING,
    "service": _EVERYTHING - {"service"},
    # The package root and its __main__ shim wire the CLI together and
    # may touch anything.
    "": _EVERYTHING,
    "__main__": _EVERYTHING,
}


def subpackage_of(module: Optional[str]) -> Optional[str]:
    """First-level component under ``repro``, or ``None`` if not ours.

    ``repro.analysis.tail`` → ``analysis``; ``repro.textutil`` →
    ``textutil``; ``repro`` itself → ``""``.
    """
    if module is None:
        return None
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1]
