"""reprolint — repo-specific static analysis for the DNS Noise reproduction.

An AST-based whole-program analyzer (stdlib + the repo's own artifact
store) that machine-checks the invariants this reproduction depends
on: simulated-time-only determinism, seeded-RNG discipline, package
layering, frozen/validated configs, honest ``__all__`` exports,
tolerance-based float comparisons, picklable worker entry points,
atomic cache publication, deterministic iteration/listing orders, and
— via a project-wide import graph, call graph, and determinism-taint
pass — worker-state isolation and pure content-hash cache keys.

v3 adds an interprocedural *effect* system (per-function
``materializes_entries`` / ``performs_io`` / ``blocks`` /
``pickles_large`` / ``mutates_module_state`` sets, propagated
caller-ward over the call graph) with five rules on top: digest-path
materialisation (R013), heavy-payload IPC (R014), unbounded growth on
long-lived objects (R015), swallowed corruption signals (R016), and
service/library layering (R017) — plus a safe autofix engine
(``--fix`` / ``--fix-check``) and violation baselines
(``--baseline`` / ``--write-baseline``).

Run it as::

    python -m reprolint src tools          # repo-root shim
    python -m tools.reprolint src tools    # equivalent

Per-file results are cached by content hash (``.reprolint-cache/``),
analysis fans out over ``--jobs`` processes, and SARIF 2.1.0 output
(``--sarif``, with ``fixes`` objects for autofixable results) feeds CI
annotation.  See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue
and architecture, and ``tests/tools/test_reprolint.py`` for the
known-bad corpus.
"""

from tools.reprolint.engine import (LintEngine, ModuleContext, Rule,
                                    Violation, lint_source)
from tools.reprolint.incremental import (ProjectResult, SessionStats,
                                         analyze_project, analyze_source)
from tools.reprolint.rules import (ALL_PROGRAM_RULES, ALL_RULES,
                                   ProgramRule, rule_by_id)

__all__ = [
    "ALL_PROGRAM_RULES",
    "ALL_RULES",
    "LintEngine",
    "ModuleContext",
    "ProgramRule",
    "ProjectResult",
    "Rule",
    "SessionStats",
    "Violation",
    "__version__",
    "analyze_project",
    "analyze_source",
    "lint_source",
    "rule_by_id",
]

__version__ = "3.0.0"
