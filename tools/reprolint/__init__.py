"""reprolint — repo-specific static analysis for the DNS Noise reproduction.

An AST-based rule engine (stdlib only) that machine-checks the invariants
this reproduction depends on: simulated-time-only determinism, seeded-RNG
discipline, package layering, frozen/validated configs, honest ``__all__``
exports, and tolerance-based float comparisons.

Run it as::

    python -m tools.reprolint src tests examples

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and the layering
DAG, and ``tests/tools/test_reprolint.py`` for the known-bad corpus.
"""

from tools.reprolint.engine import (LintEngine, ModuleContext, Rule,
                                    Violation, lint_source)
from tools.reprolint.rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "LintEngine",
    "ModuleContext",
    "Rule",
    "Violation",
    "__version__",
    "lint_source",
    "rule_by_id",
]

__version__ = "1.0.0"
