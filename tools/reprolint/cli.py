"""Command-line front end: ``python -m reprolint src tools``.

(``python -m tools.reprolint`` works identically; the repo-root
``reprolint.py`` shim only re-exports this entry point.)

The CLI drives the incremental engine
(:func:`tools.reprolint.incremental.analyze_project`): per-file
results are cached by content hash under ``--cache-dir`` (default
``.reprolint-cache/``, disable with ``--no-cache``), files are
analyzed in ``--jobs`` worker processes, and the whole-program passes
re-run only when some file's facts changed.  Output formats: human
text (default), ``json``, and SARIF 2.1.0 (``--format sarif`` to
stdout, or ``--sarif FILE`` alongside the text report for CI upload).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from tools.reprolint.cache import default_cache_dir
from tools.reprolint.engine import Violation
from tools.reprolint.incremental import analyze_project
from tools.reprolint.rules import ALL_PROGRAM_RULES, ALL_RULES

__all__ = ["build_parser", "main", "selected_rule_ids"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m reprolint",
        description="Repo-specific static analysis for the DNS Noise "
                    "reproduction (determinism, layering, typing, "
                    "concurrency invariants).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. "
                             "R001,R003); default: all")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report violations even where '# reprolint: "
                             "disable' comments would silence them")
    parser.add_argument("--audit-suppressions", action="store_true",
                        help="also fail on 'disable' comments that no "
                             "longer suppress anything (S001)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--sarif", metavar="FILE",
                        help="additionally write a SARIF 2.1.0 log to FILE")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for per-file analysis "
                             "(0 = one per CPU; default: 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=os.environ.get("REPROLINT_CACHE"),
                        help="incremental result cache directory "
                             "(default: $REPROLINT_CACHE or "
                             ".reprolint-cache/ at the repo root)")
    parser.add_argument("--no-cache", action="store_true",
                        help="analyze every file fresh, read and write "
                             "no cache")
    parser.add_argument("--stats", action="store_true",
                        help="print engine statistics (cache hits, "
                             "program-pass reruns) to stderr")
    parser.add_argument("--fix", action="store_true",
                        help="apply safe autofixes (R009/R010 sorted-"
                             "wraps, stale-suppression removal) and "
                             "re-analyze; remaining violations are "
                             "reported as usual")
    parser.add_argument("--fix-check", action="store_true",
                        help="fail (without modifying anything) if any "
                             "reported violation is auto-fixable — the "
                             "CI gate for 'run --fix locally'")
    parser.add_argument("--baseline", metavar="FILE",
                        help="subtract the allowances in this baseline "
                             "file from the report; unused allowances "
                             "are reported so the baseline ratchets "
                             "down")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the current violations to FILE as a "
                             "baseline and exit 0")
    return parser


def selected_rule_ids(select: Optional[str],
                      ignore: Optional[str]) -> Optional[Set[str]]:
    """The rule-id filter, or ``None`` for "everything".

    Selection happens at *report* time: the engine always runs every
    rule so cached results stay valid whatever the filter is.
    """
    known = ({rule.rule_id for rule in ALL_RULES}
             | {rule.rule_id for rule in ALL_PROGRAM_RULES})
    chosen = set(known)
    if select:
        wanted = {part.strip() for part in select.split(",") if part.strip()}
        unknown = wanted - known
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = wanted
    if ignore:
        chosen -= {part.strip() for part in ignore.split(",") if part.strip()}
    if chosen == known:
        return None
    return chosen


def _filter(violations: Sequence[Violation],
            chosen: Optional[Set[str]]) -> List[Violation]:
    if chosen is None:
        return list(violations)
    # Parse errors and stale suppressions always surface.
    return [v for v in violations
            if v.rule_id in chosen or not v.rule_id.startswith("R")]


def _render_text(violations: Sequence[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"reprolint: {len(violations)} {noun}")
    return "\n".join(lines)


def _render_json(violations: Sequence[Violation]) -> str:
    payload = [{"rule": v.rule_id, "path": v.path, "line": v.line,
                "col": v.col, "message": v.message} for v in violations]
    return json.dumps({"violations": payload, "count": len(payload)},
                      indent=2)


def _collect_patches(violations: Sequence[Violation]) -> List["Patch"]:
    """Generate autofix patches for every fixable reported violation."""
    from tools.reprolint.fixes import fixes_for_file
    patches: List[Patch] = []
    for path in sorted({v.path for v in violations}):
        try:
            source = Path(path).read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        patches.extend(fixes_for_file(path, source, violations))
    return patches


def _apply_fixes(violations: Sequence[Violation]) -> int:
    """Write autofixes to disk; returns how many patches were applied."""
    from tools.reprolint.fixes import apply_patches
    patches = _collect_patches(violations)
    applied_total = 0
    for path in sorted({p.path for p in patches}):
        source = Path(path).read_text(encoding="utf-8")
        fixed, applied, _ = apply_patches(
            source, [p for p in patches if p.path == path])
        if applied:
            Path(path).write_text(fixed, encoding="utf-8")
            applied_total += len(applied)
    return applied_total


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in list(ALL_RULES) + list(ALL_PROGRAM_RULES):
            print(f"{rule.rule_id}  {rule.name}")
            print(f"      {rule.description}")
        return 0

    chosen = selected_rule_ids(args.select, args.ignore)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = default_cache_dir()

    def run_analysis() -> List[Violation]:
        result = analyze_project(
            args.paths, jobs=jobs, cache_dir=cache_dir,
            respect_suppressions=not args.no_suppressions)
        run_analysis.last = result  # type: ignore[attr-defined]
        return _filter(
            result.reported(audit_suppressions=args.audit_suppressions),
            chosen)

    try:
        violations = run_analysis()
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    result = run_analysis.last  # type: ignore[attr-defined]

    if args.fix:
        # Fix until quiescent: overlapping (nested) patches are skipped
        # within a pass and picked up by the re-analysis of the next.
        for _ in range(5):
            applied = _apply_fixes(violations)
            if applied == 0:
                break
            print(f"reprolint: applied {applied} autofix(es)",
                  file=sys.stderr)
            violations = run_analysis()
            result = run_analysis.last  # type: ignore[attr-defined]

    fixable_remaining: List[Violation] = []
    if args.fix_check:
        patched = _collect_patches(violations)
        fixable_lines = {(p.path, p.rule_id) for p in patched}
        fixable_remaining = [v for v in violations
                             if (v.path, v.rule_id) in fixable_lines]

    if args.write_baseline:
        from tools.reprolint.baseline import Baseline
        root = Path.cwd()
        Baseline.from_violations(violations, root).save(
            Path(args.write_baseline))
        print(f"reprolint: wrote baseline with {len(violations)} "
              f"violation(s) to {args.write_baseline}", file=sys.stderr)
        return 0

    unused_allowances: dict = {}
    if args.baseline:
        from tools.reprolint.baseline import Baseline
        root = Path.cwd()
        try:
            baseline = Baseline.load(Path(args.baseline))
        except (OSError, ValueError, KeyError) as exc:
            print(f"reprolint: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        violations, suppressed, unused_allowances = baseline.apply(
            violations, root)
        print(f"reprolint: baseline suppressed {suppressed} "
              f"grandfathered violation(s)"
              + (f"; {sum(unused_allowances.values())} allowance(s) "
                 f"unused — shrink the baseline" if unused_allowances
                 else ""),
              file=sys.stderr)

    if args.stats:
        stats = result.stats
        dirty = ", ".join(stats.dirty_modules[:8])
        if len(stats.dirty_modules) > 8:
            dirty += f", ... ({len(stats.dirty_modules)} total)"
        print(f"reprolint: {stats.files_total} files "
              f"({stats.files_analyzed} analyzed, "
              f"{stats.files_cached} cached), program pass "
              f"{'re-ran' if stats.program_rerun else 'cached'}"
              + (f"; dirty: {dirty}" if dirty else ""),
              file=sys.stderr)

    sarif_patches = None
    if args.sarif or args.format == "sarif":
        sarif_patches = _collect_patches(violations)

    if args.sarif:
        from tools.reprolint.sarif import render_sarif
        Path(args.sarif).write_text(
            render_sarif(violations, patches=sarif_patches) + "\n",
            encoding="utf-8")

    if args.format == "sarif":
        from tools.reprolint.sarif import render_sarif
        print(render_sarif(violations, patches=sarif_patches))
    elif args.format == "json":
        print(_render_json(violations))
    else:
        print(_render_text(violations))

    if args.fix_check and fixable_remaining:
        print("reprolint: the following violation(s) are auto-fixable — "
              "run with --fix:", file=sys.stderr)
        for violation in fixable_remaining:
            print(f"  {violation.render()}", file=sys.stderr)
        return 1
    if unused_allowances:
        return 1
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
