"""Command-line front end: ``python -m tools.reprolint src tests examples``."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from tools.reprolint.engine import LintEngine, Rule, Violation
from tools.reprolint.rules import ALL_RULES

__all__ = ["build_parser", "main", "select_rules"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific static analysis for the DNS Noise "
                    "reproduction (determinism, layering, typing "
                    "invariants).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. "
                             "R001,R003); default: all")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report violations even where '# reprolint: "
                             "disable' comments would silence them")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    return parser


def select_rules(select: Optional[str],
                 ignore: Optional[str]) -> List[Rule]:
    chosen = list(ALL_RULES)
    if select:
        wanted = {part.strip() for part in select.split(",") if part.strip()}
        unknown = wanted - {rule.rule_id for rule in chosen}
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = [rule for rule in chosen if rule.rule_id in wanted]
    if ignore:
        dropped = {part.strip() for part in ignore.split(",") if part.strip()}
        chosen = [rule for rule in chosen if rule.rule_id not in dropped]
    return chosen


def _render_text(violations: Sequence[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"reprolint: {len(violations)} {noun}")
    return "\n".join(lines)


def _render_json(violations: Sequence[Violation]) -> str:
    payload = [{"rule": v.rule_id, "path": v.path, "line": v.line,
                "col": v.col, "message": v.message} for v in violations]
    return json.dumps({"violations": payload, "count": len(payload)},
                      indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name}")
            print(f"      {rule.description}")
        return 0

    rules = select_rules(args.select, args.ignore)
    engine = LintEngine(rules,
                        respect_suppressions=not args.no_suppressions)
    try:
        violations = engine.run(args.paths)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(_render_json(violations))
    else:
        print(_render_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
