"""Command-line front end: ``python -m reprolint src tools``.

(``python -m tools.reprolint`` works identically; the repo-root
``reprolint.py`` shim only re-exports this entry point.)

The CLI drives the incremental engine
(:func:`tools.reprolint.incremental.analyze_project`): per-file
results are cached by content hash under ``--cache-dir`` (default
``.reprolint-cache/``, disable with ``--no-cache``), files are
analyzed in ``--jobs`` worker processes, and the whole-program passes
re-run only when some file's facts changed.  Output formats: human
text (default), ``json``, and SARIF 2.1.0 (``--format sarif`` to
stdout, or ``--sarif FILE`` alongside the text report for CI upload).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from tools.reprolint.cache import default_cache_dir
from tools.reprolint.engine import Violation
from tools.reprolint.incremental import analyze_project
from tools.reprolint.rules import ALL_PROGRAM_RULES, ALL_RULES

__all__ = ["build_parser", "main", "selected_rule_ids"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m reprolint",
        description="Repo-specific static analysis for the DNS Noise "
                    "reproduction (determinism, layering, typing, "
                    "concurrency invariants).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--select", metavar="RULES",
                        help="comma-separated rule ids to run (e.g. "
                             "R001,R003); default: all")
    parser.add_argument("--ignore", metavar="RULES",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--no-suppressions", action="store_true",
                        help="report violations even where '# reprolint: "
                             "disable' comments would silence them")
    parser.add_argument("--audit-suppressions", action="store_true",
                        help="also fail on 'disable' comments that no "
                             "longer suppress anything (S001)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text)")
    parser.add_argument("--sarif", metavar="FILE",
                        help="additionally write a SARIF 2.1.0 log to FILE")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for per-file analysis "
                             "(0 = one per CPU; default: 1)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=os.environ.get("REPROLINT_CACHE"),
                        help="incremental result cache directory "
                             "(default: $REPROLINT_CACHE or "
                             ".reprolint-cache/ at the repo root)")
    parser.add_argument("--no-cache", action="store_true",
                        help="analyze every file fresh, read and write "
                             "no cache")
    parser.add_argument("--stats", action="store_true",
                        help="print engine statistics (cache hits, "
                             "program-pass reruns) to stderr")
    return parser


def selected_rule_ids(select: Optional[str],
                      ignore: Optional[str]) -> Optional[Set[str]]:
    """The rule-id filter, or ``None`` for "everything".

    Selection happens at *report* time: the engine always runs every
    rule so cached results stay valid whatever the filter is.
    """
    known = ({rule.rule_id for rule in ALL_RULES}
             | {rule.rule_id for rule in ALL_PROGRAM_RULES})
    chosen = set(known)
    if select:
        wanted = {part.strip() for part in select.split(",") if part.strip()}
        unknown = wanted - known
        if unknown:
            raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = wanted
    if ignore:
        chosen -= {part.strip() for part in ignore.split(",") if part.strip()}
    if chosen == known:
        return None
    return chosen


def _filter(violations: Sequence[Violation],
            chosen: Optional[Set[str]]) -> List[Violation]:
    if chosen is None:
        return list(violations)
    # Parse errors and stale suppressions always surface.
    return [v for v in violations
            if v.rule_id in chosen or not v.rule_id.startswith("R")]


def _render_text(violations: Sequence[Violation]) -> str:
    lines = [violation.render() for violation in violations]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(f"reprolint: {len(violations)} {noun}")
    return "\n".join(lines)


def _render_json(violations: Sequence[Violation]) -> str:
    payload = [{"rule": v.rule_id, "path": v.path, "line": v.line,
                "col": v.col, "message": v.message} for v in violations]
    return json.dumps({"violations": payload, "count": len(payload)},
                      indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in list(ALL_RULES) + list(ALL_PROGRAM_RULES):
            print(f"{rule.rule_id}  {rule.name}")
            print(f"      {rule.description}")
        return 0

    chosen = selected_rule_ids(args.select, args.ignore)
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    cache_dir: Optional[Path]
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir:
        cache_dir = Path(args.cache_dir)
    else:
        cache_dir = default_cache_dir()

    try:
        result = analyze_project(
            args.paths, jobs=jobs, cache_dir=cache_dir,
            respect_suppressions=not args.no_suppressions)
    except FileNotFoundError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2

    violations = _filter(
        result.reported(audit_suppressions=args.audit_suppressions), chosen)

    if args.stats:
        stats = result.stats
        dirty = ", ".join(stats.dirty_modules[:8])
        if len(stats.dirty_modules) > 8:
            dirty += f", ... ({len(stats.dirty_modules)} total)"
        print(f"reprolint: {stats.files_total} files "
              f"({stats.files_analyzed} analyzed, "
              f"{stats.files_cached} cached), program pass "
              f"{'re-ran' if stats.program_rerun else 'cached'}"
              + (f"; dirty: {dirty}" if dirty else ""),
              file=sys.stderr)

    if args.sarif:
        from tools.reprolint.sarif import render_sarif
        Path(args.sarif).write_text(render_sarif(violations) + "\n",
                                    encoding="utf-8")

    if args.format == "sarif":
        from tools.reprolint.sarif import render_sarif
        print(render_sarif(violations))
    elif args.format == "json":
        print(_render_json(violations))
    else:
        print(_render_text(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
