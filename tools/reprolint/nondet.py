"""Shared vocabulary of nondeterminism sources.

Leaf module (imports nothing from reprolint) so both the per-file
rules (R001/R002) and the whole-program facts collector / taint pass
can use the same lists without import cycles.
"""

from __future__ import annotations

__all__ = ["BANNED_CLOCKS", "NUMPY_RANDOM_OK", "SEEDED_CONSTRUCTORS"]

#: Clock reads that leak host wall-time into simulated results.
BANNED_CLOCKS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: The only sanctioned RNG entry points; both require an explicit seed.
SEEDED_CONSTRUCTORS = frozenset({
    "random.Random",
    "random.SystemRandom",  # flagged separately: never reproducible
    "numpy.random.default_rng",
})

#: ``numpy.random`` names that are types/infrastructure, not implicit
#: global-state draws.
NUMPY_RANDOM_OK = frozenset({
    "numpy.random.default_rng", "numpy.random.Generator",
    "numpy.random.SeedSequence", "numpy.random.BitGenerator",
    "numpy.random.PCG64", "numpy.random.Philox",
})
