"""Per-file facts for the whole-program passes.

One :class:`FileFacts` summarises everything the cross-file analyses
need to know about a module: which project modules it imports (and on
which lines), which functions it defines, which calls each function
makes (resolved through import aliases), where nondeterminism
*sources* are invoked, where cache-key / artifact / parallel-boundary
*sinks* are invoked and what flows into them, which callables are
dispatched into worker processes, and which module-level names each
function writes.

v3 adds the *effect* facts the interprocedural effect system
(:meth:`tools.reprolint.callgraph.CallGraph.effect_map`) propagates:
per-def effect sites (``materializes_entries`` / ``performs_io`` /
``blocks`` / ``pickles_large``), the exception names a def raises
(corruption propagation for R016), and broad ``except`` handlers that
swallow instead of re-raising.

Facts are pure data (tuples of primitives) so they serialise to JSON
for the incremental cache and hash canonically for the program-pass
cache key.  Extraction is purely syntactic — nothing is imported or
executed.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from tools.reprolint.astutil import parent_map, sanitizing_ancestor
from tools.reprolint.nondet import BANNED_CLOCKS, NUMPY_RANDOM_OK
from tools.reprolint.qualnames import build_alias_table, qualified_name

__all__ = [
    "CORRUPTION_EXCEPTION_SUFFIXES",
    "DefFacts",
    "EFFECT_NAMES",
    "FileFacts",
    "MATERIALIZER_TERMINALS",
    "SinkCall",
    "collect_facts",
    "facts_fingerprint",
    "is_corruption_exception",
    "is_heavy_name",
]

#: The effect vocabulary, in stable display order.
EFFECT_NAMES = ("materializes_entries", "performs_io", "blocks",
                "pickles_large", "mutates_module_state")

#: Pool / executor methods whose callable argument runs in a worker.
POOL_DISPATCH = frozenset({
    "map", "map_async", "imap", "imap_unordered",
    "apply", "apply_async", "starmap", "starmap_async", "submit",
})

#: Constructors whose ``target=`` runs in a worker.
PROCESS_TYPES = frozenset({"Process"})

#: Call names whose *result* is nondeterministic (taint sources), in
#: addition to the R001 wall clocks.
EXTRA_SOURCES = frozenset({
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice",
})

#: Seeded RNG constructors are deterministic; everything else under
#: ``random.`` draws from hidden global state.
_SEEDED_RNG = frozenset({"random.Random"})

#: Filesystem listing calls (unsorted listings are taint sources too).
_LISTING_FUNCTIONS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob", "os.walk",
})
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Terminal callee names treated as cache-key / artifact sinks.
SINK_TERMINALS = frozenset({
    "store_bytes", "versioned_key", "canonical_json_key",
    "dataset_content_key", "object_fingerprint", "cache_key", "key_for",
    "make_key",
})
SINK_SUFFIXES = ("_cache_key",)

#: Mutating method names on collections (used for global-state writes).
_MUTATORS = frozenset({
    "add", "append", "appendleft", "extend", "insert", "update",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear", "sort", "reverse",
})

# -- effect seeds (v3) -------------------------------------------------

#: Terminal callee names that materialise full per-entry lists out of a
#: columnar / digest-native representation.  Calling one of these is
#: exactly the O(entries) transposition the fpDNS-v2 data plane exists
#: to avoid; R013 flags such calls when they are reachable from a
#: digest-native hot path.
MATERIALIZER_TERMINALS = frozenset({
    "entries", "entries_snapshot", "iter_entries", "to_entries",
    "load_fpdns", "loads_fpdns", "_materialize_stream",
})

#: Resolved call names with a filesystem / serialisation side effect.
_IO_CALLS = frozenset({
    "open", "gzip.open", "bz2.open", "lzma.open",
    "json.load", "json.dump", "pickle.load", "pickle.dump",
    "numpy.load", "numpy.save", "numpy.savez",
    "numpy.savez_compressed",
    "shutil.copy", "shutil.copyfile", "shutil.move",
    "os.replace", "os.rename", "os.remove", "os.unlink",
})

#: Method terminals with a filesystem side effect (Path / store APIs).
_IO_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
    "store_bytes", "load_bytes",
})

#: Resolved call names that block the calling thread.
_BLOCKING_CALLS = frozenset({
    "time.sleep", "input", "select.select",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "socket.create_connection",
})

#: Argument names that denote heavy per-entry payloads.  A pool
#: dispatch whose argument matches gets a ``pickles_large`` effect
#: (R014): the payload is pickled into every worker instead of a
#: digest column or blob path.
_HEAVY_ARG_NAMES = frozenset({
    "entries", "entry", "entry_list", "entry_lists",
    "dataset", "datasets", "payload", "payloads",
})
_HEAVY_ARG_SUFFIXES = ("_entries", "_entry", "_dataset", "_datasets",
                       "_payload", "_payloads")

#: Exception-name terminals treated as data-corruption signals (R016).
CORRUPTION_EXCEPTION_SUFFIXES = ("FormatError", "CorruptionError")


def is_heavy_name(name: str) -> bool:
    """True when ``name`` names a per-entry payload by convention."""
    lowered = name.lower()
    return (lowered in _HEAVY_ARG_NAMES
            or any(lowered.endswith(suffix)
                   for suffix in _HEAVY_ARG_SUFFIXES))


def is_corruption_exception(name: str) -> bool:
    terminal = name.rsplit(".", 1)[-1]
    return any(terminal.endswith(suffix)
               for suffix in CORRUPTION_EXCEPTION_SUFFIXES)


@dataclass(frozen=True)
class SinkCall:
    """One call into a cache-key/artifact/parallel sink."""

    line: int
    col: int
    sink: str                        # display name of the sink callee
    direct_sources: Tuple[str, ...]  # nondet source calls inside the args
    arg_calls: Tuple[str, ...]       # resolved call targets inside the args


@dataclass(frozen=True)
class DefFacts:
    """One function (or the module body, under the module's own name)."""

    qualname: str
    line: int
    calls: Tuple[str, ...]
    source_calls: Tuple[Tuple[int, str], ...]       # (line, source name)
    global_writes: Tuple[Tuple[int, int, str, str], ...]  # (line, col, name, how)
    sink_calls: Tuple[SinkCall, ...]
    #: Direct effect sites: (effect name, line, col, display detail).
    effects: Tuple[Tuple[str, int, int, str], ...] = ()
    #: Exception names this def raises directly (terminal dotted names).
    raises: Tuple[str, ...] = ()
    #: Broad ``except`` handlers that swallow (no re-raise):
    #: (line, col, handler display, resolved calls inside the try body).
    broad_handlers: Tuple[Tuple[int, int, str, Tuple[str, ...]], ...] = ()


@dataclass(frozen=True)
class FileFacts:
    """Whole-program-relevant summary of one source file."""

    path: str
    module: Optional[str]
    imports: Tuple[str, ...]
    defs: Tuple[DefFacts, ...]
    worker_targets: Tuple[Tuple[int, str], ...]     # (line, resolved name)
    #: Import statement sites: (line, imported dotted name).
    import_sites: Tuple[Tuple[int, str], ...] = ()

    def to_json(self) -> Dict[str, object]:
        # Hand-rolled rather than dataclasses.asdict(): asdict deep-
        # copies every leaf, and this runs per file per session when
        # the program-pass cache key is computed (warm-run hot path).
        return {
            "path": self.path,
            "module": self.module,
            "imports": self.imports,
            "defs": [{
                "qualname": d.qualname,
                "line": d.line,
                "calls": d.calls,
                "source_calls": d.source_calls,
                "global_writes": d.global_writes,
                "sink_calls": [{
                    "line": s.line, "col": s.col, "sink": s.sink,
                    "direct_sources": s.direct_sources,
                    "arg_calls": s.arg_calls,
                } for s in d.sink_calls],
                "effects": d.effects,
                "raises": d.raises,
                "broad_handlers": d.broad_handlers,
            } for d in self.defs],
            "worker_targets": self.worker_targets,
            "import_sites": self.import_sites,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FileFacts":
        defs = tuple(
            DefFacts(qualname=d["qualname"], line=d["line"],
                     calls=tuple(d["calls"]),
                     source_calls=tuple((line, name)
                                        for line, name in d["source_calls"]),
                     global_writes=tuple(
                         (line, col, name, how)
                         for line, col, name, how in d["global_writes"]),
                     sink_calls=tuple(
                         SinkCall(line=s["line"], col=s["col"],
                                  sink=s["sink"],
                                  direct_sources=tuple(s["direct_sources"]),
                                  arg_calls=tuple(s["arg_calls"]))
                         for s in d["sink_calls"]),
                     effects=tuple(
                         (effect, line, col, detail)
                         for effect, line, col, detail
                         in d.get("effects", ())),
                     raises=tuple(d.get("raises", ())),
                     broad_handlers=tuple(
                         (line, col, kind, tuple(calls))
                         for line, col, kind, calls
                         in d.get("broad_handlers", ())))
            for d in payload["defs"])
        return cls(path=payload["path"], module=payload["module"],
                   imports=tuple(payload["imports"]), defs=defs,
                   worker_targets=tuple((line, name) for line, name
                                        in payload["worker_targets"]),
                   import_sites=tuple((line, name) for line, name
                                      in payload.get("import_sites", ())))


def facts_fingerprint(facts: FileFacts) -> str:
    """Stable content hash of the graph-relevant facts (path excluded,
    so moving a tree does not invalidate the program pass)."""
    import hashlib
    payload = facts.to_json()
    payload.pop("path", None)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def is_sink_name(name: str) -> bool:
    terminal = name.rsplit(".", 1)[-1]
    return (terminal in SINK_TERMINALS
            or any(terminal.endswith(suffix) for suffix in SINK_SUFFIXES))


def _source_reason(call: ast.Call, resolved: Optional[str],
                   parents: Dict[ast.AST, ast.AST],
                   aliases: Dict[str, str]) -> Optional[str]:
    """Why this call's result is nondeterministic, or ``None``."""
    if resolved is not None:
        if resolved in BANNED_CLOCKS or resolved in EXTRA_SOURCES:
            return resolved
        if resolved == "random.SystemRandom":
            return resolved
        if (resolved.startswith("random.")
                and resolved not in _SEEDED_RNG):
            return resolved
        if (resolved.startswith("numpy.random.")
                and resolved not in NUMPY_RANDOM_OK):
            return resolved
        if resolved in _LISTING_FUNCTIONS:
            if sanitizing_ancestor(call, parents, aliases) is None:
                return resolved
            return None
    func = call.func
    if isinstance(func, ast.Name) and func.id == "hash" and call.args:
        return "hash"
    if (isinstance(func, ast.Attribute) and func.attr in _LISTING_METHODS
            and resolved not in _LISTING_FUNCTIONS):
        if sanitizing_ancestor(call, parents, aliases) is None:
            return f".{func.attr}"
    return None


class _Scope:
    """Mutable accumulator for one def (or the module body)."""

    def __init__(self, qualname: str, line: int) -> None:
        self.qualname = qualname
        self.line = line
        self.calls: List[str] = []
        self.source_calls: List[Tuple[int, str]] = []
        self.global_writes: List[Tuple[int, int, str, str]] = []
        self.sink_calls: List[SinkCall] = []
        self.effects: List[Tuple[str, int, int, str]] = []
        self.raises: List[str] = []
        self.broad_handlers: List[Tuple[int, int, str, Tuple[str, ...]]] = []

    def freeze(self) -> DefFacts:
        return DefFacts(
            qualname=self.qualname, line=self.line,
            calls=tuple(sorted(set(self.calls))),
            source_calls=tuple(self.source_calls),
            global_writes=tuple(self.global_writes),
            sink_calls=tuple(self.sink_calls),
            effects=tuple(self.effects),
            raises=tuple(sorted(set(self.raises))),
            broad_handlers=tuple(self.broad_handlers))


class _FactsCollector(ast.NodeVisitor):
    """Single pass over one module, maintaining the lexical def stack."""

    def __init__(self, path: str, module: Optional[str],
                 tree: ast.Module) -> None:
        self.path = path
        self.module = module or "<unknown>"
        self.aliases = build_alias_table(tree)
        self.parents = parent_map(tree)
        self.imports: List[str] = []
        self.import_sites: List[Tuple[int, str]] = []
        self.defs: List[DefFacts] = []
        self.worker_targets: List[Tuple[int, str]] = []
        self.module_level_names = _module_level_names(tree)
        self.local_defs = _local_def_index(tree, self.module)
        self._scope_stack: List[_Scope] = [_Scope(self.module, 1)]
        self._class_stack: List[str] = []
        self._local_names_stack: List[set] = [set()]
        self._heavy_locals_stack: List[set] = [_heavy_local_names(tree)]

    # -- scope bookkeeping --------------------------------------------

    @property
    def scope(self) -> _Scope:
        return self._scope_stack[-1]

    def _qualname_for(self, name: str) -> str:
        parts = [self.module] + self._class_stack + [name]
        return ".".join(parts)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_def(self, node: ast.AST) -> None:
        scope = _Scope(self._qualname_for(node.name), node.lineno)
        self._scope_stack.append(scope)
        self._local_names_stack.append(_assigned_names(node))
        self._heavy_locals_stack.append(_heavy_local_names(node))
        self.generic_visit(node)
        self._heavy_locals_stack.pop()
        self._local_names_stack.pop()
        self._scope_stack.pop()
        self.defs.append(scope.freeze())

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports.append(alias.name)
            self.import_sites.append((node.lineno, alias.name))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = self._absolute_base(node)
        if base is not None:
            self.imports.append(base)
            self.import_sites.append((node.lineno, base))
            for alias in node.names:
                if alias.name != "*":
                    # The imported name may itself be a module.
                    self.imports.append(f"{base}.{alias.name}")
                    self.import_sites.append((node.lineno,
                                              f"{base}.{alias.name}"))
        self.generic_visit(node)

    def _absolute_base(self, node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Resolve a relative import against this module's package.
        parts = self.module.split(".")
        if len(parts) < node.level:
            return None
        head = parts[:len(parts) - node.level]
        if node.module:
            head.append(node.module)
        return ".".join(head) if head else None

    # -- calls ---------------------------------------------------------

    def _resolve_call(self, call: ast.Call) -> Optional[str]:
        """Dotted target: alias-resolved, or local def/method name."""
        resolved = qualified_name(call.func, self.aliases)
        if resolved is not None:
            head = resolved.split(".", 1)[0]
            if head in ("self", "cls") and self._class_stack:
                method = resolved.rsplit(".", 1)[-1]
                own = ".".join([self.module] + self._class_stack + [method])
                if own in self.local_defs:
                    return own
                return None
            local = f"{self.module}.{resolved}"
            if local in self.local_defs:
                return local
            return resolved
        return None

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve_call(node)
        if resolved is not None:
            self.scope.calls.append(resolved)
        reason = _source_reason(node, resolved, self.parents, self.aliases)
        if reason is not None:
            self.scope.source_calls.append((node.lineno, reason))
        self._check_worker_dispatch(node)
        self._check_sink(node, resolved)
        self._check_mutation(node)
        self._check_effects(node, resolved)
        self._check_heavy_dispatch(node)
        self.generic_visit(node)

    # -- effect seeds --------------------------------------------------

    def _check_effects(self, node: ast.Call,
                       resolved: Optional[str]) -> None:
        func = node.func
        terminal = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None)
        if terminal is None:
            return
        display = resolved if resolved is not None else (
            f".{terminal}" if isinstance(func, ast.Attribute) else terminal)
        resolved_terminal = (resolved.rsplit(".", 1)[-1]
                             if resolved is not None else terminal)
        if (terminal in MATERIALIZER_TERMINALS
                or resolved_terminal in MATERIALIZER_TERMINALS):
            self.scope.effects.append(
                ("materializes_entries", node.lineno, node.col_offset,
                 f"`{display}(...)`"))
        if resolved in _IO_CALLS or terminal in _IO_METHODS:
            self.scope.effects.append(
                ("performs_io", node.lineno, node.col_offset,
                 f"`{display}(...)`"))
        if resolved in _BLOCKING_CALLS:
            self.scope.effects.append(
                ("blocks", node.lineno, node.col_offset,
                 f"`{display}(...)`"))

    def _check_heavy_dispatch(self, node: ast.Call) -> None:
        func = node.func
        terminal = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else "")
        payload_args: List[ast.expr] = []
        if isinstance(func, ast.Attribute) and func.attr in POOL_DISPATCH:
            payload_args.extend(node.args[1:])
            payload_args.extend(
                kw.value for kw in node.keywords
                if kw.arg not in ("func", "chunksize", "callback",
                                  "error_callback", "timeout"))
        elif terminal in PROCESS_TYPES:
            payload_args.extend(kw.value for kw in node.keywords
                                if kw.arg in ("args", "kwargs"))
        if not payload_args:
            return
        heavy_locals = self._heavy_locals_stack[-1]
        for arg in payload_args:
            detail = _heavy_payload(arg, heavy_locals)
            if detail is None:
                continue
            boundary = (f"pool.{func.attr}"
                        if isinstance(func, ast.Attribute)
                        and func.attr in POOL_DISPATCH else terminal)
            self.scope.effects.append(
                ("pickles_large", node.lineno, node.col_offset,
                 f"`{boundary}(...)` ships {detail} to workers"))

    # -- worker dispatch ----------------------------------------------

    def _check_worker_dispatch(self, node: ast.Call) -> None:
        func = node.func
        candidate: Optional[ast.expr] = None
        if isinstance(func, ast.Attribute) and func.attr in POOL_DISPATCH:
            for keyword in node.keywords:
                if keyword.arg == "func":
                    candidate = keyword.value
            if candidate is None and node.args:
                candidate = node.args[0]
        terminal = (func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else "")
        if terminal in PROCESS_TYPES:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidate = keyword.value
        if candidate is None:
            return
        resolved = qualified_name(candidate, self.aliases)
        if resolved is None:
            return
        local = f"{self.module}.{resolved}"
        if local in self.local_defs:
            resolved = local
        self.worker_targets.append((node.lineno, resolved))

    # -- sinks ---------------------------------------------------------

    def _check_sink(self, node: ast.Call, resolved: Optional[str]) -> None:
        func = node.func
        display: Optional[str] = None
        if resolved is not None and is_sink_name(resolved):
            display = resolved
        elif isinstance(func, ast.Attribute) and is_sink_name(func.attr):
            display = f".{func.attr}"
        pool_boundary = (isinstance(func, ast.Attribute)
                         and func.attr in POOL_DISPATCH)
        if display is None and not pool_boundary:
            return
        args = list(node.args) + [kw.value for kw in node.keywords]
        if pool_boundary and display is None:
            display = f"pool.{func.attr}"
            args = args[1:]  # the callable itself is R011's business
        direct: List[str] = []
        arg_calls: List[str] = []
        for arg in args:
            for inner in ast.walk(arg):
                if not isinstance(inner, ast.Call):
                    continue
                inner_resolved = self._resolve_call(inner)
                reason = _source_reason(inner, inner_resolved, self.parents,
                                        self.aliases)
                if reason is not None:
                    direct.append(reason)
                elif inner_resolved is not None:
                    arg_calls.append(inner_resolved)
        self.scope.sink_calls.append(SinkCall(
            line=node.lineno, col=node.col_offset, sink=display,
            direct_sources=tuple(sorted(set(direct))),
            arg_calls=tuple(sorted(set(arg_calls)))))

    # -- module-state writes ------------------------------------------

    def _is_module_level_target(self, name: str) -> bool:
        if name not in self.module_level_names:
            return False
        if len(self._scope_stack) == 1:
            return False  # module body initialising its own globals
        local_names = self._local_names_stack[-1]
        return name not in local_names

    def _check_mutation(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Name)):
            return
        name = func.value.id
        if self._is_module_level_target(name):
            self.scope.global_writes.append(
                (node.lineno, node.col_offset, name, f".{func.attr}()"))

    def visit_Global(self, node: ast.Global) -> None:
        # Rebinding writes are collected in visit_Assign/visit_AugAssign
        # via the declared-global set; record the declaration itself.
        self._local_names_stack[-1].difference_update(node.names)
        declared = getattr(self.scope, "_declared_globals", None)
        if declared is None:
            declared = set()
            setattr(self.scope, "_declared_globals", declared)
        declared.update(node.names)
        self.generic_visit(node)

    def _record_rebind(self, target: ast.expr, node: ast.stmt) -> None:
        declared = getattr(self.scope, "_declared_globals", set())
        if isinstance(target, ast.Name):
            if (target.id in declared
                    and not _is_memo_init(node, target.id, self.parents)):
                self.scope.global_writes.append(
                    (node.lineno, node.col_offset, target.id, "rebind"))
        elif isinstance(target, ast.Subscript):
            base = target.value
            if (isinstance(base, ast.Name)
                    and self._is_module_level_target(base.id)):
                self.scope.global_writes.append(
                    (node.lineno, node.col_offset, base.id, "[...] ="))

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(self._scope_stack) > 1:
            for target in node.targets:
                self._record_rebind(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if len(self._scope_stack) > 1:
            self._record_rebind(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if len(self._scope_stack) > 1:
            self._record_rebind(node.target, node)
        self.generic_visit(node)

    # -- exceptions ----------------------------------------------------

    def visit_Raise(self, node: ast.Raise) -> None:
        name = _raised_name(node, self.aliases)
        if name is not None:
            self.scope.raises.append(name)
        self.generic_visit(node)

    def visit_Try(self, node: ast.Try) -> None:
        for handler in node.handlers:
            kind = _broad_handler_kind(handler.type)
            if kind is None:
                continue
            if any(isinstance(inner, ast.Raise)
                   for inner in ast.walk(handler)):
                continue  # re-raising broad handlers are fine
            calls: List[str] = []
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call):
                        inner_resolved = self._resolve_call(inner)
                        if inner_resolved is not None:
                            calls.append(inner_resolved)
            self.scope.broad_handlers.append(
                (handler.lineno, handler.col_offset, kind,
                 tuple(sorted(set(calls)))))
        self.generic_visit(node)

    # -- result --------------------------------------------------------

    def freeze(self) -> FileFacts:
        defs = [self._scope_stack[0].freeze()] + self.defs
        return FileFacts(
            path=self.path,
            module=self.module if self.module != "<unknown>" else None,
            imports=tuple(sorted(set(self.imports))),
            defs=tuple(sorted(defs, key=lambda d: (d.line, d.qualname))),
            worker_targets=tuple(sorted(set(self.worker_targets))),
            import_sites=tuple(sorted(set(self.import_sites))))


def _module_level_names(tree: ast.Module) -> set:
    names = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return names


def _local_def_index(tree: ast.Module, module: str) -> set:
    """Qualified names of every def/method in this module."""
    index = set()

    def walk(body: Sequence[ast.stmt], prefix: List[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index.add(".".join(prefix + [node.name]))
                walk(node.body, prefix + [node.name])
            elif isinstance(node, ast.ClassDef):
                walk(node.body, prefix + [node.name])

    walk(tree.body, [module])
    return index


def _assigned_names(func: ast.AST) -> set:
    """Names bound inside ``func`` (params, assignments, loop targets)."""
    names = set()
    args = func.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])):
        names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for name_node in ast.walk(node.target):
                if isinstance(name_node, ast.Name):
                    names.add(name_node.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    for name_node in ast.walk(item.optional_vars):
                        if isinstance(name_node, ast.Name):
                            names.add(name_node.id)
    return names


def _is_memo_init(stmt: ast.stmt, name: str,
                  parents: Dict[ast.AST, ast.AST]) -> bool:
    """True for the sanctioned lazy-singleton shape::

        if _CACHED is None:
            _CACHED = build()

    Each worker process memoises independently and deterministically,
    so this particular global rebind is allowed.
    """
    current: Optional[ast.AST] = stmt
    while current is not None:
        parent = parents.get(current)
        if isinstance(parent, ast.If):
            test = parent.test
            if (isinstance(test, ast.Compare)
                    and isinstance(test.left, ast.Name)
                    and test.left.id == name
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Is)
                    and len(test.comparators) == 1
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None):
                return True
        current = parent
    return False


def _call_terminal(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _heavy_local_names(scope: ast.AST) -> set:
    """Local names assigned from a heavy payload (one propagation step:
    ``tasks = [(day, dataset) for ...]`` makes ``tasks`` heavy)."""
    heavy = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _expr_is_heavy(value):
            continue
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    heavy.add(name_node.id)
    return heavy


def _expr_is_heavy(value: ast.expr) -> bool:
    for inner in ast.walk(value):
        if isinstance(inner, ast.Name) and is_heavy_name(inner.id):
            return True
        if isinstance(inner, ast.Attribute) and is_heavy_name(inner.attr):
            return True
        if (isinstance(inner, ast.Call)
                and _call_terminal(inner) in MATERIALIZER_TERMINALS):
            return True
    return False


def _heavy_payload(arg: ast.expr, heavy_locals: set) -> Optional[str]:
    """Why ``arg`` is a heavy worker payload, or ``None``."""
    for inner in ast.walk(arg):
        if (isinstance(inner, ast.Call)
                and _call_terminal(inner) in MATERIALIZER_TERMINALS):
            return f"the result of `{_call_terminal(inner)}(...)`"
        if isinstance(inner, ast.Name) and (is_heavy_name(inner.id)
                                            or inner.id in heavy_locals):
            return f"`{inner.id}`"
        if isinstance(inner, ast.Attribute) and is_heavy_name(inner.attr):
            return f"`.{inner.attr}`"
    return None


def _raised_name(node: ast.Raise,
                 aliases: Dict[str, str]) -> Optional[str]:
    """Dotted name of the raised exception type, or ``None`` for a
    bare ``raise`` / dynamic expression."""
    exc = node.exc
    target: Optional[ast.expr]
    if isinstance(exc, ast.Call):
        target = exc.func
    else:
        target = exc
    if target is None:
        return None
    resolved = qualified_name(target, aliases)
    if resolved is not None:
        return resolved
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def _broad_handler_kind(type_node: Optional[ast.expr]) -> Optional[str]:
    """Display name of a too-broad handler clause, or ``None``."""
    if type_node is None:
        return "except:"
    elts = (type_node.elts if isinstance(type_node, ast.Tuple)
            else [type_node])
    names = []
    for elt in elts:
        if isinstance(elt, ast.Name):
            names.append(elt.id)
        elif isinstance(elt, ast.Attribute):
            names.append(elt.attr)
    for broad in ("BaseException", "Exception"):
        if broad in names:
            return f"except {broad}"
    return None


def collect_facts(tree: ast.Module, path: str,
                  module: Optional[str]) -> FileFacts:
    """Extract :class:`FileFacts` from one parsed module."""
    collector = _FactsCollector(path, module, tree)
    collector.visit(tree)
    return collector.freeze()
