"""Record the simulator performance baseline.

Times the three simulation paths on a fixed workload and writes the
numbers to ``BENCH_simulator.json`` at the repo root:

* **serial** — :class:`repro.traffic.simulate.TraceSimulator`;
* **sharded** — :class:`repro.traffic.parallel.ShardedTraceSimulator`
  at 1/2/4 workers (byte-identical output, wall-clock only);
* **artifact cache** — a cold session that stores every day, then a
  warm session that loads them instead of simulating.

The recorded file also captures ``cpu_count``/``available_cpus``:
sharding cannot beat serial on fewer schedulable cores than workers,
so numbers are only comparable across machines together with those
fields.  Each sharded run additionally records its IPC payload — the
packed column bytes that crossed the worker boundary
(``ipc_payload_bytes``) — next to ``legacy_pickle_payload_bytes``,
what the retired per-entry pickle transport would have shipped for
the same days (see docs/PERFORMANCE.md §6).  Timing lives here in
``tools/`` because ``src/repro`` is wall-clock-free by the
determinism contract (reprolint R001).

Usage::

    PYTHONPATH=src python tools/bench_baseline.py            # MEDIUM
    PYTHONPATH=src python tools/bench_baseline.py --quick    # SMALL, CI

The ``--quick`` mode runs the SMALL profile with few events so CI can
smoke-test the whole harness in seconds; its numbers are not meant to
be compared, only to prove the paths still run and still agree.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.parallelism import available_cpu_count  # noqa: E402
from repro.experiments.context import MEDIUM, SMALL, ScaleProfile  # noqa: E402
from repro.pdns.records import FpDnsDataset  # noqa: E402
from repro.traffic.artifacts import (FpDnsArtifactCache,  # noqa: E402
                                     artifact_key)
from repro.traffic.parallel import ShardedTraceSimulator  # noqa: E402
from repro.traffic.simulate import (PAPER_DATES,  # noqa: E402
                                    TraceSimulator)

OUTPUT = REPO_ROOT / "BENCH_simulator.json"


def _check_identical(reference: List[FpDnsDataset],
                     candidate: List[FpDnsDataset], label: str) -> None:
    for ref_day, cand_day in zip(reference, candidate):
        if (ref_day.day != cand_day.day or ref_day.below != cand_day.below
                or ref_day.above != cand_day.above):
            raise AssertionError(
                f"{label} output differs from serial on {ref_day.day}")


def bench(profile: ScaleProfile, n_days: int,
          n_events: Optional[int]) -> Dict[str, object]:
    dates = PAPER_DATES[:n_days]
    config = profile.simulator_config()
    results: Dict[str, object] = {
        "profile": profile.name,
        "n_days": len(dates),
        "events_per_day": n_events or profile.events_per_day,
        "cpu_count": os.cpu_count(),
        "available_cpus": available_cpu_count(),
        "python": sys.version.split()[0],
    }

    start = time.perf_counter()
    serial = TraceSimulator(profile.simulator_config())
    serial_days = serial.run_days(dates, n_events=n_events)
    serial_s = time.perf_counter() - start
    results["serial_s"] = round(serial_s, 3)
    print(f"serial: {serial_s:.2f}s")

    # What the pre-columnar engine would have shipped through the pool:
    # the per-entry lists, pickled.  The column transport's
    # ``ipc_payload_bytes`` below is the after number.
    legacy_payload = sum(
        len(pickle.dumps((day.day, day.below, day.above),
                         protocol=pickle.HIGHEST_PROTOCOL))
        for day in serial_days)
    results["legacy_pickle_payload_bytes"] = legacy_payload
    print(f"legacy pickled payload: {legacy_payload} bytes")

    sharded_timings: Dict[str, float] = {}
    ipc_payloads: Dict[str, int] = {}
    for n_workers in (1, 2, 4):
        start = time.perf_counter()
        sharded = ShardedTraceSimulator(profile.simulator_config(),
                                        n_workers=n_workers)
        sharded_days = sharded.run_days(dates, n_events=n_events)
        elapsed = time.perf_counter() - start
        _check_identical(serial_days, sharded_days,
                         f"sharded(n_workers={n_workers})")
        sharded_timings[str(n_workers)] = round(elapsed, 3)
        ipc = sharded.last_ipc
        assert ipc is not None
        ipc_payloads[str(n_workers)] = ipc.payload_bytes
        print(f"sharded n_workers={n_workers}: {elapsed:.2f}s "
              f"(speedup {serial_s / elapsed:.2f}x, ipc {ipc.mode} "
              f"{ipc.payload_bytes} bytes, output identical)")
        if ipc.payload_bytes:
            results["ipc_mode"] = ipc.mode
    results["sharded_s"] = sharded_timings
    results["ipc_payload_bytes"] = ipc_payloads
    results["speedup_at_4_workers"] = round(
        serial_s / sharded_timings["4"], 2)
    if available_cpu_count() == 1:
        # Multi-worker numbers on a single core measure process
        # overhead, not parallel speedup — flag them so readers (and
        # tooling) do not compare them against multi-core baselines.
        results["constrained"] = True

    with tempfile.TemporaryDirectory() as tmp:
        cache = FpDnsArtifactCache(tmp)
        start = time.perf_counter()
        cold = TraceSimulator(profile.simulator_config())
        history = []
        cold_days = []
        for date in dates:
            day = cold.run_day(date, n_events=n_events)
            history.append(date)
            cache.store(artifact_key(cold.config, history,
                                     n_events=n_events), day)
            cold_days.append(day)
        cold_s = time.perf_counter() - start

        warm_cache = FpDnsArtifactCache(tmp)
        start = time.perf_counter()
        warm_config = profile.simulator_config()
        warm_history = []
        warm_days = []
        for date in dates:
            warm_history.append(date)
            day = warm_cache.load(artifact_key(warm_config, warm_history,
                                               n_events=n_events))
            assert day is not None, "warm session missed the cache"
            warm_days.append(day)
        warm_s = time.perf_counter() - start
        assert warm_cache.misses == 0
        _check_identical(cold_days, warm_days, "artifact cache")

    results["cache_cold_s"] = round(cold_s, 3)
    results["cache_warm_s"] = round(warm_s, 3)
    results["cache_warm_speedup"] = round(cold_s / warm_s, 2)
    print(f"artifact cache: cold {cold_s:.2f}s, warm {warm_s:.2f}s "
          f"(speedup {cold_s / warm_s:.2f}x, {warm_cache.hits} hits, "
          "output identical)")
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="SMALL profile, few events: CI smoke mode "
                             "(does not overwrite the recorded baseline)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write results (default {OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        results = bench(SMALL, n_days=2, n_events=4_000)
        results["mode"] = "quick"
        print(json.dumps(results, indent=2))
        return 0

    results = bench(MEDIUM, n_days=3, n_events=None)
    results["mode"] = "baseline"
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
