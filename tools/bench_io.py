"""Record the artifact-store IO baseline: gzip-TSV vs fpDNS-v2 columnar.

Times both storage backends of the fpDNS artifact cache on a fixed
simulated workload and writes the numbers to ``BENCH_io.json`` at the
repo root:

* **save** — serialise each bench day to disk (``save_fpdns`` vs
  ``save_fpdns2``);
* **load** — read each day back (``load_fpdns`` re-parses every line
  and rebuilds every entry; ``load_fpdns2`` hands back numpy columns
  and a pre-built digest);
* **warm end-to-end** — the real warm-session path: load every day
  from disk, take its digest, mine it.  For the TSV backend that is
  load -> build_day_digest -> mine; for columnar it is disk -> numpy
  -> digest -> mine with zero entry materialisation.

Every timed path is asserted equal to the in-memory oracle while being
timed: loaded days compare equal to the simulated originals (entry
lists and digest columns) and mining results are identical across
backends.  Timing lives here in ``tools/`` because ``src/repro`` is
wall-clock-free by the determinism contract (reprolint R001).

Usage::

    PYTHONPATH=src python tools/bench_io.py            # MEDIUM baseline
    PYTHONPATH=src python tools/bench_io.py --quick    # SMALL, CI smoke

``--quick`` runs the SMALL profile with few events so CI can smoke the
harness in seconds; its numbers only prove the paths still run and
still agree.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.classifier import LadTreeClassifier  # noqa: E402
from repro.core.features import FeatureExtractor  # noqa: E402
from repro.core.hitrate import hit_rates_from_digest  # noqa: E402
from repro.core.interning import (STREAM_FIELDS,  # noqa: E402
                                  DayDigest, build_day_digest)
from repro.core.labeling import build_training_set  # noqa: E402
from repro.core.miner import MinerConfig  # noqa: E402
from repro.core.mining_pipeline import mine_day  # noqa: E402
from repro.core.ranking import (DailyMiningResult,  # noqa: E402
                                build_tree_from_digest)
from repro.experiments.context import (MEDIUM, SMALL,  # noqa: E402
                                       TRAINING_DATE, ScaleProfile)
from repro.pdns.columnar import load_fpdns2, save_fpdns2  # noqa: E402
from repro.pdns.io import load_fpdns, save_fpdns  # noqa: E402
from repro.pdns.records import FpDnsDataset  # noqa: E402
from repro.traffic.simulate import PAPER_DATES, TraceSimulator  # noqa: E402

OUTPUT = REPO_ROOT / "BENCH_io.json"

REPEATS = 3


def _prepare(profile: ScaleProfile, n_days: int, n_events: Optional[int]
             ) -> Tuple[List[FpDnsDataset], LadTreeClassifier]:
    """Simulate the bench days plus the training day; train the model."""
    bench_dates = PAPER_DATES[:n_days]
    dates = sorted([*bench_dates, TRAINING_DATE], key=lambda d: d.day_index)
    simulator = TraceSimulator(profile.simulator_config())
    days = dict(zip([date.label for date in dates],
                    simulator.run_days(dates, n_events=n_events)))
    digest = build_day_digest(days[TRAINING_DATE.label])
    tree = build_tree_from_digest(digest)
    extractor = FeatureExtractor(tree, hit_rates_from_digest(digest))
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)
    return [days[date.label] for date in bench_dates], classifier


def _check_day_equal(original: FpDnsDataset, loaded: FpDnsDataset,
                     label: str) -> None:
    assert loaded.day == original.day, f"{label}: day differs"
    assert loaded.below == original.below, f"{label}: below differs"
    assert loaded.above == original.above, f"{label}: above differs"


def _check_digest_equal(reference: DayDigest, candidate: DayDigest,
                        label: str) -> None:
    assert list(reference.names.names) == list(candidate.names.names), \
        f"{label}: name pool differs"
    assert reference.rr_keys == candidate.rr_keys, \
        f"{label}: RR table differs"
    for which in ("below", "above"):
        for field in STREAM_FIELDS:
            assert np.array_equal(
                getattr(getattr(reference, which), field),
                getattr(getattr(candidate, which), field)), \
                f"{label}: {which}.{field} differs"


def _best_of(repeats: int, run: Callable[[], object]
             ) -> Tuple[float, object]:
    """Grouped best-of-N with the collector paused (timeit discipline);
    returns (min seconds, first result)."""
    best = float("inf")
    first: Optional[object] = None
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            result = run()
            best = min(best, time.perf_counter() - start)
            if first is None:
                first = result
    finally:
        gc.enable()
    assert first is not None
    return best, first


def bench(profile: ScaleProfile, n_days: int,
          n_events: Optional[int]) -> Dict[str, object]:
    datasets, classifier = _prepare(profile, n_days, n_events)
    results: Dict[str, object] = {
        "profile": profile.name,
        "n_days": len(datasets),
        "events_per_day": n_events or profile.events_per_day,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }
    oracle = [mine_day(dataset, classifier, MinerConfig())
              for dataset in datasets]

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        tsv_paths = [root / f"day{i}.fpdns.gz" for i in range(len(datasets))]
        col_paths = [root / f"day{i}.fpdns2" for i in range(len(datasets))]

        # -- save ---------------------------------------------------------
        def save_tsv() -> int:
            return sum(save_fpdns(dataset, path)
                       for dataset, path in zip(datasets, tsv_paths))

        def save_columnar() -> int:
            return sum(save_fpdns2(dataset, path)
                       for dataset, path in zip(datasets, col_paths))

        tsv_save_s, _ = _best_of(REPEATS, save_tsv)
        col_save_s, _ = _best_of(REPEATS, save_columnar)
        results["save_tsv_s"] = round(tsv_save_s, 3)
        results["save_columnar_s"] = round(col_save_s, 3)
        results["save_speedup"] = round(tsv_save_s / col_save_s, 2)
        results["bytes_tsv"] = sum(p.stat().st_size for p in tsv_paths)
        results["bytes_columnar"] = sum(p.stat().st_size for p in col_paths)
        print(f"save: tsv {tsv_save_s:.2f}s, columnar {col_save_s:.2f}s "
              f"(speedup {tsv_save_s / col_save_s:.2f}x)")

        # -- load ---------------------------------------------------------
        def load_tsv() -> List[FpDnsDataset]:
            return [load_fpdns(path) for path in tsv_paths]

        def load_columnar() -> List[FpDnsDataset]:
            return [load_fpdns2(path) for path in col_paths]

        tsv_load_s, tsv_loaded = _best_of(REPEATS, load_tsv)
        col_load_s, col_loaded = _best_of(REPEATS, load_columnar)
        for original, from_tsv in zip(datasets, tsv_loaded):
            _check_day_equal(original, from_tsv, "tsv load")
        # Columnar equality via digest columns first (the warm-path
        # contract), then the lazy entry views against the originals.
        for original, from_col in zip(datasets, col_loaded):
            _check_digest_equal(build_day_digest(original),
                                from_col.day_digest(), "columnar load")
            _check_day_equal(original, from_col, "columnar load")
        results["warm_load_tsv_s"] = round(tsv_load_s, 3)
        results["warm_load_columnar_s"] = round(col_load_s, 3)
        results["warm_load_speedup"] = round(tsv_load_s / col_load_s, 2)
        print(f"load: tsv {tsv_load_s:.2f}s, columnar {col_load_s:.2f}s "
              f"(speedup {tsv_load_s / col_load_s:.2f}x, output identical)")

        # -- warm end-to-end: load -> digest -> mine ----------------------
        def warm_tsv() -> List[DailyMiningResult]:
            return [mine_day(load_fpdns(path), classifier, MinerConfig())
                    for path in tsv_paths]

        def warm_columnar() -> List[DailyMiningResult]:
            return [mine_day(load_fpdns2(path), classifier, MinerConfig())
                    for path in col_paths]

        tsv_e2e_s, tsv_mined = _best_of(REPEATS, warm_tsv)
        col_e2e_s, col_mined = _best_of(REPEATS, warm_columnar)
        assert tsv_mined == oracle, "tsv warm mining diverged"
        assert col_mined == oracle, "columnar warm mining diverged"
        results["warm_e2e_tsv_s"] = round(tsv_e2e_s, 3)
        results["warm_e2e_columnar_s"] = round(col_e2e_s, 3)
        results["warm_e2e_speedup"] = round(tsv_e2e_s / col_e2e_s, 2)
        print(f"warm end-to-end: tsv {tsv_e2e_s:.2f}s, columnar "
              f"{col_e2e_s:.2f}s (speedup {tsv_e2e_s / col_e2e_s:.2f}x, "
              "output identical)")

    if (os.cpu_count() or 1) == 1:
        results["constrained"] = True
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="SMALL profile, few events: CI smoke mode "
                             "(does not overwrite the recorded baseline)")
    parser.add_argument("--output", type=Path, default=OUTPUT,
                        help=f"where to write results (default {OUTPUT})")
    args = parser.parse_args(argv)

    if args.quick:
        results = bench(SMALL, n_days=2, n_events=4_000)
        results["mode"] = "quick"
        print(json.dumps(results, indent=2))
        return 0

    results = bench(MEDIUM, n_days=3, n_events=None)
    results["mode"] = "baseline"
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
