"""Tests for the RFC 2308 negative-caching study."""

import pytest

from repro.impact.negative_cache import run_negative_cache_study


@pytest.fixture(scope="module")
def study(tiny_simulator):
    events = tiny_simulator.workload.generate_day(930, year_fraction=0.9,
                                                  n_events=5_000)
    return run_negative_cache_study(tiny_simulator.authority, events,
                                    n_servers=1, cache_capacity=5_000)


class TestNegativeCacheStudy:
    def test_rfc2308_reduces_upstream_nxdomain(self, study):
        assert (study.with_rfc2308.upstream_nxdomain
                < study.without_rfc2308.upstream_nxdomain)
        assert study.upstream_nxdomain_saved > 0

    def test_negative_cache_hits_appear(self, study):
        assert study.with_rfc2308.negative_cache_hits > 0
        assert study.without_rfc2308.negative_cache_hits == 0

    def test_nxdomain_share_above_falls(self, study):
        """The paper's 40%-above anomaly disappears once RFC 2308 is
        honored."""
        assert (study.with_rfc2308.nxdomain_share_above
                < study.without_rfc2308.nxdomain_share_above)

    def test_same_query_count_both_runs(self, study):
        assert study.with_rfc2308.queries == study.without_rfc2308.queries

    def test_saved_fraction_bounded(self, study):
        assert 0.0 < study.saved_fraction <= 1.0
