"""Tests for the Section VI-C pDNS storage study."""

import pytest

from repro.impact.pdns_storage import run_pdns_storage_study
from repro.pdns.store import SegmentedPdnsStore
from repro.traffic.simulate import MeasurementDate


@pytest.fixture(scope="module")
def window(tiny_simulator):
    dates = [MeasurementDate(f"w{i}", 910 + i, 0.9) for i in range(4)]
    return tiny_simulator.run_days(dates, n_events=2_000)


@pytest.fixture(scope="module")
def study(tiny_simulator, window):
    return run_pdns_storage_study(window,
                                  tiny_simulator.disposable_truth())


class TestPdnsStorage:
    def test_wildcard_aggregation_shrinks_store(self, study):
        assert study.rows_after_wildcard < study.rows_before
        assert 0.0 < study.reduction_ratio < 1.0

    def test_disposable_rows_collapse_hard(self, study):
        """Paper: the disposable portion shrinks to ~0.7% — each
        flagged (zone, depth) group collapses to one wildcard row."""
        assert study.disposable_reduction_ratio < 0.05

    def test_disposable_fraction_substantial(self, study):
        """Most unique RRs accumulated over the window should be
        disposable (paper: 88%)."""
        assert study.disposable_fraction > 0.3

    def test_bytes_track_rows(self, study):
        assert study.bytes_before > study.bytes_after_wildcard
        assert study.bytes_before == study.rows_before * 48
        assert not study.bytes_measured  # in-memory: row-model bytes

    def test_daily_share_series(self, study):
        first, last = study.first_to_last_disposable_share()
        assert 0.0 <= first <= 1.0
        assert 0.0 <= last <= 1.0
        # Dedup warms up on reused names, so the disposable share of
        # *new* RRs should not shrink over the window.
        assert last >= first - 0.1

    def test_dedup_days_match_window(self, study):
        assert len(study.dedup.days) == 4


class TestSegmentedBackend:
    """The study accepts the on-disk store and gets equal results."""

    @pytest.fixture(scope="class")
    def segmented_study(self, tiny_simulator, window, tmp_path_factory):
        store = SegmentedPdnsStore(tmp_path_factory.mktemp("pdns"))
        return run_pdns_storage_study(window,
                                      tiny_simulator.disposable_truth(),
                                      database=store)

    def test_rows_match_in_memory_run(self, study, segmented_study):
        assert segmented_study.rows_before == study.rows_before
        assert segmented_study.rows_after_wildcard == \
            study.rows_after_wildcard
        assert segmented_study.disposable_rows_before == \
            study.disposable_rows_before

    def test_dedup_series_matches(self, study, segmented_study):
        assert segmented_study.dedup.days == study.dedup.days
        assert segmented_study.dedup.total_unique_rrs == \
            study.dedup.total_unique_rrs

    def test_bytes_are_measured(self, segmented_study):
        assert segmented_study.bytes_measured
        assert segmented_study.bytes_before > 0
        # Real segment bytes, not the 48-B/row fiction.
        assert segmented_study.bytes_before != \
            segmented_study.rows_before * 48
