"""Tests for the cache-occupancy attribution (Section VI-A premise)."""

import pytest

from repro.dns.resolver import RdnsCluster
from repro.impact.cache_pressure import cache_occupancy


class TestOccupancy:
    @pytest.fixture(scope="class")
    def snapshot(self, tiny_simulator):
        events = tiny_simulator.workload.generate_day(
            940, year_fraction=0.95, n_events=5_000)
        cluster = RdnsCluster(tiny_simulator.authority, n_servers=2,
                              cache_capacity=4_000)
        last = 0.0
        for event in events:
            cluster.query(event.client_id, event.question, event.timestamp)
            last = event.timestamp
        return cache_occupancy(cluster, last,
                               tiny_simulator.disposable_truth())

    def test_cache_holds_live_entries(self, snapshot):
        assert snapshot.live_entries > 100

    def test_disposable_entries_present(self, snapshot):
        """Disposable entries occupy live cache slots at any instant.
        (Their instantaneous share scales with query density; at ISP
        density the paper expects them to crowd the cache, here the
        robust signal is presence plus the dead-weight rate below.)"""
        assert snapshot.disposable_entries > 0
        assert snapshot.disposable_share > 0.01

    def test_disposable_entries_are_dead_weight(self, snapshot):
        """Nearly all cached disposable entries are never re-queried —
        the paper's 'entries highly unlikely to ever be reused'."""
        assert snapshot.disposable_never_hit_rate > 0.85

    def test_never_hit_consistency(self, snapshot):
        assert snapshot.disposable_never_hit <= snapshot.never_hit_entries
        assert snapshot.never_hit_entries <= snapshot.live_entries

    def test_empty_cluster(self, tiny_simulator):
        cluster = RdnsCluster(tiny_simulator.authority, n_servers=1,
                              cache_capacity=10)
        report = cache_occupancy(cluster, 0.0, set())
        assert report.live_entries == 0
        assert report.disposable_share == 0.0
        assert report.never_hit_share == 0.0
