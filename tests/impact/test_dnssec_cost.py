"""Tests for the Section VI-B DNSSEC validation-cost study."""

import pytest

from repro.impact.dnssec_cost import run_dnssec_study


@pytest.fixture(scope="module")
def study(tiny_simulator):
    events = tiny_simulator.workload.generate_day(901, year_fraction=0.9,
                                                  n_events=4_000)
    all_apexes = {zone.apex for zone in tiny_simulator.authority.zones()}
    disposable = {service.zone
                  for service in tiny_simulator.population.services}
    return run_dnssec_study(tiny_simulator.authority, events, all_apexes,
                            disposable, n_servers=1, cache_capacity=5_000)


class TestDnssecStudy:
    def test_three_regimes(self, study):
        assert set(study.scenarios) == {"per-name", "wildcard",
                                        "unsigned-disposable"}

    def test_per_name_regime_heaviest(self, study):
        per_name = study.scenarios["per-name"].validations
        wildcard = study.scenarios["wildcard"].validations
        unsigned = study.scenarios["unsigned-disposable"].validations
        assert per_name > wildcard > 0
        assert wildcard >= unsigned

    def test_wildcard_savings_substantial(self, study):
        """Disposable names dominate distinct upstream answers, so
        collapsing their signatures must save a large share."""
        assert study.wildcard_savings() > 0.2

    def test_disposable_validations_collapse_under_wildcard(self, study):
        per_name = study.scenarios["per-name"].disposable_validations
        wildcard = study.scenarios["wildcard"].disposable_validations
        assert wildcard < per_name * 0.1

    def test_validation_cache_hit_rate_rises_with_wildcard(self, study):
        assert (study.scenarios["wildcard"].validation_cache_hit_rate
                > study.scenarios["per-name"].validation_cache_hit_rate)

    def test_signature_cache_bytes_track_validations(self, study):
        for scenario in study.scenarios.values():
            assert scenario.signature_cache_bytes == \
                scenario.validations * 170

    def test_validations_per_query_bounded(self, study):
        for scenario in study.scenarios.values():
            assert 0.0 <= scenario.validations_per_query <= 1.5
