"""Tests for the Section VI-A cache-pressure study."""

import pytest

from repro.impact.cache_pressure import (LatencyModel, replay_events,
                                         run_cache_pressure_study)
from repro.dns.resolver import RdnsCluster
from repro.traffic.simulate import MeasurementDate


@pytest.fixture(scope="module")
def events(tiny_simulator):
    return tiny_simulator.workload.generate_day(900, year_fraction=0.9,
                                                n_events=4_000)


class TestLatencyModel:
    def test_hit_cheaper_than_miss(self):
        model = LatencyModel()
        assert model.query_latency(True, 0) < model.query_latency(False, 3)

    def test_referral_scaling(self):
        model = LatencyModel(cache_hit_ms=1.0, per_referral_ms=10.0)
        assert model.query_latency(False, 3) == pytest.approx(31.0)


class TestReplay:
    def test_skip_categories(self, tiny_simulator, events):
        cluster = RdnsCluster(tiny_simulator.authority, n_servers=1,
                              cache_capacity=2_000)
        stats = replay_events(events, cluster, 0.0, "clean", 2_000,
                              skip_categories={"disposable"})
        n_disposable = sum(1 for e in events if e.category == "disposable")
        assert stats.queries == len(events) - n_disposable

    def test_non_disposable_accounting(self, tiny_simulator, events):
        cluster = RdnsCluster(tiny_simulator.authority, n_servers=1,
                              cache_capacity=2_000)
        stats = replay_events(events, cluster, 0.0, "loaded", 2_000)
        assert stats.non_disposable_queries < stats.queries
        assert stats.non_disposable_hits <= stats.non_disposable_queries
        assert stats.hit_rate > 0.0
        assert stats.mean_latency_ms > 0.0


class TestStudy:
    @pytest.fixture(scope="class")
    def comparisons(self, tiny_simulator, events):
        return run_cache_pressure_study(
            tiny_simulator.authority, events,
            capacities=[50, 400, 4_000], n_servers=1)

    def test_one_comparison_per_capacity(self, comparisons):
        assert [c.capacity for c in comparisons] == [50, 400, 4_000]

    def test_disposable_load_never_helps(self, comparisons):
        """Adding disposable traffic can only hurt (or not affect) the
        non-disposable hit rate."""
        for comparison in comparisons:
            assert comparison.hit_rate_degradation >= -0.01

    def test_small_cache_hurts_more(self, comparisons):
        """The paper's premise: pressure bites when the cache is small
        relative to the disposable churn."""
        degradations = [c.hit_rate_degradation for c in comparisons]
        assert degradations[0] >= degradations[-1] - 0.01

    def test_tiny_cache_sees_extra_live_evictions(self, comparisons):
        assert comparisons[0].extra_live_evictions > 0

    def test_upstream_inflation_nonnegative(self, comparisons):
        for comparison in comparisons:
            assert comparison.upstream_inflation >= -0.05
