"""Tests for fpDNS dataset size estimation."""

import pytest

from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.sizing import (ENTRY_METADATA_BYTES, database_storage_report,
                               entry_storage_bytes, estimate_dataset_size)
from repro.pdns.store import SegmentedPdnsStore


def entry(name, rcode=RCode.NOERROR, qtype=RRType.A, rdata="1.1.1.1"):
    if rcode is RCode.NXDOMAIN:
        return FpDnsEntry(0.0, 1, name, qtype, rcode)
    return FpDnsEntry(0.0, 1, name, qtype, rcode, 300, rdata)


class TestEntryBytes:
    def test_a_record(self):
        size = entry_storage_bytes(entry("www.a.com"))
        # metadata + name(11) + fixed(10) + 4
        assert size == ENTRY_METADATA_BYTES + 11 + 10 + 4

    def test_nxdomain_smaller(self):
        assert entry_storage_bytes(entry("www.a.com",
                                         rcode=RCode.NXDOMAIN)) < \
            entry_storage_bytes(entry("www.a.com"))

    def test_aaaa_larger_than_a(self):
        assert entry_storage_bytes(entry("www.a.com", qtype=RRType.AAAA,
                                         rdata="::1")) > \
            entry_storage_bytes(entry("www.a.com"))

    def test_long_disposable_name_costs_more(self):
        long_name = ("load-0-p-01.up-1852280.mem-251379712-24440832-0-p-50."
                     "3302068.1222092134.device.trans.manage.esoft.com")
        assert entry_storage_bytes(entry(long_name)) > \
            2 * entry_storage_bytes(entry("www.a.com"))


class TestDatasetEstimate:
    @pytest.fixture
    def dataset(self):
        ds = FpDnsDataset(day="t")
        ds.below = [entry("www.a.com"), entry("x1.d.net")]
        ds.above = [entry("x1.d.net")]
        return ds

    def test_counts_both_streams(self, dataset):
        report = estimate_dataset_size(dataset)
        assert report.entries == 3
        assert report.raw_bytes > 0
        assert report.compressed_bytes < report.raw_bytes

    def test_disposable_attribution(self, dataset):
        report = estimate_dataset_size(dataset,
                                       disposable_groups={("d.net", 3)})
        assert report.disposable_bytes > 0
        assert 0.0 < report.disposable_byte_share < 1.0

    def test_no_attribution_by_default(self, dataset):
        report = estimate_dataset_size(dataset)
        assert report.disposable_bytes is None
        assert report.disposable_byte_share is None

    def test_rejects_bad_ratio(self, dataset):
        with pytest.raises(ValueError):
            estimate_dataset_size(dataset, compression_ratio=0.0)


class TestPaperGrowthClaim:
    def test_december_day_bigger_than_february(self):
        """Section III-A: the fpDNS dataset grows from ~60 GB/day (Feb)
        to ~145 GB/day (Dec) at the same tap.  At equal event counts
        the December day must still be larger in bytes per entry:
        disposable names are long, and their share grows.

        Uses a private simulator: the shared one's cache timeline must
        keep moving forward for the other tests."""
        from tests.conftest import tiny_simulator_config
        from repro.traffic.simulate import MeasurementDate, TraceSimulator

        simulator = TraceSimulator(tiny_simulator_config())
        feb = simulator.run_day(MeasurementDate("feb-size", 31, 0.0),
                                n_events=4_000)
        dec = simulator.run_day(MeasurementDate("dec-size", 363, 1.0),
                                n_events=4_000)
        feb_report = estimate_dataset_size(feb)
        dec_report = estimate_dataset_size(dec)
        assert dec_report.mean_entry_bytes > feb_report.mean_entry_bytes
        assert dec_report.raw_bytes > feb_report.raw_bytes

    def test_disposable_bytes_outweigh_their_share(self, tiny_simulator,
                                                   tiny_day):
        """Disposable records cost more bytes per record than average
        (their names are long), so their byte share exceeds nothing
        less than their record share would suggest."""
        truth = tiny_simulator.disposable_truth()
        report = estimate_dataset_size(tiny_day, disposable_groups=truth)
        from repro.core.ranking import name_matches_groups
        n_disposable = sum(
            1 for stream in (tiny_day.below, tiny_day.above)
            for e in stream if name_matches_groups(e.qname, truth))
        record_share = n_disposable / report.entries
        assert report.disposable_byte_share > record_share


class TestDatabaseStorageReport:
    def test_row_model_fallback_is_labeled(self):
        db = PassiveDnsDatabase()
        db.ingest_rrs("2011-02-22", [("a.x.com", RRType.A, "1.1.1.1"),
                                     ("b.x.com", RRType.A, "1.1.1.2")])
        report = database_storage_report(db)
        assert report.source == "row-model"
        assert report.rows == 2
        assert report.stored_bytes == 2 * 48
        assert "row-model" in report.render()

    def test_segmented_store_reports_measured_bytes(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        store.ingest_rrs("2011-02-22", [("a.x.com", RRType.A, "1.1.1.1")])
        report = database_storage_report(store)
        assert report.source == "measured"
        on_disk = sum(path.stat().st_size
                      for path in tmp_path.glob("*.pdnsseg"))
        assert report.stored_bytes == on_disk
        assert "measured" in report.render()

    def test_empty_database(self):
        report = database_storage_report(PassiveDnsDatabase())
        assert report.rows == 0
        assert report.bytes_per_row == 0.0
