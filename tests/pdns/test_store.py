"""Segmented store tests: oracle equality, compaction, corruption."""

import hashlib

import pytest

from repro.core.records import rr_sort_key
from repro.dns.message import RRType
from repro.pdns.database import PassiveDnsDatabase, PdnsBackend
from repro.pdns.io import FormatError
from repro.pdns.segments import SEGMENT_SUFFIX, build_segment_bytes
from repro.pdns.store import SegmentedPdnsStore

DAYS = [f"2011-04-{day:02d}" for day in range(1, 9)]


def day_keys(index):
    """Per-day RR keys: fresh names, a stable overlap set, and CNAMEs."""
    keys = [(f"d{index}-{j}.pool{j % 3}.cdn.example.com",
             RRType.A, f"10.{index}.0.{j}") for j in range(12)]
    keys += [(f"stable{j}.core.example.net", RRType.A,
              f"192.168.1.{j}") for j in range(6)]
    keys += [(f"alias{index}.other.org", RRType.CNAME,
              f"target{index % 2}.other.org")]
    return keys


def populate(backend):
    for index, day in enumerate(DAYS):
        backend.ingest_rrs(day, day_keys(index))
    return backend


@pytest.fixture
def oracle():
    return populate(PassiveDnsDatabase())


def layout_plain(root):
    """One segment per day."""
    return populate(SegmentedPdnsStore(root))


def layout_compacted(root):
    """Everything merged into one segment."""
    store = populate(SegmentedPdnsStore(root))
    store.compact()
    return store


def layout_partial(root):
    """Small segments merged, recent days left alone, tiny LRU."""
    store = populate(SegmentedPdnsStore(root, max_resident=1))
    store.compact(max_rows=13)
    return store


LAYOUTS = [layout_plain, layout_compacted, layout_partial]


@pytest.mark.parametrize("layout", LAYOUTS,
                         ids=["per-day", "compacted", "partial"])
class TestOracleEquality:
    def test_len_and_keys(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        assert len(store) == len(oracle)
        assert sorted(store.rr_keys(), key=rr_sort_key) == \
            sorted(oracle.rr_keys(), key=rr_sort_key)

    def test_first_seen_every_key(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        for key in oracle.rr_keys():
            assert store.first_seen(key) == oracle.first_seen(key)
        missing = ("absent.example.com", RRType.A, "0.0.0.0")
        assert store.first_seen(missing) is None
        assert missing not in store

    def test_entries_for_name(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        for name in ["stable0.core.example.net",
                     "d3-7.pool1.cdn.example.com", "alias2.other.org",
                     "never-stored.example.com"]:
            assert sorted(store.entries_for_name(name),
                          key=lambda e: rr_sort_key(e.rr_key())) == \
                sorted(oracle.entries_for_name(name),
                       key=lambda e: rr_sort_key(e.rr_key()))

    def test_entries_for_rdata(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        for rdata in ["192.168.1.3", "target0.other.org", "10.2.0.5",
                      "203.0.113.1"]:
            assert sorted(store.entries_for_rdata(rdata),
                          key=lambda e: rr_sort_key(e.rr_key())) == \
                sorted(oracle.entries_for_rdata(rdata),
                       key=lambda e: rr_sort_key(e.rr_key()))

    def test_names_under_zone(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        for zone in ["cdn.example.com", "example.com", "core.example.net",
                     "other.org", "org", "unknown.tld"]:
            assert store.names_under_zone(zone) == \
                oracle.names_under_zone(zone)

    def test_new_records_per_day(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        assert store.new_records_per_day() == oracle.new_records_per_day()
        assert store.ingested_days() == sorted(oracle.ingested_days())

    def test_wildcard_aggregation(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        groups = {("pool0.cdn.example.com", 5), ("other.org", 3)}
        assert store.wildcard_aggregated_size(groups) == \
            oracle.wildcard_aggregated_size(groups)
        s_disp, s_other = store.split_by_disposable(groups)
        o_disp, o_other = oracle.split_by_disposable(groups)
        assert sorted(s_disp, key=rr_sort_key) == \
            sorted(o_disp, key=rr_sort_key)
        assert sorted(s_other, key=rr_sort_key) == \
            sorted(o_other, key=rr_sort_key)

    def test_novel_keys(self, tmp_path, oracle, layout):
        store = layout(tmp_path)
        probe = day_keys(2)[:10] + [("fresh.new.example.org", RRType.A,
                                     "198.51.100.7")]
        assert store.novel_keys(probe) == oracle.novel_keys(probe)


class TestIngest:
    def test_reports_match_oracle(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        oracle = PassiveDnsDatabase()
        for index, day in enumerate(DAYS):
            ours = store.ingest_rrs(day, day_keys(index))
            theirs = oracle.ingest_rrs(day, day_keys(index))
            assert (ours.new_records, ours.duplicate_records,
                    ours.total_records_seen) == \
                (theirs.new_records, theirs.duplicate_records,
                 theirs.total_records_seen)

    def test_zero_new_day_still_accounted(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        store.ingest_rrs(DAYS[0], day_keys(0))
        report = store.ingest_rrs(DAYS[1], day_keys(0))  # all duplicates
        assert report.new_records == 0
        assert store.new_records_per_day()[DAYS[1]] == 0
        assert DAYS[1] in store.ingested_days()
        store.compact()
        assert store.new_records_per_day()[DAYS[1]] == 0
        assert DAYS[1] in store.ingested_days()

    def test_first_ingest_wins(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        key = ("a.example.com", RRType.A, "10.0.0.1")
        store.ingest_rrs(DAYS[0], [key])
        store.ingest_rrs(DAYS[1], [key])
        assert store.first_seen(key) == DAYS[0]
        assert len(store) == 1

    def test_reingest_same_day_is_idempotent(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        store.ingest_rrs(DAYS[0], day_keys(0))
        ledger = store.new_records_per_day()
        report = store.ingest_rrs(DAYS[0], day_keys(0))
        assert report.new_records == 0
        assert report.duplicate_records == len(day_keys(0))
        # No redundant empty segment duplicating the day roster.
        assert store.stats().n_segments == 1
        assert store.new_records_per_day() == ledger
        assert store.ingested_days() == [DAYS[0]]
        store.compact()
        assert len(store) == len(dict.fromkeys(day_keys(0)))

    def test_reingest_empty_day_is_idempotent(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        store.ingest_rrs(DAYS[0], [])
        assert store.stats().n_segments == 1  # ledger day preserved
        store.ingest_rrs(DAYS[0], [])
        assert store.stats().n_segments == 1
        assert store.new_records_per_day() == {DAYS[0]: 0}

    def test_reopen_from_disk(self, tmp_path):
        populate(SegmentedPdnsStore(tmp_path))
        reopened = SegmentedPdnsStore(tmp_path)
        oracle = populate(PassiveDnsDatabase())
        assert len(reopened) == len(oracle)
        assert reopened.new_records_per_day() == \
            oracle.new_records_per_day()


class TestCompaction:
    def _segment_digests(self, root):
        return sorted(
            hashlib.sha256(path.read_bytes()).hexdigest()
            for path in root.glob("*.pdnsseg"))

    def test_merge_order_is_byte_identical(self, tmp_path):
        root_a = tmp_path / "a"
        root_b = tmp_path / "b"
        populate(SegmentedPdnsStore(root_a)).compact()
        staged = populate(SegmentedPdnsStore(root_b))
        staged.compact(max_rows=13)   # merge small segments first ...
        staged.compact()              # ... then everything
        assert self._segment_digests(root_a) == \
            self._segment_digests(root_b)

    def test_preserves_first_seen_and_order(self, tmp_path, oracle):
        store = populate(SegmentedPdnsStore(tmp_path))
        before = list(store.iter_rr_items())
        report = store.compact()
        assert report.merged_segments == len(DAYS)
        assert report.bytes_after < report.bytes_before
        after = list(store.iter_rr_items())
        assert dict(after) == dict(before)
        keys = [key for key, _ in after]
        assert keys == sorted(keys, key=rr_sort_key)
        for key in oracle.rr_keys():
            assert store.first_seen(key) == oracle.first_seen(key)

    def test_nothing_to_merge(self, tmp_path):
        store = SegmentedPdnsStore(tmp_path)
        store.ingest_rrs(DAYS[0], day_keys(0))
        report = store.compact()
        assert report.merged_segments == 0
        assert report.bytes_before == report.bytes_after

    def test_identity_merge_does_not_destroy_rows(self, tmp_path):
        """Regression: when the merged output's content key equals a
        merged input's key (identity merge), compact() must not delete
        the output it just published.

        A stray empty segment whose day roster duplicates a sibling's
        (possible in stores written before re-ingest became idempotent)
        makes the merge a no-op content-wise: merged bytes == the
        non-empty input's bytes == the same content-addressed key.  The
        delete loop used to remove that key, silently destroying every
        row."""
        store = SegmentedPdnsStore(tmp_path)
        store.ingest_rrs(DAYS[0], day_keys(0))
        before = dict(store.iter_rr_items())
        assert before
        # Plant the legacy duplicate-roster empty segment directly.
        data = build_segment_bytes({}, days=[DAYS[0]])
        digest = hashlib.sha256(data).hexdigest()[:16]
        name = f"{DAYS[0]}--{DAYS[0]}--{digest}{SEGMENT_SUFFIX}"
        (tmp_path / name).write_bytes(data)
        store = SegmentedPdnsStore(tmp_path)
        assert store.stats().n_segments == 2
        report = store.compact()
        assert report.merged_segments == 2
        assert report.bytes_after > 0
        assert dict(store.iter_rr_items()) == before
        first_key = day_keys(0)[0]
        assert store.first_seen(first_key) == DAYS[0]
        # Survives a reopen: the merged bytes really are on disk.
        reopened = SegmentedPdnsStore(tmp_path)
        assert dict(reopened.iter_rr_items()) == before


class TestPrefilterCounters:
    def test_point_lookup_skips_most_segments(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path))
        store.reset_counters()
        key = day_keys(5)[0]  # fresh name unique to day 5
        assert store.first_seen(key) == DAYS[5]
        assert store.segments_skipped >= 5
        assert store.segments_opened <= 2

    def test_zone_miss_opens_nothing(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path))
        store.reset_counters()
        assert store.names_under_zone("absent.example.io") == set()
        assert store.segments_opened == 0
        assert store.segments_skipped == len(DAYS)

    def test_stats_render(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path))
        stats = store.stats()
        assert stats.n_segments == len(DAYS)
        assert stats.n_rows == len(store)
        assert stats.total_bytes == store.storage_bytes()
        assert "segments" in stats.render()


class TestCorruption:
    def _corrupt_one(self, root, flip=-4):
        path = sorted(root.glob("*.pdnsseg"))[0]
        data = bytearray(path.read_bytes())
        data[flip] ^= 0xFF
        path.write_bytes(bytes(data))
        return path

    def test_raise_mode_names_path(self, tmp_path):
        populate(SegmentedPdnsStore(tmp_path))
        bad = self._corrupt_one(tmp_path, flip=20)  # header damage
        with pytest.raises(FormatError, match=str(bad)):
            SegmentedPdnsStore(tmp_path)

    def test_skip_mode_reports_and_serves_the_rest(self, tmp_path):
        populate(SegmentedPdnsStore(tmp_path))
        bad = self._corrupt_one(tmp_path, flip=20)
        store = SegmentedPdnsStore(tmp_path, on_corrupt="skip")
        reports = store.corrupt_segments()
        assert [str(bad)] == [path for path, _ in reports]
        assert str(bad) in reports[0][1]
        assert store.stats().corrupt_segments == 1
        key = day_keys(5)[0]
        assert store.first_seen(key) == DAYS[5]

    def test_lazy_payload_corruption_quarantines_in_skip_mode(
            self, tmp_path):
        populate(SegmentedPdnsStore(tmp_path))
        bad = self._corrupt_one(tmp_path, flip=-4)  # payload damage
        store = SegmentedPdnsStore(tmp_path, on_corrupt="skip")
        assert not store.corrupt_segments()  # opens fine, filters OK
        keys = store.rr_keys()  # forces every payload
        assert keys
        assert [str(bad)] == [path
                              for path, _ in store.corrupt_segments()]

    def test_lazy_payload_corruption_raises_by_default(self, tmp_path):
        populate(SegmentedPdnsStore(tmp_path))
        bad = self._corrupt_one(tmp_path, flip=-4)
        store = SegmentedPdnsStore(tmp_path)
        with pytest.raises(FormatError, match=str(bad)):
            store.rr_keys()


class TestMaintenance:
    def test_prune_drops_segments(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path))
        removed = store.prune(0)
        assert len(removed) == len(DAYS)
        assert len(store) == 0
        assert store.stats().n_segments == 0

    def test_release_evicts_payloads(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path, max_resident=8))
        store.rr_keys()
        assert store.stats().resident_segments > 0
        store.release()
        assert store.stats().resident_segments == 0

    def test_residency_is_bounded(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path, max_resident=2))
        store.rr_keys()  # touches every segment
        assert store.stats().resident_segments <= 2

    def test_invalid_options_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_corrupt"):
            SegmentedPdnsStore(tmp_path, on_corrupt="ignore")
        with pytest.raises(ValueError, match="max_resident"):
            SegmentedPdnsStore(tmp_path, max_resident=0)


class TestProtocol:
    def test_both_backends_satisfy_protocol(self, tmp_path):
        assert isinstance(PassiveDnsDatabase(), PdnsBackend)
        assert isinstance(SegmentedPdnsStore(tmp_path), PdnsBackend)

    def test_storage_bytes_is_measured(self, tmp_path):
        store = populate(SegmentedPdnsStore(tmp_path))
        on_disk = sum(path.stat().st_size
                      for path in tmp_path.glob("*.pdnsseg"))
        assert store.storage_bytes() == on_disk
        assert store.storage_is_measured
        assert not PassiveDnsDatabase().storage_is_measured
