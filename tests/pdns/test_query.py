"""Tests for the pDNS forensic query index."""

import pytest

from repro.dns.message import RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.query import PdnsQueryIndex


@pytest.fixture
def index():
    db = PassiveDnsDatabase()
    db.ingest_rrs("2011-11-28", [
        ("www.evil.com", RRType.A, "6.6.6.6"),
        ("cdn.evil.com", RRType.A, "6.6.6.7"),
    ])
    db.ingest_rrs("2011-11-29", [
        ("www.evil.com", RRType.A, "7.7.7.7"),      # moved infrastructure
        ("innocent.org", RRType.A, "6.6.6.6"),      # shared hosting
        ("x1.d.net", RRType.A, "1.1.1.1"),
    ])
    return PdnsQueryIndex(db)


class TestHistory:
    def test_history_for_name_sorted(self, index):
        history = index.history_for_name("www.evil.com")
        assert [e.rdata for e in history] == ["6.6.6.6", "7.7.7.7"]
        assert [e.first_seen for e in history] == ["2011-11-28",
                                                   "2011-11-29"]

    def test_case_and_dot_insensitive(self, index):
        assert index.history_for_name("WWW.Evil.COM.")

    def test_unknown_name_empty(self, index):
        assert index.history_for_name("nope.org") == []

    def test_first_seen(self, index):
        assert index.first_seen("www.evil.com") == "2011-11-28"
        assert index.first_seen("nope.org") is None


class TestPivots:
    def test_names_for_rdata(self, index):
        assert index.names_for_rdata("6.6.6.6") == ["innocent.org",
                                                    "www.evil.com"]

    def test_names_under_zone(self, index):
        assert index.names_under_zone("evil.com") == ["cdn.evil.com",
                                                      "www.evil.com"]
        assert index.names_under_zone("com") == ["cdn.evil.com",
                                                 "www.evil.com"]

    def test_cooccurring_names(self, index):
        related = index.cooccurring_names("www.evil.com")
        assert "innocent.org" in related
        assert "www.evil.com" not in related

    def test_stats(self, index):
        stats = index.stats()
        assert stats.records == 5
        assert stats.distinct_names == 4
        assert stats.distinct_rdata == 4
        assert stats.distinct_zones >= 4


class TestDisposableBloat:
    def test_disposable_churn_inflates_index(self, tiny_simulator,
                                             tiny_day):
        """The Section VI-C concern: disposable records dominate the
        forensic indexes an analyst has to store and search."""
        from repro.core.ranking import name_matches_groups

        truth = tiny_simulator.disposable_truth()
        full_db = PassiveDnsDatabase()
        full_db.ingest_day(tiny_day)
        full = PdnsQueryIndex(full_db).stats()

        lean_db = PassiveDnsDatabase()
        lean_keys = [key for key in full_db.rr_keys()
                     if not name_matches_groups(key[0], truth)]
        lean_db.ingest_rrs(tiny_day.day, lean_keys)
        lean = PdnsQueryIndex(lean_db).stats()

        assert full.records > 1.5 * lean.records
        assert full.distinct_names > 1.5 * lean.distinct_names

    def test_zone_pivot_finds_disposable_bulk(self, tiny_simulator,
                                              tiny_day):
        """'Everything under avqs.mcafee.com' — the forensic pivot an
        analyst uses on a flagged zone — returns the bulk names."""
        db = PassiveDnsDatabase()
        db.ingest_day(tiny_day)
        index = PdnsQueryIndex(db)
        under = index.names_under_zone("avqs.mcafee.com")
        assert len(under) > 10
        assert all(name.endswith(".avqs.mcafee.com") for name in under)
