"""Segment format tests: round-trip, determinism, corruption matrix."""

import hashlib
import json

import pytest

from repro.core.records import rr_sort_key
from repro.dns.message import RRType
from repro.pdns.io import FormatError
from repro.pdns.segments import (SEGMENT_MAGIC, build_segment_bytes,
                                 hash64, hash_rr_key, open_segment,
                                 zone_ancestors)


def sample_rows():
    return {
        ("a1.cdn.example.com", RRType.A, "10.0.0.1"): "2011-02-22",
        ("a1.cdn.example.com", RRType.AAAA, "::1"): "2011-02-23",
        ("b.other.net", RRType.CNAME, "c.other.net"): "2011-02-22",
        ("c.other.net", RRType.A, "10.0.0.2"): "2011-02-24",
    }


def write_segment(tmp_path, rows=None, days=None, name="seg.pdnsseg"):
    data = build_segment_bytes(rows if rows is not None else sample_rows(),
                               days=days)
    path = tmp_path / name
    path.write_bytes(data)
    return path, data


class TestRoundTrip:
    def test_rows_and_days_round_trip(self, tmp_path):
        path, _ = write_segment(
            tmp_path, days=["2011-02-22", "2011-02-23", "2011-02-24",
                            "2011-02-25"])
        segment = open_segment(str(path))
        assert dict(segment.rr_items()) == sample_rows()
        assert segment.meta.days[-1] == "2011-02-25"
        assert segment.new_counts_by_day() == {
            "2011-02-22": 2, "2011-02-23": 1, "2011-02-24": 1,
            "2011-02-25": 0}

    def test_rows_in_canonical_order(self, tmp_path):
        path, _ = write_segment(tmp_path)
        segment = open_segment(str(path))
        keys = [key for key, _ in segment.rr_items()]
        assert keys == sorted(keys, key=rr_sort_key)

    def test_point_queries(self, tmp_path):
        path, _ = write_segment(tmp_path)
        segment = open_segment(str(path))
        owned = segment.entries_for_name("a1.cdn.example.com")
        assert {entry.qtype for entry in owned} == {RRType.A, RRType.AAAA}
        carrying = segment.entries_for_rdata("10.0.0.2")
        assert [entry.qname for entry in carrying] == ["c.other.net"]
        assert segment.first_seen_of(
            ("b.other.net", RRType.CNAME, "c.other.net")) == "2011-02-22"
        assert segment.first_seen_of(
            ("b.other.net", RRType.A, "c.other.net")) is None

    def test_zone_queries(self, tmp_path):
        path, _ = write_segment(tmp_path)
        segment = open_segment(str(path))
        assert segment.names_under_zone("example.com") == \
            ["a1.cdn.example.com"]
        assert sorted(segment.names_under_zone("net")) == \
            ["b.other.net", "c.other.net"]
        assert segment.names_under_zone("other.org") == []

    def test_empty_segment(self, tmp_path):
        path, _ = write_segment(tmp_path, rows={}, days=["2011-03-01"])
        segment = open_segment(str(path))
        assert segment.meta.n_rows == 0
        assert segment.new_counts_by_day() == {"2011-03-01": 0}
        assert list(segment.rr_items()) == []

    def test_release_then_requery(self, tmp_path):
        path, _ = write_segment(tmp_path)
        segment = open_segment(str(path))
        assert segment.entries_for_name("c.other.net")
        assert segment.resident
        segment.release()
        assert not segment.resident
        assert segment.entries_for_name("c.other.net")


class TestDeterminism:
    def test_byte_identical_at_any_input_order(self):
        rows = sample_rows()
        reversed_rows = dict(reversed(list(rows.items())))
        assert build_segment_bytes(rows) == \
            build_segment_bytes(reversed_rows)

    def test_day_list_order_does_not_matter(self):
        rows = sample_rows()
        days = ["2011-02-22", "2011-02-23", "2011-02-24"]
        assert build_segment_bytes(rows, days=days) == \
            build_segment_bytes(rows, days=list(reversed(days)))

    def test_row_day_outside_day_list_rejected(self):
        with pytest.raises(ValueError, match="2011-02-24"):
            build_segment_bytes(sample_rows(), days=["2011-02-22",
                                                     "2011-02-23"])


class TestPrefilters:
    def test_membership(self, tmp_path):
        path, _ = write_segment(tmp_path)
        segment = open_segment(str(path))
        assert segment.may_contain_name_hash(hash64("b.other.net"))
        assert not segment.may_contain_name_hash(hash64("nope.invalid"))
        assert segment.may_contain_rdata_hash(hash64("10.0.0.1"))
        assert not segment.may_contain_rdata_hash(hash64("10.9.9.9"))
        assert segment.may_contain_zone_hash(hash64("cdn.example.com"))
        assert segment.may_contain_zone_hash(hash64("com"))
        assert not segment.may_contain_zone_hash(hash64("org"))
        assert segment.may_contain_rr_hash(hash_rr_key(
            ("c.other.net", RRType.A, "10.0.0.2")))
        assert not segment.may_contain_rr_hash(hash_rr_key(
            ("c.other.net", RRType.A, "10.0.0.3")))

    def test_prefilter_checks_need_no_payload(self, tmp_path):
        path, _ = write_segment(tmp_path)
        segment = open_segment(str(path))
        segment.may_contain_name_hash(hash64("b.other.net"))
        assert not segment.resident

    def test_zone_ancestors(self):
        assert zone_ancestors("a.b.c.com") == ["b.c.com", "c.com", "com"]
        assert zone_ancestors("com") == []


class TestCorruptionMatrix:
    def test_bad_magic(self, tmp_path):
        path, data = write_segment(tmp_path)
        path.write_bytes(b"#not-a-segment1\n" + data[len(SEGMENT_MAGIC):])
        with pytest.raises(FormatError, match="bad magic"):
            open_segment(str(path))
        with pytest.raises(FormatError, match=str(path)):
            open_segment(str(path))

    def test_truncated_header(self, tmp_path):
        path, data = write_segment(tmp_path)
        path.write_bytes(data[:len(SEGMENT_MAGIC) + 5])
        with pytest.raises(FormatError, match="header"):
            open_segment(str(path))

    def test_unsupported_version(self, tmp_path):
        path, data = write_segment(tmp_path)
        header_end = data.index(b"\n", len(SEGMENT_MAGIC))
        header = json.loads(data[len(SEGMENT_MAGIC):header_end])
        header["version"] = 99
        line = json.dumps(header, sort_keys=True,
                          separators=(",", ":")).encode()
        path.write_bytes(SEGMENT_MAGIC + line + data[header_end:])
        with pytest.raises(FormatError, match="version"):
            open_segment(str(path))

    def test_truncated_payload(self, tmp_path):
        path, data = write_segment(tmp_path)
        path.write_bytes(data[:-20])
        with pytest.raises(FormatError, match="truncated"):
            open_segment(str(path))

    def test_filter_checksum_mismatch_fails_at_open(self, tmp_path):
        path, data = write_segment(tmp_path)
        header_end = data.index(b"\n", len(SEGMENT_MAGIC))
        corrupted = bytearray(data)
        corrupted[header_end + 10] ^= 0xFF
        path.write_bytes(bytes(corrupted))
        with pytest.raises(FormatError, match="filter"):
            open_segment(str(path))

    def test_payload_checksum_mismatch_fails_lazily(self, tmp_path):
        path, data = write_segment(tmp_path)
        corrupted = bytearray(data)
        corrupted[-4] ^= 0xFF
        path.write_bytes(bytes(corrupted))
        segment = open_segment(str(path))  # filters fine; opens OK
        with pytest.raises(FormatError, match="checksum"):
            segment.entries_for_name("a1.cdn.example.com")
        with pytest.raises(FormatError, match=str(path)):
            list(segment.rr_items())

    def test_error_names_the_offending_file(self, tmp_path):
        path, data = write_segment(tmp_path, name="weird-name.pdnsseg")
        path.write_bytes(data[:8])
        with pytest.raises(FormatError, match="weird-name.pdnsseg"):
            open_segment(str(path))

    def test_header_checksums_match_blocks(self, tmp_path):
        path, data = write_segment(tmp_path)
        header_end = data.index(b"\n", len(SEGMENT_MAGIC))
        header = json.loads(data[len(SEGMENT_MAGIC):header_end])
        blocks = data[header_end + 1:]
        filters = blocks[:header["filters_bytes"]]
        payload = blocks[header["filters_bytes"]:]
        assert hashlib.sha256(filters).hexdigest() == \
            header["filters_sha256"]
        assert hashlib.sha256(payload).hexdigest() == \
            header["payload_sha256"]
        assert len(payload) == header["payload_bytes"]
