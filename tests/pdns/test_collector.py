"""Tests for the passive-DNS collector (monitoring tap)."""

import pytest

from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType
from repro.pdns.collector import PassiveDnsCollector


def ok_response(name, rdatas):
    return Response(Question(name), RCode.NOERROR,
                    [ResourceRecord(name, RRType.A, 300, r) for r in rdatas])


class TestCollector:
    def test_below_one_entry_per_answer_record(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7, ok_response("a.com",
                                                    ["1.1.1.1", "2.2.2.2"]))
        assert len(collector.dataset.below) == 2
        assert all(e.client_id == 7 for e in collector.dataset.below)

    def test_above_entries_have_no_client(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_above(1.0, ok_response("a.com", ["1.1.1.1"]))
        assert collector.dataset.above[0].client_id is None

    def test_nxdomain_is_single_entry(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7,
                                Response(Question("nx.com"), RCode.NXDOMAIN))
        assert len(collector.dataset.below) == 1
        assert collector.dataset.below[0].rcode is RCode.NXDOMAIN

    def test_empty_noerror_recorded_as_failure(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7,
                                Response(Question("x.com"), RCode.NOERROR, []))
        assert not collector.dataset.below[0].is_answer

    def test_roll_day(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7, ok_response("a.com", ["1.1.1.1"]))
        completed = collector.roll_day("d2")
        assert completed.day == "d1"
        assert completed.below_volume() == 1
        assert collector.dataset.day == "d2"
        assert collector.dataset.below == []
        assert completed in collector.finished_datasets

    def test_timestamps_preserved(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(123.5, 7, ok_response("a.com", ["1.1.1.1"]))
        assert collector.dataset.below[0].timestamp == 123.5

    def test_qtype_preserved(self):
        collector = PassiveDnsCollector(day="d1")
        q = Question("a.com", RRType.AAAA)
        r = Response(q, RCode.NOERROR,
                     [ResourceRecord("a.com", RRType.AAAA, 60, "::1")])
        collector.observe_below(0.0, 1, r)
        assert collector.dataset.below[0].qtype is RRType.AAAA
