"""Tests for the passive-DNS collector (monitoring tap)."""

import pytest

from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType
from repro.pdns.collector import PassiveDnsCollector


def ok_response(name, rdatas):
    return Response(Question(name), RCode.NOERROR,
                    [ResourceRecord(name, RRType.A, 300, r) for r in rdatas])


class TestCollector:
    def test_below_one_entry_per_answer_record(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7, ok_response("a.com",
                                                    ["1.1.1.1", "2.2.2.2"]))
        assert len(collector.dataset.below) == 2
        assert all(e.client_id == 7 for e in collector.dataset.below)

    def test_above_entries_have_no_client(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_above(1.0, ok_response("a.com", ["1.1.1.1"]))
        assert collector.dataset.above[0].client_id is None

    def test_nxdomain_is_single_entry(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7,
                                Response(Question("nx.com"), RCode.NXDOMAIN))
        assert len(collector.dataset.below) == 1
        assert collector.dataset.below[0].rcode is RCode.NXDOMAIN

    def test_empty_noerror_recorded_as_failure(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7,
                                Response(Question("x.com"), RCode.NOERROR, []))
        assert not collector.dataset.below[0].is_answer

    def test_roll_day(self):
        collector = PassiveDnsCollector(day="d1", retain_days=None)
        collector.observe_below(1.0, 7, ok_response("a.com", ["1.1.1.1"]))
        completed = collector.roll_day("d2")
        assert completed.day == "d1"
        assert completed.below_volume() == 1
        assert collector.dataset.day == "d2"
        assert collector.dataset.below == []
        assert completed in collector.finished_datasets

    def test_no_retention_by_default(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(1.0, 7, ok_response("a.com", ["1.1.1.1"]))
        completed = collector.roll_day("d2")
        assert completed.below_volume() == 1
        assert collector.finished_datasets == []

    def test_bounded_retention(self):
        collector = PassiveDnsCollector(day="d0", retain_days=2)
        for i in range(1, 5):
            collector.observe_below(float(i), 1,
                                    ok_response("a.com", ["1.1.1.1"]))
            collector.roll_day(f"d{i}")
        retained = [ds.day for ds in collector.finished_datasets]
        assert retained == ["d2", "d3"]

    def test_begin_end_day_single_dataset_per_day(self):
        collector = PassiveDnsCollector(day="warmup", retain_days=None)
        collector.begin_day("d1")
        collector.observe_below(1.0, 7, ok_response("a.com", ["1.1.1.1"]))
        completed = collector.end_day()
        assert completed.day == "d1"
        assert completed.below_volume() == 1
        # Only the real day is retained — no warmup/idle placeholders.
        collector.begin_day("d2")
        collector.end_day()
        assert [ds.day for ds in collector.finished_datasets] == ["d1", "d2"]

    def test_retain_days_validated(self):
        with pytest.raises(ValueError):
            PassiveDnsCollector(day="d1", retain_days=-1)

    def test_timestamps_preserved(self):
        collector = PassiveDnsCollector(day="d1")
        collector.observe_below(123.5, 7, ok_response("a.com", ["1.1.1.1"]))
        assert collector.dataset.below[0].timestamp == 123.5

    def test_qtype_preserved(self):
        collector = PassiveDnsCollector(day="d1")
        q = Question("a.com", RRType.AAAA)
        r = Response(q, RCode.NOERROR,
                     [ResourceRecord("a.com", RRType.AAAA, 60, "::1")])
        collector.observe_below(0.0, 1, r)
        assert collector.dataset.below[0].qtype is RRType.AAAA
