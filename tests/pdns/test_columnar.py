"""Tests for the fpDNS-v2 binary columnar format.

The gzip-TSV format (:mod:`repro.pdns.io`) is the oracle: every
round-trip assertion compares the columnar load against the plain
dataset (entry lists, digest columns, content key).
"""

import numpy as np
import pytest

from repro.core.interning import STREAM_FIELDS, build_day_digest
from repro.core.keys import dataset_content_key
from repro.dns.message import RCode, RRType
from repro.pdns.columnar import (FPDNS2_MAGIC, ColumnarFpDnsDataset,
                                 dumps_fpdns2, load_fpdns2, loads_fpdns2,
                                 save_fpdns2)
from repro.pdns.io import FormatError
from repro.pdns.records import FpDnsDataset, FpDnsEntry


@pytest.fixture
def dataset():
    """A day exercising every encoding edge: absent client/ttl/rdata,
    failure rows that still carry rdata (not representable in the
    digest proper), duplicate RRs across streams."""
    ds = FpDnsDataset(day="2011-12-01")
    ds.below = [
        FpDnsEntry(10.123456789, 3, "www.a.com", RRType.A, RCode.NOERROR,
                   300, "1.1.1.1"),
        FpDnsEntry(11.0, 4, "nx.b.com", RRType.A, RCode.NXDOMAIN),
        FpDnsEntry(12.0, None, "h.c.com", RRType.AAAA, RCode.NOERROR, 60,
                   "aa:bb::1"),
        FpDnsEntry(12.5, 5, "odd.d.com", RRType.CNAME, RCode.SERVFAIL,
                   None, "stale-rdata"),
        FpDnsEntry(13.0, 5, "odd.d.com", RRType.CNAME, RCode.SERVFAIL,
                   None, "stale-rdata"),
    ]
    ds.above = [
        FpDnsEntry(10.5, None, "www.a.com", RRType.A, RCode.NOERROR, 600,
                   "1.1.1.1"),
        FpDnsEntry(11.5, None, "nx.b.com", RRType.A, RCode.NXDOMAIN),
    ]
    return ds


def assert_digest_equal(built, loaded):
    """Field-by-field digest comparison (DayDigest has no __eq__)."""
    assert built.day == loaded.day
    assert list(built.names.names) == list(loaded.names.names)
    assert built.rr_keys == loaded.rr_keys
    assert np.array_equal(built.rr_name_ids, loaded.rr_name_ids)
    for which in ("below", "above"):
        s1, s2 = getattr(built, which), getattr(loaded, which)
        for field in STREAM_FIELDS:
            a1, a2 = getattr(s1, field), getattr(s2, field)
            assert np.array_equal(a1, a2), (which, field)
            assert a1.dtype == a2.dtype, (which, field)


class TestRoundTrip:
    def test_exact_entry_roundtrip(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        assert isinstance(loaded, ColumnarFpDnsDataset)
        assert loaded.day == dataset.day
        assert loaded.below == dataset.below
        assert loaded.above == dataset.above

    def test_equality_both_directions(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        assert loaded == dataset
        assert dataset == loaded

    def test_digest_matches_built_digest(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        assert_digest_equal(build_day_digest(dataset), loaded.day_digest())

    def test_content_key_precomputed(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        assert loaded.content_key == dataset_content_key(dataset)
        # The fast path in dataset_content_key must pick it up.
        assert dataset_content_key(loaded) == loaded.content_key

    def test_reencode_without_materialization(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        again = loads_fpdns2(dumps_fpdns2(loaded))
        assert loaded._below_entries is None  # never materialised
        assert again == dataset

    def test_lossless_timestamps(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        assert loaded.below[0].timestamp == 10.123456789

    def test_empty_day(self):
        empty = FpDnsDataset(day="2011-01-01")
        loaded = loads_fpdns2(dumps_fpdns2(empty))
        assert loaded.below == []
        assert loaded.above == []
        assert loaded == empty

    def test_precomputed_digest_accepted(self, dataset):
        digest = build_day_digest(dataset)
        assert dumps_fpdns2(dataset, digest) == dumps_fpdns2(dataset)

    def test_simulated_day_roundtrip(self, tiny_day):
        loaded = loads_fpdns2(dumps_fpdns2(tiny_day))
        assert loaded.below == tiny_day.below
        assert loaded.above == tiny_day.above
        assert_digest_equal(build_day_digest(tiny_day),
                            loaded.day_digest())

    def test_file_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "day.fpdns2"
        n_bytes = save_fpdns2(dataset, path)
        assert path.stat().st_size == n_bytes
        assert load_fpdns2(path) == dataset


class TestLazyViews:
    def test_digest_access_does_not_materialize(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        loaded.day_digest().queried_domains()
        assert loaded._below_entries is None
        assert loaded._above_entries is None

    def test_entry_access_materializes_once(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        first = loaded.below
        assert first is loaded.below  # memoised
        assert first == dataset.below

    def test_repr_is_lazy(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        text = repr(loaded)
        assert "2011-12-01" in text
        assert loaded._below_entries is None

    def test_aggregates_match_plain_dataset(self, dataset):
        loaded = loads_fpdns2(dumps_fpdns2(dataset))
        assert loaded.below_volume() == dataset.below_volume()
        assert loaded.above_volume() == dataset.above_volume()
        assert loaded.distinct_rrs() == dataset.distinct_rrs()
        assert loaded.nxdomain_volume_below() == \
            dataset.nxdomain_volume_below()


class TestCorruption:
    """Every corruption mode raises FormatError naming the source —
    which the artifact cache maps to a miss."""

    def test_bad_magic(self, dataset):
        data = b"#not-the-magic\n" + dumps_fpdns2(dataset)[len(FPDNS2_MAGIC):]
        with pytest.raises(FormatError, match="bad magic"):
            loads_fpdns2(data)

    def test_truncated_header(self):
        with pytest.raises(FormatError, match="truncated"):
            loads_fpdns2(FPDNS2_MAGIC + b'{"version":1')

    def test_bad_header_json(self):
        with pytest.raises(FormatError, match="header"):
            loads_fpdns2(FPDNS2_MAGIC + b"not json\n")

    def test_wrong_version(self, dataset):
        data = dumps_fpdns2(dataset)
        data = data.replace(b'"version":1', b'"version":99', 1)
        with pytest.raises(FormatError, match="version"):
            loads_fpdns2(data)

    def test_truncated_payload(self, dataset):
        data = dumps_fpdns2(dataset)
        with pytest.raises(FormatError, match="truncated"):
            loads_fpdns2(data[:-10])

    def test_checksum_mismatch(self, dataset):
        data = bytearray(dumps_fpdns2(dataset))
        data[-1] ^= 0xFF
        with pytest.raises(FormatError, match="checksum"):
            loads_fpdns2(bytes(data))

    def test_source_named_in_error(self, dataset, tmp_path):
        path = tmp_path / "broken.fpdns2"
        path.write_bytes(dumps_fpdns2(dataset)[:-10])
        with pytest.raises(FormatError, match="broken.fpdns2"):
            load_fpdns2(path)
