"""Tests for fpDNS/rpDNS dataset containers."""

import pytest

from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry, RpDnsEntry


def entry(name, rdata=None, rcode=RCode.NOERROR, ts=0.0, client=1,
          qtype=RRType.A, ttl=300):
    if rcode is RCode.NXDOMAIN:
        return FpDnsEntry(ts, client, name, qtype, rcode)
    return FpDnsEntry(ts, client, name, qtype, rcode, ttl, rdata or "1.1.1.1")


class TestFpDnsEntry:
    def test_answer_has_key(self):
        e = entry("a.com", "9.9.9.9")
        assert e.is_answer
        assert e.rr_key() == ("a.com", RRType.A, "9.9.9.9")

    def test_nxdomain_has_no_key(self):
        e = entry("a.com", rcode=RCode.NXDOMAIN)
        assert not e.is_answer
        assert e.rr_key() is None


class TestFpDnsDataset:
    @pytest.fixture
    def ds(self):
        ds = FpDnsDataset(day="t")
        ds.below = [
            entry("a.com", "1.1.1.1", ts=0),
            entry("a.com", "1.1.1.1", ts=1),
            entry("b.com", "2.2.2.2", ts=2),
            entry("nx.com", rcode=RCode.NXDOMAIN, ts=3),
        ]
        ds.above = [
            entry("a.com", "1.1.1.1", ts=0, client=None, ttl=600),
            entry("nx.com", rcode=RCode.NXDOMAIN, ts=3, client=None),
        ]
        return ds

    def test_volumes(self, ds):
        assert ds.below_volume() == 4
        assert ds.above_volume() == 2

    def test_queried_vs_resolved(self, ds):
        assert ds.queried_domains() == {"a.com", "b.com", "nx.com"}
        assert ds.resolved_domains() == {"a.com", "b.com"}

    def test_distinct_rrs(self, ds):
        assert ds.distinct_rrs() == {("a.com", RRType.A, "1.1.1.1"),
                                     ("b.com", RRType.A, "2.2.2.2")}

    def test_counts_by_rr(self, ds):
        below = ds.below_counts_by_rr()
        assert below[("a.com", RRType.A, "1.1.1.1")] == 2
        above = ds.above_counts_by_rr()
        assert above[("a.com", RRType.A, "1.1.1.1")] == 1

    def test_nxdomain_volumes(self, ds):
        assert ds.nxdomain_volume_below() == 1
        assert ds.nxdomain_volume_above() == 1

    def test_ttls_prefer_above_observation(self, ds):
        ttls = ds.ttls_by_rr()
        # a.com was seen above with authoritative TTL 600.
        assert ttls[("a.com", RRType.A, "1.1.1.1")] == 600
        # b.com only seen below.
        assert ttls[("b.com", RRType.A, "2.2.2.2")] == 300

    def test_empty_dataset(self):
        ds = FpDnsDataset(day="empty")
        assert ds.queried_domains() == set()
        assert ds.distinct_rrs() == set()
        assert ds.nxdomain_volume_below() == 0


class TestRpDnsEntry:
    def test_key(self):
        e = RpDnsEntry("a.com", RRType.A, "1.1.1.1", "2011-11-28")
        assert e.rr_key() == ("a.com", RRType.A, "1.1.1.1")
