"""The database's incremental inverted indexes and the digest ingest.

Pre-existing behavior covered elsewhere (``test_database``,
``test_query``); this file pins the new contracts: the indexes are
maintained *during* ingestion (a query view stays current with no
rebuild), and ``ingest_digest`` deduplicates exactly like the legacy
``ingest_day``.
"""

import pytest

from repro.core.interning import build_day_digest
from repro.dns.message import RCode, RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.query import PdnsQueryIndex
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def _day(label, names_to_rdata):
    ds = FpDnsDataset(day=label)
    for ts, (name, rdata) in enumerate(names_to_rdata):
        ds.below.append(FpDnsEntry(
            timestamp=float(ts), client_id=1, qname=name, qtype=RRType.A,
            rcode=RCode.NOERROR, ttl=60, rdata=rdata))
    return ds


@pytest.fixture
def two_days():
    day1 = _day("2011-02-01", [("a.example.com", "1.1.1.1"),
                               ("b.example.com", "1.1.1.1"),
                               ("a.example.com", "1.1.1.1"),  # duplicate
                               ("x.other.org", "2.2.2.2")])
    day2 = _day("2011-02-02", [("a.example.com", "1.1.1.1"),  # known RR
                               ("a.example.com", "3.3.3.3"),  # new rdata
                               ("new.example.com", "1.1.1.1")])
    return day1, day2


class TestIngestDigest:
    def test_matches_legacy_ingest_day(self, two_days):
        legacy_db, digest_db = PassiveDnsDatabase(), PassiveDnsDatabase()
        for day in two_days:
            legacy_report = legacy_db.ingest_day(day)
            digest_report = digest_db.ingest_digest(build_day_digest(day))
            assert digest_report == legacy_report
        assert set(legacy_db.rr_keys()) == set(digest_db.rr_keys())
        assert legacy_db.new_records_per_day() == \
            digest_db.new_records_per_day()
        for key in legacy_db.rr_keys():
            assert digest_db.first_seen(key) == legacy_db.first_seen(key)

    def test_matches_on_simulated_day(self, tiny_day):
        legacy_db, digest_db = PassiveDnsDatabase(), PassiveDnsDatabase()
        legacy_report = legacy_db.ingest_day(tiny_day)
        digest_report = digest_db.ingest_digest(build_day_digest(tiny_day))
        assert digest_report == legacy_report
        assert digest_report.new_records > 0
        assert set(legacy_db.rr_keys()) == set(digest_db.rr_keys())


class TestIncrementalIndexes:
    def test_accessors_after_single_ingest(self, two_days):
        db = PassiveDnsDatabase()
        db.ingest_day(two_days[0])
        assert {e.rr_key() for e in db.entries_for_name("a.example.com")} == \
            {("a.example.com", RRType.A, "1.1.1.1")}
        assert {e.qname for e in db.entries_for_rdata("1.1.1.1")} == \
            {"a.example.com", "b.example.com"}
        assert db.names_under_zone("example.com") == \
            {"a.example.com", "b.example.com"}
        assert db.names_under_zone("com") == \
            {"a.example.com", "b.example.com"}
        # The zone itself is not its own strict descendant.
        assert "example.com" not in db.names_under_zone("example.com")

    def test_index_stats_track_table(self, two_days):
        db = PassiveDnsDatabase()
        db.ingest_day(two_days[0])
        records, names, rdata, zones = db.index_stats()
        assert records == len(db)
        assert names == len({e.qname for e in db.entries()})
        assert rdata == len({e.rdata for e in db.entries()})
        assert zones > 0

    def test_query_view_stays_current_across_ingests(self, two_days):
        """The new contract: a PdnsQueryIndex built *before* further
        ingestion reflects later records with no rebuild."""
        db = PassiveDnsDatabase()
        index = PdnsQueryIndex(db)  # built over an empty database
        db.ingest_day(two_days[0])
        assert index.names_for_rdata("1.1.1.1") == \
            ["a.example.com", "b.example.com"]
        before = index.stats()

        db.ingest_day(two_days[1])
        history = index.history_for_name("a.example.com")
        assert [(e.rdata, e.first_seen) for e in history] == \
            [("1.1.1.1", "2011-02-01"), ("3.3.3.3", "2011-02-02")]
        assert "new.example.com" in index.names_under_zone("example.com")
        after = index.stats()
        assert after.records == before.records + 2
        assert after.distinct_rdata == before.distinct_rdata + 1

    def test_cooccurrence_via_live_view(self, two_days):
        db = PassiveDnsDatabase()
        index = PdnsQueryIndex(db)
        db.ingest_day(two_days[0])
        db.ingest_day(two_days[1])
        assert index.cooccurring_names("a.example.com") == \
            ["b.example.com", "new.example.com"]
