"""Tests for passive-DNS serialization."""

import gzip

import pytest

from repro.dns.message import RCode, RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.io import (FormatError, iter_fpdns_entries, load_database,
                           load_fpdns, save_database, save_fpdns)
from repro.pdns.records import FpDnsDataset, FpDnsEntry


@pytest.fixture
def dataset():
    ds = FpDnsDataset(day="2011-12-01")
    ds.below = [
        FpDnsEntry(10.5, 3, "www.a.com", RRType.A, RCode.NOERROR, 300,
                   "1.1.1.1"),
        FpDnsEntry(11.0, 4, "nx.b.com", RRType.A, RCode.NXDOMAIN),
        FpDnsEntry(12.0, 5, "h.c.com", RRType.AAAA, RCode.NOERROR, 60,
                   "aa:bb::1"),
    ]
    ds.above = [
        FpDnsEntry(10.5, None, "www.a.com", RRType.A, RCode.NOERROR, 600,
                   "1.1.1.1"),
    ]
    return ds


class TestFpDnsRoundTrip:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "day.tsv.gz"
        count = save_fpdns(dataset, path)
        assert count == 4
        loaded = load_fpdns(path)
        assert loaded.day == "2011-12-01"
        assert loaded.below == dataset.below
        assert loaded.above == dataset.above

    def test_streaming_iteration(self, dataset, tmp_path):
        path = tmp_path / "day.tsv.gz"
        save_fpdns(dataset, path)
        sides = [side for side, _ in iter_fpdns_entries(path)]
        assert sides == ["B", "B", "B", "A"]

    def test_simulated_day_roundtrip(self, tiny_day, tmp_path):
        path = tmp_path / "sim.tsv.gz"
        save_fpdns(tiny_day, path)
        loaded = load_fpdns(path)
        assert loaded.below_volume() == tiny_day.below_volume()
        assert loaded.above_volume() == tiny_day.above_volume()
        assert loaded.distinct_rrs() == tiny_day.distinct_rrs()
        assert loaded.nxdomain_volume_below() == \
            tiny_day.nxdomain_volume_below()

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not-a-header\n")
        with pytest.raises(FormatError):
            load_fpdns(path)

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            handle.write("B\tonly\tthree\n")
        with pytest.raises(FormatError):
            load_fpdns(path)

    def test_rejects_bad_side(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            handle.write("X\t1.0\t1\ta.com\tA\tNOERROR\t60\t1.1.1.1\n")
        with pytest.raises(FormatError):
            load_fpdns(path)


class TestDatabaseRoundTrip:
    def test_roundtrip(self, tmp_path):
        db = PassiveDnsDatabase()
        db.ingest_rrs("2011-11-28", [("a.com", RRType.A, "1.1.1.1"),
                                     ("b.com", RRType.A, "2.2.2.2")])
        db.ingest_rrs("2011-11-29", [("c.com", RRType.CNAME, "a.com")])
        path = tmp_path / "db.tsv.gz"
        assert save_database(db, path) == 3
        loaded = load_database(path)
        assert len(loaded) == 3
        assert loaded.first_seen(("a.com", RRType.A, "1.1.1.1")) == \
            "2011-11-28"
        assert loaded.first_seen(("c.com", RRType.CNAME, "a.com")) == \
            "2011-11-29"
        assert loaded.new_records_per_day() == {"2011-11-28": 2,
                                                "2011-11-29": 1}

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
        with pytest.raises(FormatError):
            load_database(path)

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.gz"
        assert save_database(PassiveDnsDatabase(), path) == 0
        assert len(load_database(path)) == 0
