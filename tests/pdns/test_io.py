"""Tests for passive-DNS serialization."""

import gzip

import pytest

from repro.dns.message import RCode, RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.io import (FormatError, dumps_fpdns, iter_fpdns_entries,
                           load_database, load_fpdns, loads_fpdns,
                           save_database, save_fpdns)
from repro.pdns.records import FpDnsDataset, FpDnsEntry


@pytest.fixture
def dataset():
    ds = FpDnsDataset(day="2011-12-01")
    ds.below = [
        FpDnsEntry(10.5, 3, "www.a.com", RRType.A, RCode.NOERROR, 300,
                   "1.1.1.1"),
        FpDnsEntry(11.0, 4, "nx.b.com", RRType.A, RCode.NXDOMAIN),
        FpDnsEntry(12.0, 5, "h.c.com", RRType.AAAA, RCode.NOERROR, 60,
                   "aa:bb::1"),
    ]
    ds.above = [
        FpDnsEntry(10.5, None, "www.a.com", RRType.A, RCode.NOERROR, 600,
                   "1.1.1.1"),
    ]
    return ds


class TestFpDnsRoundTrip:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "day.tsv.gz"
        count = save_fpdns(dataset, path)
        assert count == 4
        loaded = load_fpdns(path)
        assert loaded.day == "2011-12-01"
        assert loaded.below == dataset.below
        assert loaded.above == dataset.above

    def test_streaming_iteration(self, dataset, tmp_path):
        path = tmp_path / "day.tsv.gz"
        save_fpdns(dataset, path)
        sides = [side for side, _ in iter_fpdns_entries(path)]
        assert sides == ["B", "B", "B", "A"]

    def test_simulated_day_roundtrip(self, tiny_day, tmp_path):
        path = tmp_path / "sim.tsv.gz"
        save_fpdns(tiny_day, path)
        loaded = load_fpdns(path)
        assert loaded.below_volume() == tiny_day.below_volume()
        assert loaded.above_volume() == tiny_day.above_volume()
        assert loaded.distinct_rrs() == tiny_day.distinct_rrs()
        assert loaded.nxdomain_volume_below() == \
            tiny_day.nxdomain_volume_below()

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not-a-header\n")
        with pytest.raises(FormatError):
            load_fpdns(path)

    def test_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            handle.write("B\tonly\tthree\n")
        with pytest.raises(FormatError):
            load_fpdns(path)

    def test_rejects_bad_side(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            handle.write("X\t1.0\t1\ta.com\tA\tNOERROR\t60\t1.1.1.1\n")
        with pytest.raises(FormatError):
            load_fpdns(path)

    def test_bytes_roundtrip(self, dataset):
        loaded = loads_fpdns(dumps_fpdns(dataset))
        assert loaded.below == dataset.below
        assert loaded.above == dataset.above


_ENTRY_LINE = "B\t1.0\t1\ta.com\tA\tNOERROR\t60\t1.1.1.1\n"


class TestBlankLines:
    def _write(self, path, *lines):
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            for line in lines:
                handle.write(line)

    def test_blank_line_between_records_is_an_error(self, tmp_path):
        """A blank followed by a record means the file was truncated
        and appended to — silently skipping it would mask that."""
        path = tmp_path / "gap.gz"
        self._write(path, _ENTRY_LINE, "\n", _ENTRY_LINE)
        with pytest.raises(FormatError, match="blank line between records"):
            load_fpdns(path)

    def test_blank_line_error_names_line_number(self, tmp_path):
        path = tmp_path / "gap.gz"
        self._write(path, _ENTRY_LINE, "\n", _ENTRY_LINE)
        with pytest.raises(FormatError, match="line 3"):
            load_fpdns(path)

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "trailing.gz"
        self._write(path, _ENTRY_LINE, "\n", "\n")
        loaded = load_fpdns(path)
        assert len(loaded.below) == 1

    def test_streaming_iteration_also_rejects_gaps(self, tmp_path):
        path = tmp_path / "gap.gz"
        self._write(path, _ENTRY_LINE, "\n", _ENTRY_LINE)
        with pytest.raises(FormatError, match="blank line"):
            list(iter_fpdns_entries(path))


class TestErrorsNameSource:
    """Every FormatError message carries the offending file path (or
    '<bytes>' for in-memory payloads)."""

    def test_bad_header_names_path(self, tmp_path):
        path = tmp_path / "bad-header.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("not-a-header\n")
        with pytest.raises(FormatError, match="bad-header.gz"):
            load_fpdns(path)

    def test_malformed_line_names_path(self, tmp_path):
        path = tmp_path / "bad-line.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            handle.write("B\tonly\tthree\n")
        with pytest.raises(FormatError, match="bad-line.gz"):
            load_fpdns(path)

    def test_blank_line_names_path(self, tmp_path):
        path = tmp_path / "gap.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
            handle.write(_ENTRY_LINE + "\n" + _ENTRY_LINE)
        with pytest.raises(FormatError, match="gap.gz"):
            load_fpdns(path)

    def test_in_memory_payload_named_bytes(self):
        with pytest.raises(FormatError, match="<bytes>"):
            loads_fpdns(gzip.compress(b"not-a-header\n"))

    def test_database_errors_name_path(self, tmp_path):
        path = tmp_path / "bad-db.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-rpdns-v1\n")
            handle.write("a.com\tA\n")
        with pytest.raises(FormatError, match="bad-db.gz"):
            load_database(path)


class TestDatabaseRoundTrip:
    def test_roundtrip(self, tmp_path):
        db = PassiveDnsDatabase()
        db.ingest_rrs("2011-11-28", [("a.com", RRType.A, "1.1.1.1"),
                                     ("b.com", RRType.A, "2.2.2.2")])
        db.ingest_rrs("2011-11-29", [("c.com", RRType.CNAME, "a.com")])
        path = tmp_path / "db.tsv.gz"
        assert save_database(db, path) == 3
        loaded = load_database(path)
        assert len(loaded) == 3
        assert loaded.first_seen(("a.com", RRType.A, "1.1.1.1")) == \
            "2011-11-28"
        assert loaded.first_seen(("c.com", RRType.CNAME, "a.com")) == \
            "2011-11-29"
        assert loaded.new_records_per_day() == {"2011-11-28": 2,
                                                "2011-11-29": 1}

    def test_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("#repro-fpdns-v1\tx\n")
        with pytest.raises(FormatError):
            load_database(path)

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.gz"
        assert save_database(PassiveDnsDatabase(), path) == 0
        assert len(load_database(path)) == 0
