"""Tests for the passive-DNS database and wildcard aggregation."""

import pytest

from repro.dns.message import RRType
from repro.pdns.database import ROW_BYTES, PassiveDnsDatabase, wildcard_name
from repro.pdns.records import FpDnsDataset, FpDnsEntry
from repro.dns.message import RCode


def key(name, rdata="1.1.1.1"):
    return (name, RRType.A, rdata)


class TestWildcardName:
    def test_replaces_leftmost_label(self):
        assert wildcard_name("1022vr5.dns.xx.fbcdn.net") == \
            "*.dns.xx.fbcdn.net"

    def test_single_label(self):
        assert wildcard_name("com") == "*"


class TestIngestion:
    def test_first_ingest_all_new(self):
        db = PassiveDnsDatabase()
        report = db.ingest_rrs("d1", [key("a.com"), key("b.com")])
        assert report.new_records == 2
        assert report.duplicate_records == 0
        assert report.dedup_ratio == 1.0
        assert len(db) == 2

    def test_duplicates_not_restored(self):
        db = PassiveDnsDatabase()
        db.ingest_rrs("d1", [key("a.com")])
        report = db.ingest_rrs("d2", [key("a.com"), key("b.com")])
        assert report.new_records == 1
        assert report.duplicate_records == 1
        assert db.first_seen(key("a.com")) == "d1"

    def test_new_per_day_series(self):
        db = PassiveDnsDatabase()
        db.ingest_rrs("d1", [key("a.com"), key("b.com")])
        db.ingest_rrs("d2", [key("a.com"), key("c.com")])
        assert db.new_records_per_day() == {"d1": 2, "d2": 1}
        assert db.ingested_days() == ["d1", "d2"]

    def test_ingest_day_uses_distinct_rrs(self):
        ds = FpDnsDataset(day="d1")
        for _ in range(3):
            ds.below.append(FpDnsEntry(0.0, 1, "a.com", RRType.A,
                                       RCode.NOERROR, 300, "1.1.1.1"))
        db = PassiveDnsDatabase()
        report = db.ingest_day(ds)
        assert report.total_records_seen == 1
        assert report.new_records == 1

    def test_entries_reflect_first_seen(self):
        db = PassiveDnsDatabase()
        db.ingest_rrs("d1", [key("a.com")])
        entries = db.entries()
        assert entries[0].qname == "a.com"
        assert entries[0].first_seen == "d1"

    def test_storage_bytes(self):
        db = PassiveDnsDatabase()
        db.ingest_rrs("d1", [key("a.com"), key("b.com")])
        assert db.storage_bytes() == 2 * ROW_BYTES

    def test_empty_report(self):
        db = PassiveDnsDatabase()
        report = db.ingest_rrs("d1", [])
        assert report.dedup_ratio == 0.0


class TestWildcardAggregation:
    @pytest.fixture
    def db(self):
        db = PassiveDnsDatabase()
        disposable = [key(f"x{i}.dns.xx.fbcdn.net", rdata=f"r{i}")
                      for i in range(10)]
        normal = [key("www.bank.com"), key("mail.bank.com")]
        db.ingest_rrs("d1", disposable + normal)
        return db

    def test_aggregation_collapses_disposable(self, db):
        groups = {("dns.xx.fbcdn.net", 5)}
        # 10 disposable rows -> 1 wildcard row; 2 normal rows kept.
        assert db.wildcard_aggregated_size(groups) == 3

    def test_no_groups_keeps_everything(self, db):
        assert db.wildcard_aggregated_size(set()) == 12

    def test_split_by_disposable(self, db):
        groups = {("dns.xx.fbcdn.net", 5)}
        disposable, other = db.split_by_disposable(groups)
        assert len(disposable) == 10
        assert len(other) == 2

    def test_depth_must_match(self, db):
        groups = {("dns.xx.fbcdn.net", 6)}  # wrong depth
        assert db.wildcard_aggregated_size(groups) == 12

    def test_contains(self, db):
        assert key("www.bank.com") in db
        assert key("ghost.org") not in db
