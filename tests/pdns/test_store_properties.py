"""Property-based tests (hypothesis): the segmented store is
observationally equal to the in-memory database on arbitrary ingest
schedules, and segment bytes are a pure function of logical content."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import rr_sort_key
from repro.dns.message import RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.segments import build_segment_bytes
from repro.pdns.store import SegmentedPdnsStore

label_st = st.text(alphabet=string.ascii_lowercase + string.digits,
                   min_size=1, max_size=6)
domain_st = st.lists(label_st, min_size=1, max_size=4).map(".".join)
rdata_st = st.sampled_from(
    [f"10.0.0.{octet}" for octet in range(8)] + ["host.example.net"])
qtype_st = st.sampled_from([RRType.A, RRType.AAAA, RRType.CNAME])
rr_key_st = st.tuples(domain_st, qtype_st, rdata_st)

#: An ingest schedule: 1-5 days, each with 0-15 RR keys.
schedule_st = st.lists(st.lists(rr_key_st, max_size=15),
                       min_size=1, max_size=5)

DAY_LABELS = [f"2011-05-{day:02d}" for day in range(1, 6)]


def ingest_all(backend, schedule):
    reports = []
    for day, keys in zip(DAY_LABELS, schedule):
        reports.append(backend.ingest_rrs(day, keys))
    return reports


class TestStoreMatchesOracle:
    @settings(max_examples=25, deadline=None)
    @given(schedule_st)
    def test_reports_ledger_and_keys(self, tmp_path_factory, schedule):
        root = tmp_path_factory.mktemp("store")
        store = SegmentedPdnsStore(root)
        oracle = PassiveDnsDatabase()
        ours = ingest_all(store, schedule)
        theirs = ingest_all(oracle, schedule)
        for mine, ref in zip(ours, theirs):
            assert (mine.new_records, mine.duplicate_records) == \
                (ref.new_records, ref.duplicate_records)
        assert len(store) == len(oracle)
        assert store.new_records_per_day() == oracle.new_records_per_day()
        assert sorted(store.rr_keys(), key=rr_sort_key) == \
            sorted(oracle.rr_keys(), key=rr_sort_key)

    @settings(max_examples=25, deadline=None)
    @given(schedule_st)
    def test_point_and_zone_queries(self, tmp_path_factory, schedule):
        root = tmp_path_factory.mktemp("store")
        store = SegmentedPdnsStore(root, max_resident=1)
        oracle = PassiveDnsDatabase()
        ingest_all(store, schedule)
        ingest_all(oracle, schedule)
        seen_keys = {key for keys in schedule for key in keys}
        for key in sorted(seen_keys, key=rr_sort_key):
            assert store.first_seen(key) == oracle.first_seen(key)
            name = key[0]
            assert sorted(store.entries_for_name(name),
                          key=lambda e: rr_sort_key(e.rr_key())) == \
                sorted(oracle.entries_for_name(name),
                       key=lambda e: rr_sort_key(e.rr_key()))
            zone = name.split(".", 1)[-1] if "." in name else name
            assert store.names_under_zone(zone) == \
                oracle.names_under_zone(zone)

    @settings(max_examples=15, deadline=None)
    @given(schedule_st)
    def test_compaction_changes_nothing_observable(self, tmp_path_factory,
                                                   schedule):
        root = tmp_path_factory.mktemp("store")
        store = SegmentedPdnsStore(root)
        oracle = PassiveDnsDatabase()
        ingest_all(store, schedule)
        ingest_all(oracle, schedule)
        store.compact()
        assert store.new_records_per_day() == oracle.new_records_per_day()
        assert store.ingested_days() == sorted(oracle.ingested_days())
        for keys in schedule:
            for key in keys:
                assert store.first_seen(key) == oracle.first_seen(key)


class TestSegmentBytesArePure:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(rr_key_st, st.sampled_from(DAY_LABELS)),
                    max_size=20),
           st.randoms(use_true_random=False))
    def test_input_order_never_leaks_into_bytes(self, items, rng):
        rows = {}
        for key, day in items:
            rows.setdefault(key, day)
        shuffled = list(rows.items())
        rng.shuffle(shuffled)
        assert build_segment_bytes(dict(shuffled), days=DAY_LABELS) == \
            build_segment_bytes(rows, days=DAY_LABELS)
