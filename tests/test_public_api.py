"""Public-API integrity: every name each package exports must resolve,
and key entry points must exist where README documents them."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.classifier",
    "repro.dns",
    "repro.traffic",
    "repro.pdns",
    "repro.analysis",
    "repro.impact",
    "repro.experiments",
    "repro.service",
    "repro.textutil",
]


@pytest.mark.parametrize("module_name", PACKAGES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        pytest.skip(f"{module_name} defines no __all__")
    for name in exported:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_no_duplicate_exports_within_package():
    for module_name in PACKAGES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported)), module_name


def test_readme_documented_entry_points():
    from repro.core import (DisposableZoneRanker, FeatureExtractor,
                            MinerConfig, build_training_set,
                            build_tree_for_day, compute_hit_rates)
    from repro.core.classifier import LadTreeClassifier
    from repro.traffic import (MeasurementDate, SimulatorConfig,
                               TraceSimulator)
    assert all([DisposableZoneRanker, FeatureExtractor, MinerConfig,
                build_training_set, build_tree_for_day, compute_hit_rates,
                LadTreeClassifier, MeasurementDate, SimulatorConfig,
                TraceSimulator])


def test_cli_module_runnable():
    import repro.__main__  # noqa: F401 - import must succeed
    from repro.experiments.cli import EXPERIMENTS, main
    assert callable(main)
    assert len(EXPERIMENTS) >= 15


def test_version_defined():
    import repro
    assert repro.__version__
