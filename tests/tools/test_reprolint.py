"""reprolint test suite: corpus rules fire, suppressions work, src is clean.

The known-bad corpus lives in ``tests/tools/corpus/``; each file fakes
its module identity with a ``# reprolint: module=...`` directive so
rules scoped to ``repro.*`` apply.  Default CLI discovery skips
directories named ``corpus`` (so linting ``tests`` stays clean), but
passing the directory explicitly lints it — that asymmetry is what the
exit-code tests exercise.

R001–R010 are per-file rules and also fire through :func:`lint_source`;
R011/R012 need the whole-program pass, so every corpus expectation is
checked through one shared :func:`analyze_project` session over the
corpus directory.  Engine-level incremental/cache behaviour lives in
``test_reprolint_engine.py``; SARIF output in ``test_reprolint_sarif.py``.
"""

import functools
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from tools.reprolint import (ALL_PROGRAM_RULES, ALL_RULES, analyze_project,
                             lint_source)
from tools.reprolint.cli import main
from tools.reprolint.engine import LintEngine, discover_files, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "tools" / "corpus"

CORPUS_EXPECTATIONS = {
    "R001": ("bad_r001_wall_clock.py", 3),
    "R002": ("bad_r002_unseeded_rng.py", 4),
    "R003": ("bad_r003_layering.py", 2),
    "R004": ("bad_r004_mutable_config.py", 1),
    "R005": ("bad_r005_exports.py", 1),
    "R006": ("bad_r006_float_eq.py", 3),
    "R007": ("bad_r007_unpicklable_workers.py", 3),
    "R008": ("bad_r008_nonatomic_publish.py", 4),
    "R009": ("bad_r009_set_iteration.py", 4),
    "R010": ("bad_r010_unsorted_listing.py", 4),
    "R011": ("bad_r011_worker_globals.py", 2),
    "R012": ("bad_r012_tainted_key.py", 2),
    "R013": ("bad_r013_digest_materialization.py", 2),
    "R014": ("bad_r014_heavy_ipc.py", 2),
    "R015": ("bad_r015_unbounded_growth.py", 2),
    "R016": ("bad_r016_swallowed_corruption.py", 2),
    "R017": ("bad_r017_surface_import.py", 2),
}

#: Additional bad fixtures beyond the one-file-per-rule table above
#: (second shapes of a rule; see their dedicated tests).
EXTRA_BAD_FIXTURES = (
    "bad_r017_service_import.py",
)

#: Known-good twins: the same patterns, written the sanctioned way.
GOOD_FIXTURES = (
    "good_r009_sorted_iteration.py",
    "good_r010_sorted_listing.py",
    "good_r011_worker_pure.py",
    "good_r012_content_key.py",
    "good_r013_columnar_hot_path.py",
    "good_r014_light_ipc.py",
    "good_r015_bounded_growth.py",
    "good_r016_narrow_corruption.py",
    "good_r017_surface_imports_library.py",
)


def lint_file(path, **kwargs):
    return lint_source(path.read_text(), str(path), ALL_RULES, **kwargs)


@functools.lru_cache(maxsize=1)
def corpus_result():
    """One uncached whole-program analysis of the corpus directory."""
    return analyze_project([str(CORPUS)], cache_dir=None)


# --------------------------------------------------------- corpus rules


@pytest.mark.parametrize("rule_id,filename,expected",
                         [(rule, name, count) for rule, (name, count)
                          in sorted(CORPUS_EXPECTATIONS.items())])
def test_corpus_file_fires_rule(rule_id, filename, expected):
    violations = [v for v in corpus_result().violations
                  if Path(v.path).name == filename]
    fired = [v for v in violations if v.rule_id == rule_id]
    assert len(fired) == expected, (
        f"{filename} should trigger {rule_id} x{expected}, got "
        f"{[v.render() for v in violations]}")
    assert all(v.rule_id == rule_id for v in violations), (
        f"{filename} should only trigger {rule_id}, got "
        f"{[v.render() for v in violations]}")


def test_service_import_fixture_fires_r017_only():
    """The second R017 shape: a library module importing the
    ``repro.service`` package itself (legal under the R003 layering
    DAG for experiments code, still a surface violation)."""
    violations = [v for v in corpus_result().violations
                  if Path(v.path).name == "bad_r017_service_import.py"]
    assert [v.rule_id for v in violations] == ["R017"] * 2, (
        f"expected R017 x2, got {[v.render() for v in violations]}")
    assert all("repro.service" in v.message for v in violations)


def test_good_fixtures_are_clean():
    by_file = Counter(Path(v.path).name for v in corpus_result().violations)
    for filename in GOOD_FIXTURES:
        in_file = [v.render() for v in corpus_result().violations
                   if Path(v.path).name == filename]
        assert by_file[filename] == 0, (
            f"{filename} should be violation-free, got {in_file}")


def test_corpus_files_cover_every_rule():
    every_rule = ({rule.rule_id for rule in ALL_RULES}
                  | {rule.rule_id for rule in ALL_PROGRAM_RULES})
    assert set(CORPUS_EXPECTATIONS) == every_rule


def test_per_file_rules_also_fire_through_lint_source():
    violations = lint_file(CORPUS / "bad_r009_set_iteration.py")
    assert [v.rule_id for v in violations] == ["R009"] * 4


def test_violations_carry_position_and_message():
    violations = lint_file(CORPUS / "bad_r001_wall_clock.py")
    first = [v for v in violations if v.rule_id == "R001"][0]
    assert first.line > 1
    assert "time.time" in first.message
    rendered = first.render()
    assert rendered.startswith(str(CORPUS / "bad_r001_wall_clock.py"))
    assert ":R001".replace(":", " ") in rendered or " R001 " in rendered


# --------------------------------------------------------- suppressions


def test_same_line_suppression_silences_rule():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R001\n")
    assert lint_source(source, "tmp.py", ALL_RULES) == []


def test_preceding_comment_line_suppression():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "# reprolint: disable=R001\n"
        "NOW = time.time()\n")
    assert lint_source(source, "tmp.py", ALL_RULES) == []


def test_suppression_is_rule_specific():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R002\n")
    violations = lint_source(source, "tmp.py", ALL_RULES)
    assert [v.rule_id for v in violations] == ["R001"]


def test_file_level_suppression():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "# reprolint: disable-file=R001,R005\n"
        "import time\n"
        "NOW = time.time()\n")
    assert lint_source(source, "tmp.py", ALL_RULES) == []


def test_no_suppressions_flag_reports_anyway():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R001\n")
    violations = lint_source(source, "tmp.py", ALL_RULES,
                             respect_suppressions=False)
    assert [v.rule_id for v in violations] == ["R001"]


# -------------------------------------------------- suppression audit


def _write_module(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(body)
    return path


def test_stale_suppression_is_reported(tmp_path):
    _write_module(tmp_path, "clean.py", (
        "# reprolint: module=repro.traffic.tmp_clean\n"
        "__all__ = [\"now\"]\n\n\n"
        "def now(event):\n"
        "    return event.timestamp  # reprolint: disable=R001\n"))
    result = analyze_project([str(tmp_path)], cache_dir=None)
    assert result.violations == []
    assert [v.rule_id for v in result.stale_suppressions] == ["S001"]
    stale = result.stale_suppressions[0]
    assert stale.line == 6
    assert "R001" in stale.message
    assert result.reported(audit_suppressions=True) == [stale]
    assert result.reported(audit_suppressions=False) == []


def test_useful_suppression_is_not_stale(tmp_path):
    _write_module(tmp_path, "dirty.py", (
        "# reprolint: module=repro.traffic.tmp_dirty\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R001\n"))
    result = analyze_project([str(tmp_path)], cache_dir=None)
    assert result.violations == []
    assert result.stale_suppressions == []


def test_cli_audit_suppressions_flag(tmp_path, capsys):
    _write_module(tmp_path, "clean.py", (
        "# reprolint: module=repro.traffic.tmp_clean\n"
        "__all__ = []\n"
        "VALUE = 1  # reprolint: disable=R002\n"))
    assert main([str(tmp_path), "--no-cache"]) == 0
    capsys.readouterr()
    assert main([str(tmp_path), "--no-cache", "--audit-suppressions"]) == 1
    assert "S001" in capsys.readouterr().out


# ------------------------------------------------------------ discovery


def test_discovery_skips_corpus_by_default():
    found = discover_files([str(REPO_ROOT / "tests")])
    assert not any("corpus" in str(path) for path in found)


def test_explicit_corpus_path_is_linted():
    found = discover_files([str(CORPUS)])
    assert len(found) == (len(CORPUS_EXPECTATIONS) + len(EXTRA_BAD_FIXTURES)
                          + len(GOOD_FIXTURES))


def test_module_name_resolution():
    assert module_name_for(
        REPO_ROOT / "src" / "repro" / "analysis" / "tail.py") \
        == "repro.analysis.tail"
    assert module_name_for(
        REPO_ROOT / "src" / "repro" / "core" / "__init__.py") == "repro.core"


# ------------------------------------------------------- self-check CLI


def test_whole_repo_is_violation_free_and_audit_clean():
    """The self-check: src, tests, examples AND the linter's own code
    (tools/) are clean under every rule modulo the checked-in baseline,
    with no stale suppressions and no unused baseline allowance.

    The unused-allowance assertion is the ratchet: paying down a
    grandfathered violation without shrinking
    ``reprolint-baseline.json`` fails here, so the baseline can only
    ever go down.
    """
    from tools.reprolint.baseline import Baseline
    result = analyze_project([str(REPO_ROOT / "src"),
                              str(REPO_ROOT / "tools"),
                              str(REPO_ROOT / "tests"),
                              str(REPO_ROOT / "examples")],
                             cache_dir=None)
    reported = result.reported(audit_suppressions=True)
    baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
    kept, suppressed, unused = baseline.apply(reported, REPO_ROOT)
    assert kept == [], "\n".join(v.render() for v in kept)
    assert unused == {}, (
        f"baseline allowances unused — debt was paid down, shrink "
        f"reprolint-baseline.json: {unused}")
    assert suppressed == baseline.total()


def test_v1_engine_path_still_works():
    from tools.reprolint.baseline import Baseline
    engine = LintEngine(ALL_RULES)
    violations = engine.run([str(REPO_ROOT / "src")])
    baseline = Baseline.load(REPO_ROOT / "reprolint-baseline.json")
    # The v1 engine runs per-file rules only, so program-rule
    # allowances (R014) legitimately go unused here.
    kept, _, _ = baseline.apply(violations, REPO_ROOT)
    assert kept == [], "\n".join(v.render() for v in kept)


def test_cli_exit_zero_on_clean_tree(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main([str(REPO_ROOT / "src"), "--no-cache", "--baseline",
                 str(REPO_ROOT / "reprolint-baseline.json")]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exit_nonzero_on_corpus(capsys):
    assert main([str(CORPUS), "--no-cache"]) == 1
    out = capsys.readouterr().out
    for rule_id in CORPUS_EXPECTATIONS:
        assert rule_id in out


def test_cli_select_limits_rules(capsys):
    assert main([str(CORPUS), "--no-cache", "--select", "R004"]) == 1
    out = capsys.readouterr().out
    assert "R004" in out
    assert "R001" not in out


def test_cli_select_program_rule(capsys):
    assert main([str(CORPUS), "--no-cache", "--select", "R011"]) == 1
    out = capsys.readouterr().out
    assert "R011" in out
    assert "R009" not in out


def test_cli_unknown_rule_id_errors():
    with pytest.raises(SystemExit, match="R999"):
        main([str(CORPUS), "--no-cache", "--select", "R999"])


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in list(ALL_RULES) + list(ALL_PROGRAM_RULES):
        assert rule.rule_id in out


def test_cli_module_invocation_from_repo_root():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src", "--no-cache",
         "--baseline", "reprolint-baseline.json"],
        cwd=str(REPO_ROOT), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_repo_root_shim_invocation():
    proc = subprocess.run(
        [sys.executable, "-m", "reprolint", "src", "--no-cache",
         "--baseline", "reprolint-baseline.json"],
        cwd=str(REPO_ROOT), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
