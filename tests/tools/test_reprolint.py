"""reprolint test suite: corpus rules fire, suppressions work, src is clean.

The known-bad corpus lives in ``tests/tools/corpus/``; each file fakes
its module identity with a ``# reprolint: module=...`` directive so
rules scoped to ``repro.*`` apply. Default CLI discovery skips
directories named ``corpus`` (so linting ``tests`` stays clean), but
passing the directory explicitly lints it — that asymmetry is what the
exit-code tests exercise.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import ALL_RULES, lint_source
from tools.reprolint.cli import main
from tools.reprolint.engine import LintEngine, discover_files, module_name_for

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "tools" / "corpus"

CORPUS_EXPECTATIONS = {
    "R001": ("bad_r001_wall_clock.py", 3),
    "R002": ("bad_r002_unseeded_rng.py", 4),
    "R003": ("bad_r003_layering.py", 2),
    "R004": ("bad_r004_mutable_config.py", 1),
    "R005": ("bad_r005_exports.py", 1),
    "R006": ("bad_r006_float_eq.py", 3),
    "R007": ("bad_r007_unpicklable_workers.py", 3),
    "R008": ("bad_r008_nonatomic_publish.py", 4),
}


def lint_file(path, **kwargs):
    return lint_source(path.read_text(), str(path), ALL_RULES, **kwargs)


# --------------------------------------------------------- corpus rules


@pytest.mark.parametrize("rule_id,filename,expected",
                         [(rule, name, count) for rule, (name, count)
                          in sorted(CORPUS_EXPECTATIONS.items())])
def test_corpus_file_fires_rule(rule_id, filename, expected):
    violations = lint_file(CORPUS / filename)
    fired = [v for v in violations if v.rule_id == rule_id]
    assert len(fired) == expected, (
        f"{filename} should trigger {rule_id} x{expected}, got "
        f"{[v.render() for v in violations]}")


def test_corpus_files_cover_every_rule():
    assert set(CORPUS_EXPECTATIONS) == {rule.rule_id for rule in ALL_RULES}


def test_violations_carry_position_and_message():
    violations = lint_file(CORPUS / "bad_r001_wall_clock.py")
    first = [v for v in violations if v.rule_id == "R001"][0]
    assert first.line > 1
    assert "time.time" in first.message
    rendered = first.render()
    assert rendered.startswith(str(CORPUS / "bad_r001_wall_clock.py"))
    assert ":R001".replace(":", " ") in rendered or " R001 " in rendered


# --------------------------------------------------------- suppressions


def test_same_line_suppression_silences_rule():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R001\n")
    assert lint_source(source, "tmp.py", ALL_RULES) == []


def test_preceding_comment_line_suppression():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "# reprolint: disable=R001\n"
        "NOW = time.time()\n")
    assert lint_source(source, "tmp.py", ALL_RULES) == []


def test_suppression_is_rule_specific():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R002\n")
    violations = lint_source(source, "tmp.py", ALL_RULES)
    assert [v.rule_id for v in violations] == ["R001"]


def test_file_level_suppression():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "# reprolint: disable-file=R001,R005\n"
        "import time\n"
        "NOW = time.time()\n")
    assert lint_source(source, "tmp.py", ALL_RULES) == []


def test_no_suppressions_flag_reports_anyway():
    source = (
        "# reprolint: module=repro.traffic.tmp\n"
        "__all__ = []\n"
        "import time\n"
        "NOW = time.time()  # reprolint: disable=R001\n")
    violations = lint_source(source, "tmp.py", ALL_RULES,
                             respect_suppressions=False)
    assert [v.rule_id for v in violations] == ["R001"]


# ------------------------------------------------------------ discovery


def test_discovery_skips_corpus_by_default():
    found = discover_files([str(REPO_ROOT / "tests")])
    assert not any("corpus" in str(path) for path in found)


def test_explicit_corpus_path_is_linted():
    found = discover_files([str(CORPUS)])
    assert len(found) == len(CORPUS_EXPECTATIONS)


def test_module_name_resolution():
    assert module_name_for(
        REPO_ROOT / "src" / "repro" / "analysis" / "tail.py") \
        == "repro.analysis.tail"
    assert module_name_for(
        REPO_ROOT / "src" / "repro" / "core" / "__init__.py") == "repro.core"


# ------------------------------------------------------- self-check CLI


def test_src_tests_examples_are_violation_free():
    engine = LintEngine(ALL_RULES)
    violations = engine.run([str(REPO_ROOT / "src"),
                             str(REPO_ROOT / "tests"),
                             str(REPO_ROOT / "examples")])
    assert violations == [], "\n".join(v.render() for v in violations)


def test_cli_exit_zero_on_clean_tree(capsys):
    assert main([str(REPO_ROOT / "src")]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_cli_exit_nonzero_on_corpus(capsys):
    assert main([str(CORPUS)]) == 1
    out = capsys.readouterr().out
    for rule_id in CORPUS_EXPECTATIONS:
        assert rule_id in out


def test_cli_select_limits_rules(capsys):
    assert main([str(CORPUS), "--select", "R004"]) == 1
    out = capsys.readouterr().out
    assert "R004" in out
    assert "R001" not in out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.rule_id in out


def test_cli_module_invocation_from_repo_root():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src"],
        cwd=str(REPO_ROOT), capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr
