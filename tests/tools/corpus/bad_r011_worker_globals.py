# reprolint: module=repro.traffic.fixture_bad_worker
"""Corpus fixture: worker-reachable code mutating module state (R011 x2).

``_bump`` never touches multiprocessing itself — it is two call-graph
hops from the ``pool.map`` dispatch — which is exactly why this needs
the whole-program pass rather than a per-file rule.
"""

from multiprocessing import Pool

__all__ = ["count_labels"]

_COUNTS = {}
_TOTAL = 0


def _bump(label):
    _COUNTS.update({label: True})


def _worker(label):
    global _TOTAL
    _TOTAL = _TOTAL + 1
    _bump(label)
    return label


def count_labels(labels):
    with Pool(2) as pool:
        return pool.map(_worker, labels)
