# reprolint: module=repro.experiments.fixture_bad_serve
"""Corpus fixture: library module importing ``repro.service`` (R017 x2).

The serving daemon embeds the library; a library module that imports
``repro.service`` back drags sockets and the HTTP stack into every
embedder (and into every offline experiment run).  The dependency must
point the other way.
"""

import repro.service as _service
from repro.service.engine import ClassificationEngine as _Engine

__all__ = ["make_engine"]


def make_engine(model, tree, hit_rates):
    assert _service is not None
    return _Engine(model, tree, hit_rates)
