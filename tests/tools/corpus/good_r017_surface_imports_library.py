# reprolint: module=repro.experiments.cli.fixture_good_embed
"""Good twin for R017: the surface imports the library, never vice versa.

This module *is* part of the CLI surface, so importing both sibling
surface modules and library layers is the sanctioned direction.
"""

import repro.experiments.cli as _cli
from repro.core import miner as _miner

__all__ = ["main"]


def main(argv):
    return 0
