# reprolint: module=repro.analysis.fixture_good_growth
"""Good twin for R015: every container has a bound.

``_recent`` is bounded by construction (``deque(maxlen=...)``);
``_verdicts`` grows but the same class evicts it against a
``len()``-checked limit.
"""

from collections import deque

__all__ = ["BoundedVerdictCache"]


class BoundedVerdictCache:
    """Per-zone verdicts with an explicit retention bound."""

    def __init__(self, limit=128):
        self.limit = limit
        self._verdicts = {}
        self._recent = deque(maxlen=limit)

    def record(self, zone, verdict):
        self._verdicts[zone] = verdict
        self._recent.append(zone)
        while len(self._verdicts) > self.limit:
            self._verdicts.pop(next(iter(self._verdicts)))

    def verdict(self, zone):
        return self._verdicts.get(zone)
