# reprolint: module=repro.pdns.fixture_bad_swallow
"""Corpus fixture: broad handlers swallowing corruption signals (R016 x2).

``load_or_none`` catches ``Exception`` around a helper that
(transitively) raises a ``*FormatError``; ``parse_or_empty`` bare-
excepts around a raw decoder.  Both turn corrupt artifacts into silent
misses.
"""

import json

__all__ = ["load_or_none", "parse_or_empty"]


class BlobFormatError(ValueError):
    """Raised when a stored blob fails structural validation."""


def _decode(raw):
    if not raw:
        raise BlobFormatError("empty blob")
    return raw


def load_or_none(path):
    try:
        return _decode(path.read_bytes())
    except Exception:
        return None


def parse_or_empty(raw):
    try:
        return json.loads(raw)
    except:  # noqa: E722
        return {}
