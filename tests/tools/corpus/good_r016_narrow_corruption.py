# reprolint: module=repro.pdns.fixture_good_swallow
"""Good twin for R016: corruption is caught narrowly or re-raised.

``load_or_none`` names the corruption exception; ``parse_strict``
catches broadly but re-raises as the typed signal, so nothing is
swallowed.
"""

import json

__all__ = ["load_or_none", "parse_strict"]


class BlobFormatError(ValueError):
    """Raised when a stored blob fails structural validation."""


def _decode(raw):
    if not raw:
        raise BlobFormatError("empty blob")
    return raw


def load_or_none(path):
    try:
        return _decode(path.read_bytes())
    except BlobFormatError:
        return None


def parse_strict(raw):
    try:
        return json.loads(raw)
    except Exception as exc:
        raise BlobFormatError(str(exc)) from exc
