# reprolint: module=repro.core.fixture_bad_digest_path
"""Corpus fixture: entry materialisation on digest-native hot paths (R013 x2).

``volume_from_digest`` reaches ``_rows`` two call-graph hops down —
which is exactly why this needs the interprocedural effect pass rather
than a per-file rule — and ``peak_from_digest`` materialises directly.
"""

__all__ = ["peak_from_digest", "volume_from_digest"]


def _rows(dataset):
    return [entry for entry in dataset.iter_entries()]


def _volume(dataset):
    return len(_rows(dataset))


def volume_from_digest(digest, dataset):
    return _volume(dataset)


def peak_from_digest(digest, dataset):
    return max(len(entry) for entry in dataset.entries_snapshot())
