# reprolint: module=repro.traffic.fixture_bad_publish
"""Corpus fixture: cache classes writing the final path (R008 x4)."""

import gzip
import json

__all__ = ["ResultCache", "BlobStore"]


class ResultCache:
    def __init__(self, root):
        self.root = root

    def store(self, key, payload):
        path = self.root / f"{key}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return path


class BlobStore:
    def __init__(self, root):
        self.root = root

    def put(self, key, data):
        path = self.root / f"{key}.gz"
        with gzip.open(path, "wb") as handle:
            handle.write(data)
        (self.root / f"{key}.meta").write_text("ok")
        return path
