# reprolint: module=repro.traffic.fixture_bad_key
"""Corpus fixture: nondeterminism reaching cache keys (R012 x2).

``fresh_key`` feeds a source call straight into the sink;
``stamped_key`` launders it through a helper, which only the
call-graph taint pass can see.
"""

import uuid

from repro.core.keys import versioned_key

__all__ = ["fresh_key", "stamped_key"]


def _session_token():
    return uuid.uuid4().hex


def fresh_key(payload):
    return versioned_key("day", uuid.uuid4().hex, payload)


def stamped_key(payload):
    return versioned_key("day", _session_token(), payload)
