# reprolint: module=repro.core.fixture_good_digest_path
"""Good twin for R013: hot paths stay columnar.

``volume_from_digest`` consumes digest columns only; the one function
that *does* materialise entries (``export_rows``) is unreachable from
any hot-named root or worker entry point, so the materialisation is
off the hot path and sanctioned.
"""

__all__ = ["export_rows", "volume_from_digest"]


def volume_from_digest(digest):
    return int(digest.query_counts.sum())


def export_rows(dataset):
    return [entry for entry in dataset.iter_entries()]
