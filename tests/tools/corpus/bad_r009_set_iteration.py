# reprolint: module=repro.traffic.fixture_bad_set_iter
"""Corpus fixture: set iteration feeding ordered output (R009 x4)."""

__all__ = ["collect", "render", "first_two", "emit"]


def collect(names):
    seen = {name.lower() for name in names}
    ordered = []
    for name in seen:
        ordered.append(name)
    return ordered


def render(zones):
    zone_set = set(zones)
    return ",".join(zone_set)


def first_two(keys):
    return list({key for key in keys})[:2]


def emit(flags):
    return [flag.upper() for flag in frozenset(flags)]
