# reprolint: module=repro.traffic.fixture_bad_ipc
"""Corpus fixture: heavy payloads pickled into worker dispatches (R014 x2).

``count_parallel`` ships a heavy-named argument straight into
``pool.map``; ``sizes_parallel`` launders a materialised entry list
through a local first, which the one-step heavy-local propagation
still sees.
"""

from multiprocessing import Pool

__all__ = ["count_parallel", "sizes_parallel"]


def _count(chunk):
    return len(chunk)


def _size(item):
    return len(item)


def count_parallel(datasets):
    with Pool(2) as pool:
        return pool.map(_count, datasets)


def sizes_parallel(day):
    day_entries = day.entries()
    with Pool(2) as pool:
        return pool.map(_size, day_entries)
