# reprolint: module=repro.traffic.fixture_good_ipc
"""Good twin for R014: workers receive paths/labels, not payloads.

The dispatch ships day labels and blob paths; each worker materialises
its own data locally, so nothing heavy crosses the pickle boundary.
"""

from multiprocessing import Pool

__all__ = ["count_parallel"]


def _count_one(blob_path):
    with open(blob_path, "rb") as handle:
        return len(handle.read())


def count_parallel(blob_paths):
    with Pool(2) as pool:
        return pool.map(_count_one, blob_paths)
