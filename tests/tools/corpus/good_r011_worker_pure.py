# reprolint: module=repro.traffic.fixture_good_worker
"""Corpus fixture: workers returning results, parent merges — no R011."""

from multiprocessing import Pool

__all__ = ["count_labels"]


def _worker(label):
    return (label, 1)


def count_labels(labels):
    counts = {}
    with Pool(2) as pool:
        for label, n in pool.map(_worker, labels):
            counts[label] = counts.get(label, 0) + n
    return counts
