# reprolint: module=repro.traffic.fixture_bad_clock
"""Corpus fixture: wall-clock reads inside repro code (R001 x3)."""

import time
from datetime import datetime

from datetime import datetime as dt

__all__ = ["stamp_events"]


def stamp_events() -> float:
    started = time.time()
    cutoff = datetime.now()
    legacy = dt.utcnow()
    return started + cutoff.timestamp() + legacy.timestamp()
