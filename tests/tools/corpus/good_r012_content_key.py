# reprolint: module=repro.traffic.fixture_good_key
"""Corpus fixture: pure content-derived cache keys — no R012.

``_digest`` is a call in the sink argument, so it exercises the
taint lookup's negative path: untainted helper calls must not flag.
"""

import hashlib

from repro.core.keys import versioned_key

__all__ = ["content_key"]


def _digest(payload):
    return hashlib.sha256(payload).hexdigest()


def content_key(payload):
    return versioned_key("day", _digest(payload), payload)
