# reprolint: module=repro.core.fixture_bad_layering
"""Corpus fixture: the mining core importing upward (R003 x2)."""

from repro.experiments.context import ExperimentContext
from repro.traffic.workload import WorkloadModel

__all__ = ["ExperimentContext", "WorkloadModel"]
