# reprolint: module=repro.analysis.fixture_bad_growth
"""Corpus fixture: long-lived object whose containers only grow (R015 x2).

``VerdictCache`` accumulates one dict entry and one list element per
recorded zone and never evicts, so a resident streaming/serve session
leaks without limit.
"""

__all__ = ["VerdictCache"]


class VerdictCache:
    """Per-zone verdicts for a resident analysis session."""

    def __init__(self):
        self._verdicts = {}
        self._order = []

    def record(self, zone, verdict):
        self._verdicts[zone] = verdict
        self._order.append(zone)

    def verdict(self, zone):
        return self._verdicts.get(zone)
