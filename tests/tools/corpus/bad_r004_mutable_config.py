# reprolint: module=repro.traffic.fixture_bad_config
"""Corpus fixture: a mutable, unvalidated *Config dataclass (R004 x1)."""

from dataclasses import dataclass

__all__ = ["ShardConfig"]


@dataclass
class ShardConfig:
    n_shards: int = 4
    capacity: int = 1_000
