# reprolint: module=repro.experiments.fixture_bad_embed
"""Corpus fixture: library module importing the service/CLI surface (R017 x2).

A library module that imports the CLI surface drags argument parsing
into every embedder; the dependency must point the other way.
"""

import repro.experiments.cli as _cli
from repro.experiments.cli import main as _cli_main

__all__ = ["run"]


def run(argv):
    return _cli_main(list(argv))
