# reprolint: module=repro.traffic.fixture_good_listing
"""Corpus fixture: sorted/reduced listings that must NOT fire R010."""

import glob
import os

__all__ = ["shard_names", "day_files", "artifact_count", "largest"]


def shard_names(root):
    return sorted(os.listdir(root))


def day_files(root):
    return sorted(glob.glob(str(root / "*.json")))


def artifact_count(root):
    return sum(1 for _ in root.iterdir())


def largest(root):
    return max((path.stat().st_size for path in sorted(root.rglob("*"))),
               default=0)
