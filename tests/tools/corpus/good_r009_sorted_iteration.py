# reprolint: module=repro.traffic.fixture_good_set_iter
"""Corpus fixture: set consumption that must NOT fire R009.

Sorted materialisation and order-insensitive reducers (sum, len,
membership) are the sanctioned ways to consume a set.
"""

__all__ = ["collect", "render", "total", "contains"]


def collect(names):
    seen = {name.lower() for name in names}
    ordered = []
    for name in sorted(seen):
        ordered.append(name)
    return ordered


def render(zones):
    zone_set = set(zones)
    return ",".join(sorted(zone_set))


def total(weights):
    return sum(weight for weight in set(weights))


def contains(names, name):
    return name in {entry.lower() for entry in names}
