# reprolint: module=repro.traffic.fixture_bad_listing
"""Corpus fixture: filesystem-ordered listings escaping (R010 x4)."""

import glob
import os

__all__ = ["shard_names", "day_files", "walk_tree", "artifacts"]


def shard_names(root):
    return [name for name in os.listdir(root)]


def day_files(root):
    return glob.glob(str(root / "*.json"))


def walk_tree(root):
    for base, _dirs, _files in os.walk(root):
        yield base


def artifacts(root):
    return list(root.iterdir())
