# reprolint: module=repro.traffic.fixture_bad_rng
"""Corpus fixture: global-state and unseeded RNG use (R002 x4)."""

import random

import numpy as np

__all__ = ["jitter"]


def jitter() -> float:
    draw = random.random()
    pick = np.random.randint(0, 10)
    rng = np.random.default_rng()
    legacy = np.random.RandomState(7)
    return draw + pick + rng.random() + legacy.rand()
