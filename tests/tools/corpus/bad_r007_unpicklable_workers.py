# reprolint: module=repro.traffic.fixture_bad_workers
"""Corpus fixture: unpicklable multiprocessing workers (R007 x3)."""

import multiprocessing

__all__ = ["run_all"]


def run_all(items):
    def local_worker(item):
        return item * 2

    with multiprocessing.Pool(2) as pool:
        doubled = pool.map(lambda item: item * 2, items)
        tripled = pool.map(local_worker, items)
    process = multiprocessing.Process(target=lambda: None)
    process.start()
    process.join()
    return doubled + tripled
