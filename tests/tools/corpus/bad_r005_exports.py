# reprolint: module=repro.analysis.fixture_bad_exports
"""Corpus fixture: __all__ exporting an undefined name (R005 x1)."""

__all__ = ["existing_helper", "ghost_function"]


def existing_helper() -> int:
    return 1
