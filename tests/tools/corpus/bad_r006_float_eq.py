# reprolint: module=repro.analysis.fixture_bad_floats
"""Corpus fixture: exact equality on float-valued expressions (R006 x3)."""

__all__ = ["hit_rate_checks"]


def hit_rate_checks(hits: int, total: int, domain_hit_rate: float) -> bool:
    exact_zero = domain_hit_rate == 0.0
    ratio_match = hits / total == 1.0
    rate_differs = domain_hit_rate != 0.5
    return exact_zero or ratio_match or rate_differs
