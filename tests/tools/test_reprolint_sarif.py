"""SARIF 2.1.0 output shape: rule catalogue, results, CLI round-trip."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from tools.reprolint import ALL_PROGRAM_RULES, ALL_RULES, analyze_project
from tools.reprolint.sarif import (SARIF_SCHEMA_URI, SARIF_VERSION,
                                   render_sarif, sarif_document)

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "tools" / "corpus"


@pytest.fixture(scope="module")
def corpus_violations():
    return analyze_project([str(CORPUS)], cache_dir=None).violations


def test_document_envelope(corpus_violations):
    doc = sarif_document(corpus_violations)
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert len(doc["runs"]) == 1
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "reprolint"
    assert run["columnKind"] == "unicodeCodePoints"


def test_rule_catalogue_covers_every_rule(corpus_violations):
    doc = sarif_document(corpus_violations)
    catalogue = doc["runs"][0]["tool"]["driver"]["rules"]
    ids = [rule["id"] for rule in catalogue]
    assert len(ids) == len(set(ids))
    expected = ({rule.rule_id for rule in ALL_RULES}
                | {rule.rule_id for rule in ALL_PROGRAM_RULES}
                | {"E999", "S001"})
    assert set(ids) == expected
    for rule in catalogue:
        assert rule["shortDescription"]["text"]
        assert rule["fullDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] == "error"


def test_results_reference_catalogue_and_locations(corpus_violations):
    assert corpus_violations, "corpus should produce violations"
    doc = sarif_document(corpus_violations)
    run = doc["runs"][0]
    catalogue = run["tool"]["driver"]["rules"]
    assert len(run["results"]) == len(corpus_violations)
    for entry in run["results"]:
        assert catalogue[entry["ruleIndex"]]["id"] == entry["ruleId"]
        assert entry["level"] == "error"
        assert entry["message"]["text"]
        location = entry["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith(".py")
        region = location["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1


def test_render_is_stable_json(corpus_violations):
    text = render_sarif(corpus_violations)
    assert json.loads(text)["version"] == "2.1.0"
    assert render_sarif(corpus_violations) == text


def test_cli_writes_sarif_file(tmp_path):
    out = tmp_path / "lint.sarif"
    proc = subprocess.run(
        [sys.executable, "-m", "reprolint", str(CORPUS), "--no-cache",
         "--sarif", str(out)],
        cwd=str(REPO_ROOT), capture_output=True, text=True)
    assert proc.returncode == 1
    doc = json.loads(out.read_text())
    assert doc["version"] == "2.1.0"
    rule_ids = {entry["ruleId"] for entry in doc["runs"][0]["results"]}
    assert {"R009", "R010", "R011", "R012"} <= rule_ids


def test_cli_format_sarif_to_stdout(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "reprolint", str(CORPUS), "--no-cache",
         "--format", "sarif"],
        cwd=str(REPO_ROOT), capture_output=True, text=True)
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    assert doc["runs"][0]["tool"]["driver"]["name"] == "reprolint"
