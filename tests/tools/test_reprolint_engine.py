"""v2 engine behaviour: incremental cache, dirty tracking, parallel parity.

These tests drive :func:`tools.reprolint.analyze_project` against a
tiny synthetic project in ``tmp_path`` (modules ``alpha`` ← ``beta``,
plus an independent ``gamma``) so cache hits, program-pass reruns, and
import-graph blast radii can be asserted exactly, without depending on
the real tree's size.
"""

from pathlib import Path

from tools.reprolint import analyze_project

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "tools" / "corpus"

ALPHA = (
    "__all__ = [\"base\"]\n\n\n"
    "def base(value):\n"
    "    return value + 1\n")
BETA = (
    "import alpha\n\n"
    "__all__ = [\"derived\"]\n\n\n"
    "def derived(value):\n"
    "    return alpha.base(value) * 2\n")
GAMMA = (
    "__all__ = [\"standalone\"]\n\n\n"
    "def standalone(value):\n"
    "    return value - 1\n")


def _make_project(root):
    (root / "alpha.py").write_text(ALPHA)
    (root / "beta.py").write_text(BETA)
    (root / "gamma.py").write_text(GAMMA)


def test_cold_run_analyzes_everything(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    _make_project(project)
    result = analyze_project([str(project)],
                             cache_dir=tmp_path / "cache")
    assert result.stats.files_total == 3
    assert result.stats.files_analyzed == 3
    assert result.stats.files_cached == 0
    assert result.stats.program_rerun is True
    assert result.stats.dirty_modules == ["alpha", "beta", "gamma"]
    assert result.violations == []


def test_warm_run_is_fully_cached(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    _make_project(project)
    cache = tmp_path / "cache"
    analyze_project([str(project)], cache_dir=cache)
    warm = analyze_project([str(project)], cache_dir=cache)
    assert warm.stats.files_analyzed == 0
    assert warm.stats.files_cached == 3
    assert warm.stats.program_rerun is False
    assert warm.stats.dirty_modules == []


def test_editing_leaf_reanalyzes_only_that_file(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    _make_project(project)
    cache = tmp_path / "cache"
    analyze_project([str(project)], cache_dir=cache)
    (project / "gamma.py").write_text(
        GAMMA.replace("value - 1", "abs(value) - 1"))
    result = analyze_project([str(project)], cache_dir=cache)
    assert result.stats.files_analyzed == 1
    assert result.stats.files_cached == 2
    # gamma has no dependents: the blast radius is gamma alone.
    assert result.stats.program_rerun is True
    assert result.stats.dirty_modules == ["gamma"]


def test_editing_imported_module_dirties_dependents(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    _make_project(project)
    cache = tmp_path / "cache"
    analyze_project([str(project)], cache_dir=cache)
    (project / "alpha.py").write_text(
        ALPHA.replace("value + 1", "abs(value) + 1"))
    result = analyze_project([str(project)], cache_dir=cache)
    assert result.stats.files_analyzed == 1  # only alpha re-parses...
    assert result.stats.files_cached == 2
    # ...but beta imports alpha, so the whole-program blast radius is both.
    assert result.stats.dirty_modules == ["alpha", "beta"]


def test_comment_only_edit_skips_program_pass(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    _make_project(project)
    cache = tmp_path / "cache"
    analyze_project([str(project)], cache_dir=cache)
    (project / "alpha.py").write_text(ALPHA + "\n# a trailing comment\n")
    result = analyze_project([str(project)], cache_dir=cache)
    # The content hash changed, so the file itself re-analyzes...
    assert result.stats.files_analyzed == 1
    # ...but its facts fingerprint did not (a trailing comment shifts
    # no AST line), so the program pass replays from cache.
    assert result.stats.program_rerun is False


def test_program_violations_replay_from_cache(tmp_path):
    cache = tmp_path / "cache"
    cold = analyze_project([str(CORPUS)], cache_dir=cache)
    warm = analyze_project([str(CORPUS)], cache_dir=cache)
    assert warm.stats.files_analyzed == 0
    assert warm.stats.program_rerun is False
    assert ([v.render() for v in warm.reported(audit_suppressions=True)]
            == [v.render() for v in cold.reported(audit_suppressions=True)])
    # The replayed report still carries the whole-program rules.
    assert any(v.rule_id == "R011" for v in warm.violations)
    assert any(v.rule_id == "R012" for v in warm.violations)


def test_parallel_jobs_match_serial_output(tmp_path):
    serial = analyze_project([str(CORPUS)], cache_dir=None, jobs=1)
    parallel = analyze_project([str(CORPUS)], cache_dir=None, jobs=2)
    assert parallel.stats.files_analyzed == serial.stats.files_analyzed
    assert ([v.render() for v in parallel.reported(audit_suppressions=True)]
            == [v.render() for v in serial.reported(audit_suppressions=True)])


def test_no_cache_always_reanalyzes(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    _make_project(project)
    for _ in range(2):
        result = analyze_project([str(project)], cache_dir=None)
        assert result.stats.files_analyzed == 3
        assert result.stats.program_rerun is True


def test_syntax_error_reports_parse_error(tmp_path):
    project = tmp_path / "proj"
    project.mkdir()
    (project / "broken.py").write_text("def half(:\n")
    result = analyze_project([str(project)], cache_dir=tmp_path / "cache")
    assert [v.rule_id for v in result.violations] == ["E999"]
    assert "syntax error" in result.violations[0].message
