"""v3 features: effect facts, propagation, autofix engine, baselines.

The corpus-level behaviour of R013–R017 is covered by
``test_reprolint.py``; here we test the machinery underneath — effect
fact extraction, the caller-ward effect fixpoint, span-based autofix
application (including idempotency and conflict skipping), baseline
ratchet semantics, and the incremental engine's reaction to an
effect-fact-only edit.
"""

import ast
import json
from pathlib import Path

import pytest

from tools.reprolint import analyze_project
from tools.reprolint.baseline import Baseline
from tools.reprolint.callgraph import build_program_facts
from tools.reprolint.cli import main
from tools.reprolint.engine import Violation
from tools.reprolint.facts import collect_facts
from tools.reprolint.fixes import (FIXABLE_RULES, apply_patches,
                                   fixes_for_file)
from tools.reprolint.incremental import analyze_source
from tools.reprolint.sarif import sarif_document

REPO_ROOT = Path(__file__).resolve().parents[2]
CORPUS = REPO_ROOT / "tests" / "tools" / "corpus"


def facts_of(source, module="repro.core.sample"):
    return collect_facts(ast.parse(source), "sample.py", module)


def effects_of(source, qualname_suffix, module="repro.core.sample"):
    facts = facts_of(source, module)
    for def_facts in facts.defs:
        if def_facts.qualname.endswith(qualname_suffix):
            return [effect for effect, _, _, _ in def_facts.effects]
    raise AssertionError(f"no def matching {qualname_suffix}")


# ------------------------------------------------------- effect facts


class TestEffectFacts:
    def test_materializer_call_recorded(self):
        source = ("def rows(dataset):\n"
                  "    return dataset.entries()\n")
        assert effects_of(source, ".rows") == ["materializes_entries"]

    def test_io_and_blocking_calls_recorded(self):
        source = ("import json\n"
                  "import time\n\n\n"
                  "def slow_load(path):\n"
                  "    time.sleep(1)\n"
                  "    with open(path) as handle:\n"
                  "        return json.load(handle)\n")
        effects = effects_of(source, ".slow_load")
        assert "performs_io" in effects
        assert "blocks" in effects

    def test_heavy_pool_dispatch_recorded(self):
        source = ("def fan_out(pool, datasets):\n"
                  "    return pool.map(len, datasets)\n")
        assert effects_of(source, ".fan_out") == ["pickles_large"]

    def test_heavy_local_propagates_one_step(self):
        source = ("def fan_out(pool, day):\n"
                  "    tasks = day.entries()\n"
                  "    return pool.map(len, tasks)\n")
        effects = effects_of(source, ".fan_out")
        assert "pickles_large" in effects

    def test_light_dispatch_not_recorded(self):
        source = ("def fan_out(pool, labels):\n"
                  "    return pool.map(len, labels)\n")
        assert effects_of(source, ".fan_out") == []

    def test_raises_and_broad_handlers_recorded(self):
        source = ("class BlobFormatError(ValueError):\n"
                  "    pass\n\n\n"
                  "def decode(raw):\n"
                  "    if not raw:\n"
                  "        raise BlobFormatError('x')\n"
                  "    return raw\n\n\n"
                  "def load(raw):\n"
                  "    try:\n"
                  "        return decode(raw)\n"
                  "    except Exception:\n"
                  "        return None\n")
        facts = facts_of(source)
        by_name = {d.qualname.rsplit(".", 1)[-1]: d for d in facts.defs}
        assert by_name["decode"].raises == ("BlobFormatError",)
        handlers = by_name["load"].broad_handlers
        assert len(handlers) == 1
        _, _, kind, calls = handlers[0]
        assert kind == "except Exception"
        assert any(call.endswith(".decode") for call in calls)

    def test_rereraising_handler_not_recorded(self):
        source = ("def load(raw):\n"
                  "    try:\n"
                  "        return raw.decode()\n"
                  "    except Exception:\n"
                  "        raise\n")
        facts = facts_of(source)
        assert facts.defs[0].broad_handlers == ()

    def test_import_sites_recorded(self):
        source = ("import repro.experiments.cli as _cli\n"
                  "from repro.core import miner\n")
        facts = facts_of(source)
        imported = {name for _, name in facts.import_sites}
        assert "repro.experiments.cli" in imported
        assert "repro.core.miner" in imported


class TestEffectPropagation:
    def test_effects_propagate_caller_ward(self):
        source = ("def _inner(dataset):\n"
                  "    return dataset.entries()\n\n\n"
                  "def _mid(dataset):\n"
                  "    return _inner(dataset)\n\n\n"
                  "def outer(dataset):\n"
                  "    return _mid(dataset)\n")
        program = build_program_facts([facts_of(source)])
        effect_map = program.call_graph.effect_map()
        for name in ("_inner", "_mid", "outer"):
            qualname = f"repro.core.sample.{name}"
            assert "materializes_entries" in effect_map[qualname], name
        # Transitive carriers get a chain reason naming the root.
        reason = effect_map["repro.core.sample.outer"][
            "materializes_entries"]
        assert "via" in reason

    def test_global_write_seeds_mutates_module_state(self):
        source = ("_COUNT = 0\n\n\n"
                  "def bump():\n"
                  "    global _COUNT\n"
                  "    _COUNT += 1\n")
        program = build_program_facts([facts_of(source)])
        effect_map = program.call_graph.effect_map()
        assert "mutates_module_state" in effect_map[
            "repro.core.sample.bump"]


# ------------------------------------------------------------- autofix


def lint_and_fix(source, path="fix_me.py", module="repro.core.fixture"):
    """One analyze→patch→apply round; returns the new source."""
    result = analyze_source(source, path, module)
    patches = fixes_for_file(path, source, result.violations)
    fixed, _, _ = apply_patches(source, patches)
    return fixed


class TestAutofix:
    def test_for_loop_set_iteration_gets_sorted_wrap(self):
        source = ("__all__ = []\n\n"
                  "def names(zones):\n"
                  "    out = []\n"
                  "    for zone in zones & {'a'}:\n"
                  "        out.append(zone)\n"
                  "    return out\n")
        fixed = lint_and_fix(source)
        assert "for zone in sorted(zones & {'a'}):" in fixed

    def test_list_of_set_becomes_sorted(self):
        source = ("__all__ = []\n\n"
                  "def as_list():\n"
                  "    seen = {'x', 'y'}\n"
                  "    return list(seen)\n")
        assert "return sorted(seen)" in lint_and_fix(source)

    def test_join_and_comprehension_wrapped(self):
        source = ("__all__ = []\n\n"
                  "def joined():\n"
                  "    labels = {'b', 'a'}\n"
                  "    return ','.join(labels)\n\n"
                  "def pairs():\n"
                  "    zones = {'z'}\n"
                  "    return [(z, 1) for z in zones]\n")
        fixed = lint_and_fix(source)
        assert "','.join(sorted(labels))" in fixed
        assert "for z in sorted(zones)]" in fixed

    def test_unsorted_listing_wrapped(self):
        source = ("import os\n\n"
                  "__all__ = []\n\n"
                  "def listing(root):\n"
                  "    return [p for p in os.listdir(root)]\n")
        assert "sorted(os.listdir(root))" in lint_and_fix(source)

    def test_os_walk_is_not_autofixable(self):
        source = ("import os\n\n"
                  "__all__ = []\n\n"
                  "def walk(root):\n"
                  "    return [t for t in os.walk(root)]\n")
        result = analyze_source(source, "walk.py", "repro.core.fixture")
        assert any(v.rule_id == "R010" for v in result.violations)
        assert fixes_for_file("walk.py", source, result.violations) == []

    def test_fix_is_idempotent(self):
        source = ("import os\n\n"
                  "__all__ = []\n\n"
                  "def everything(root):\n"
                  "    seen = {'x'}\n"
                  "    return list(seen) + [p for p in os.listdir(root)]\n")
        once = lint_and_fix(source)
        twice = lint_and_fix(once)
        assert once == twice
        result = analyze_source(twice, "fix_me.py", "repro.core.fixture")
        assert [v for v in result.violations
                if v.rule_id in FIXABLE_RULES] == []

    def test_stale_suppression_line_deleted(self):
        source = ("__all__ = []\n\n"
                  "def value():\n"
                  "    # reprolint: disable=R001\n"
                  "    return 1\n")
        result = analyze_source(source, "s.py", "repro.core.fixture")
        stale = [Violation(rule_id="S001", path="s.py", line=4, col=0,
                           message="stale")]
        patches = fixes_for_file("s.py", source, stale)
        fixed, applied, _ = apply_patches(source, patches)
        assert applied
        assert "reprolint" not in fixed
        assert "return 1" in fixed

    def test_stale_trailing_suppression_stripped(self):
        source = ("__all__ = []\n"
                  "X = 1  # reprolint: disable=R001\n")
        stale = [Violation(rule_id="S001", path="s.py", line=2, col=0,
                           message="stale")]
        fixed, applied, _ = apply_patches(
            source, fixes_for_file("s.py", source, stale))
        assert applied
        assert fixed.splitlines()[1] == "X = 1"

    def test_overlapping_patches_skip_not_merge(self):
        from tools.reprolint.fixes import Patch
        source = "abcdef\n"
        outer = Patch(path="p.py", rule_id="R009", start_line=1,
                      start_col=0, end_line=1, end_col=6,
                      replacement="sorted(abcdef)", description="outer")
        inner = Patch(path="p.py", rule_id="R009", start_line=1,
                      start_col=2, end_line=1, end_col=4,
                      replacement="sorted(cd)", description="inner")
        fixed, applied, skipped = apply_patches(source, [outer, inner])
        assert fixed == "sorted(abcdef)\n"
        assert applied == [outer]
        assert skipped == [inner]

    def test_cli_fix_round_trip(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(
            "# reprolint: module=repro.core.tmpfix\n"
            "__all__ = []\n\n"
            "def as_list():\n"
            "    seen = {'x', 'y'}\n"
            "    return list(seen)\n")
        assert main([str(target), "--no-cache", "--fix-check"]) == 1
        capsys.readouterr()
        assert main([str(target), "--no-cache", "--fix"]) == 0
        capsys.readouterr()
        assert "sorted(seen)" in target.read_text()
        # Second --fix run is a no-op: nothing left to fix.
        before = target.read_text()
        assert main([str(target), "--no-cache", "--fix"]) == 0
        assert target.read_text() == before


# ------------------------------------------------------------ baseline


def _violation(path, rule, line=1):
    return Violation(rule_id=rule, path=path, line=line, col=0,
                     message="m")


class TestBaseline:
    def test_round_trip_and_apply(self, tmp_path):
        root = tmp_path
        violations = [_violation(str(root / "a.py"), "R015", line=3),
                      _violation(str(root / "a.py"), "R015", line=9),
                      _violation(str(root / "b.py"), "R014", line=2)]
        baseline = Baseline.from_violations(violations, root)
        file = tmp_path / "baseline.json"
        baseline.save(file)
        loaded = Baseline.load(file)
        assert loaded.counts == {"a.py::R015": 2, "b.py::R014": 1}

        kept, suppressed, unused = loaded.apply(violations, root)
        assert kept == []
        assert suppressed == 3
        assert unused == {}

    def test_new_violation_exceeds_allowance(self, tmp_path):
        root = tmp_path
        old = [_violation(str(root / "a.py"), "R015")]
        baseline = Baseline.from_violations(old, root)
        grown = old + [_violation(str(root / "a.py"), "R015", line=7)]
        kept, suppressed, _ = baseline.apply(grown, root)
        assert suppressed == 1
        assert len(kept) == 1          # the new one still fails

    def test_paid_down_debt_reports_unused_allowance(self, tmp_path):
        root = tmp_path
        old = [_violation(str(root / "a.py"), "R015", line=3),
               _violation(str(root / "a.py"), "R015", line=9)]
        baseline = Baseline.from_violations(old, root)
        kept, suppressed, unused = baseline.apply(old[:1], root)
        assert kept == []
        assert suppressed == 1
        assert unused == {"a.py::R015": 1}  # ratchet: must shrink file

    def test_version_mismatch_rejected(self, tmp_path):
        file = tmp_path / "baseline.json"
        file.write_text(json.dumps({"version": 99, "counts": {}}))
        with pytest.raises(ValueError):
            Baseline.load(file)

    def test_cli_write_then_apply(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        target = tmp_path / "leaky.py"
        target.write_text(
            "# reprolint: module=repro.analysis.tmpgrow\n"
            "__all__ = ['Ledger']\n\n\n"
            "class Ledger:\n"
            "    def __init__(self):\n"
            "        self._seen = []\n\n"
            "    def note(self, item):\n"
            "        self._seen.append(item)\n")
        file = tmp_path / "baseline.json"
        assert main([str(target), "--no-cache",
                     "--write-baseline", str(file)]) == 0
        capsys.readouterr()
        assert main([str(target), "--no-cache",
                     "--baseline", str(file)]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out


# ------------------------------------------------- SARIF fix objects


class TestSarifFixes:
    def test_results_carry_fix_objects(self):
        source = ("__all__ = []\n\n"
                  "def as_list():\n"
                  "    seen = {'x'}\n"
                  "    return list(seen)\n")
        result = analyze_source(source, "fixable.py", "repro.core.tmp")
        patches = fixes_for_file("fixable.py", source, result.violations)
        document = sarif_document(result.violations, patches=patches)
        results = document["runs"][0]["results"]
        fixable = [r for r in results if r["ruleId"] == "R009"]
        assert fixable and "fixes" in fixable[0]
        change = fixable[0]["fixes"][0]["artifactChanges"][0]
        assert change["artifactLocation"]["uri"] == "fixable.py"
        replacement = change["replacements"][0]
        assert replacement["insertedContent"]["text"] == "sorted"
        assert document["runs"][0]["tool"]["driver"]["version"] == "3.0.0"

    def test_unfixable_results_have_no_fix_objects(self):
        source = "import time\n__all__ = []\nNOW = time.time()\n"
        result = analyze_source(source, "clock.py", "repro.core.tmp")
        document = sarif_document(
            result.violations,
            patches=fixes_for_file("clock.py", source, result.violations))
        for entry in document["runs"][0]["results"]:
            assert "fixes" not in entry


# ------------------------------------- incremental + effect facts


HOT_V1 = (
    "# reprolint: module=repro.core.hotpath\n"
    "__all__ = ['total_from_digest']\n\n\n"
    "def _helper(dataset):\n"
    "    return dataset.size\n\n\n"
    "def total_from_digest(dataset):\n"
    "    return _helper(dataset)\n")

#: Same shape, but the helper now materialises entries: only *effect*
#: facts change, and the program pass must notice.
HOT_V2 = HOT_V1.replace("return dataset.size",
                        "return len(dataset.entries_snapshot())")


class TestIncrementalEffects:
    def test_effect_fact_edit_invalidates_program_pass(self, tmp_path):
        project = tmp_path / "proj"
        project.mkdir()
        target = project / "hot.py"
        target.write_text(HOT_V1)
        cache = tmp_path / "cache"

        cold = analyze_project([str(project)], cache_dir=cache)
        assert cold.violations == []

        warm = analyze_project([str(project)], cache_dir=cache)
        assert warm.stats.program_rerun is False
        assert warm.violations == []

        target.write_text(HOT_V2)
        edited = analyze_project([str(project)], cache_dir=cache)
        assert edited.stats.files_analyzed == 1
        assert edited.stats.program_rerun is True
        assert [v.rule_id for v in edited.violations] == ["R013"]

        # And the new verdict itself replays from cache.
        replay = analyze_project([str(project)], cache_dir=cache)
        assert replay.stats.program_rerun is False
        assert [v.rule_id for v in replay.violations] == ["R013"]

    def test_program_pass_timing_recorded(self, tmp_path):
        project = tmp_path / "proj"
        project.mkdir()
        (project / "hot.py").write_text(HOT_V1)
        result = analyze_project([str(project)], cache_dir=None)
        assert result.stats.program_rerun is True
        assert result.stats.program_pass_s > 0.0
