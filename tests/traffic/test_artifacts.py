"""Tests for the on-disk fpDNS artifact cache."""

import gzip

import pytest

from repro.dns.message import RCode, RRType
from repro.pdns.columnar import ColumnarFpDnsDataset
from repro.pdns.records import FpDnsDataset, FpDnsEntry
from repro.traffic.artifacts import (ARTIFACT_FORMAT, ARTIFACT_FORMATS,
                                     COLUMNAR_SUFFIX, TSV_SUFFIX,
                                     FpDnsArtifactCache,
                                     artifact_format_from_env, artifact_key)
from repro.traffic.population import PopulationConfig
from repro.traffic.simulate import PAPER_DATES, SimulatorConfig
from repro.traffic.workload import WorkloadConfig


def make_dataset(day="2011-02-01"):
    ds = FpDnsDataset(day=day)
    ds.below = [FpDnsEntry(10.123456789, 3, "www.a.com", RRType.A,
                           RCode.NOERROR, 300, "1.1.1.1"),
                FpDnsEntry(11.0, 4, "nx.b.com", RRType.A, RCode.NXDOMAIN)]
    ds.above = [FpDnsEntry(10.123456789, None, "www.a.com", RRType.A,
                           RCode.NOERROR, 600, "1.1.1.1")]
    return ds


class TestArtifactKey:
    def test_deterministic(self):
        config = SimulatorConfig()
        key_a = artifact_key(config, PAPER_DATES[:2])
        key_b = artifact_key(SimulatorConfig(), list(PAPER_DATES[:2]))
        assert key_a == key_b

    def test_config_change_invalidates(self):
        base = artifact_key(SimulatorConfig(), PAPER_DATES[:1])
        assert artifact_key(SimulatorConfig(cache_capacity=12_345),
                            PAPER_DATES[:1]) != base
        assert artifact_key(
            SimulatorConfig(workload=WorkloadConfig(seed=7)),
            PAPER_DATES[:1]) != base
        assert artifact_key(
            SimulatorConfig(population=PopulationConfig(n_popular_sites=7)),
            PAPER_DATES[:1]) != base

    def test_history_prefix_matters(self):
        """The same day after a different prefix is a different artifact
        (resolver caches persist across days)."""
        config = SimulatorConfig()
        key_fresh = artifact_key(config, PAPER_DATES[1:2])
        key_after = artifact_key(config, PAPER_DATES[:2])
        assert key_fresh != key_after

    def test_n_events_matters(self):
        config = SimulatorConfig()
        assert artifact_key(config, PAPER_DATES[:1], n_events=100) != \
            artifact_key(config, PAPER_DATES[:1])

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            artifact_key(SimulatorConfig(), [])

    def test_format_version_in_key_material(self):
        # Guard: bumping ARTIFACT_FORMAT must invalidate old keys.
        assert ARTIFACT_FORMAT == "repro-fpdns-cache-v1"


class TestCacheStore:
    def test_miss_then_hit(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        key = artifact_key(SimulatorConfig(), PAPER_DATES[:1])
        assert cache.load(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        dataset = make_dataset()
        cache.store(key, dataset)
        loaded = cache.load(key)
        assert (cache.hits, cache.misses) == (1, 1)
        assert loaded.day == dataset.day
        assert loaded.below == dataset.below
        assert loaded.above == dataset.above

    def test_lossless_timestamps(self, tmp_path):
        """Full float precision survives the gzip-TSV round trip."""
        cache = FpDnsArtifactCache(tmp_path)
        cache.store("k", make_dataset())
        loaded = cache.load("k")
        assert loaded.below[0].timestamp == 10.123456789

    def test_config_change_misses(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        cache.store(artifact_key(SimulatorConfig(), PAPER_DATES[:1]),
                    make_dataset())
        other = artifact_key(SimulatorConfig(cache_capacity=999),
                             PAPER_DATES[:1])
        assert cache.load(other) is None

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        cache.store("k", make_dataset())
        # Truncate the gzip stream mid-payload.
        path = cache.path_for("k")
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        assert cache.load("k") is None
        assert cache.misses == 1

    def test_not_gzip_is_a_miss(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        cache.path_for("k").write_text("plain text, not gzip")
        assert cache.load("k") is None

    def test_wrong_format_is_a_miss(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        with gzip.open(cache.path_for("k"), "wt") as handle:
            handle.write("#some-other-format\n")
        assert cache.load("k") is None

    def test_len_counts_artifacts(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        assert len(cache) == 0
        cache.store("k1", make_dataset("d1"))
        cache.store("k2", make_dataset("d2"))
        assert len(cache) == 2

    def test_store_is_atomic(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        cache.store("k", make_dataset())
        # No .tmp files left behind after a publish.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_creates_root(self, tmp_path):
        root = tmp_path / "nested" / "cache"
        FpDnsArtifactCache(root)
        assert root.is_dir()


class TestFormatSelection:
    def test_default_is_columnar(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_FORMAT", raising=False)
        assert artifact_format_from_env() == "columnar"
        assert FpDnsArtifactCache(tmp_path).format == "columnar"

    def test_env_selects_tsv(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_FORMAT", "tsv")
        assert artifact_format_from_env() == "tsv"
        cache = FpDnsArtifactCache(tmp_path)
        assert cache.format == "tsv"
        cache.store("k", make_dataset())
        assert cache.path_for("k").suffix == ".gz"

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_FORMAT", "parquet")
        with pytest.raises(ValueError):
            artifact_format_from_env()

    def test_explicit_format_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACT_FORMAT", "tsv")
        assert FpDnsArtifactCache(
            tmp_path, artifact_format="columnar").format == "columnar"

    def test_suffixes_differ(self, tmp_path):
        columnar = FpDnsArtifactCache(tmp_path, artifact_format="columnar")
        tsv = FpDnsArtifactCache(tmp_path, artifact_format="tsv")
        assert columnar.path_for("k").name == f"k{COLUMNAR_SUFFIX}"
        assert tsv.path_for("k").name == f"k{TSV_SUFFIX}"


@pytest.mark.parametrize("artifact_format", ARTIFACT_FORMATS)
class TestBothBackends:
    """The store/load contract holds identically for both backends."""

    def test_roundtrip(self, tmp_path, artifact_format):
        cache = FpDnsArtifactCache(tmp_path, artifact_format=artifact_format)
        dataset = make_dataset()
        cache.store("k", dataset)
        loaded = cache.load("k")
        assert loaded.day == dataset.day
        assert loaded.below == dataset.below
        assert loaded.above == dataset.above
        assert loaded == dataset

    def test_corruption_matrix_every_mode_is_a_miss(self, tmp_path,
                                                    artifact_format):
        """Truncation, bitflip, wrong version/format, zero-length:
        always a miss, never an exception."""
        cache = FpDnsArtifactCache(tmp_path, artifact_format=artifact_format)
        cache.store("k", make_dataset())
        pristine = cache.path_for("k").read_bytes()

        def corrupt(data):
            cache.path_for("k").write_bytes(data)
            assert cache.load("k") is None

        corrupt(pristine[:len(pristine) // 2])        # truncated
        flipped = bytearray(pristine)
        flipped[-1] ^= 0xFF
        corrupt(bytes(flipped))                       # payload bitflip
        corrupt(b"#some-other-format\ngarbage")       # wrong format tag
        corrupt(b"")                                  # zero-length
        assert cache.misses == 4
        # The pristine bytes still load fine afterwards.
        cache.path_for("k").write_bytes(pristine)
        assert cache.load("k") == make_dataset()

    def test_atomic_publish_leaves_no_temps(self, tmp_path,
                                            artifact_format):
        cache = FpDnsArtifactCache(tmp_path, artifact_format=artifact_format)
        cache.store("k", make_dataset())
        assert list(tmp_path.glob("*.tmp")) == []


class TestCrossFormatEquality:
    def test_loaded_days_identical_across_backends(self, tmp_path):
        dataset = make_dataset()
        columnar = FpDnsArtifactCache(tmp_path / "c",
                                      artifact_format="columnar")
        tsv = FpDnsArtifactCache(tmp_path / "t", artifact_format="tsv")
        columnar.store("k", dataset)
        tsv.store("k", dataset)
        from_columnar = columnar.load("k")
        from_tsv = tsv.load("k")
        assert isinstance(from_columnar, ColumnarFpDnsDataset)
        assert from_columnar == from_tsv
        assert from_tsv.below == from_columnar.below
        assert from_tsv.above == from_columnar.above

    def test_columnar_roundtrips_a_tsv_loaded_day(self, tmp_path):
        """tsv -> load -> columnar store -> load is still the same day."""
        dataset = make_dataset()
        tsv = FpDnsArtifactCache(tmp_path, artifact_format="tsv")
        tsv.store("k", dataset)
        relay = FpDnsArtifactCache(tmp_path, artifact_format="columnar")
        relay.store("k", tsv.load("k"))
        assert relay.load("k") == dataset

    def test_backends_share_key_material(self):
        """Keys are format-independent: a day simulated once can be
        stored under both suffixes with the same key."""
        key = artifact_key(SimulatorConfig(), PAPER_DATES[:1])
        assert ARTIFACT_FORMAT in ("repro-fpdns-cache-v1",)
        assert key == artifact_key(SimulatorConfig(), PAPER_DATES[:1])
