"""Tests for the disposable-name generators (Figure 6 schemes)."""

import numpy as np
import pytest

from repro.core.names import label_count, labels, shannon_entropy
from repro.traffic.generators import (AvHashNameGenerator,
                                      CdnShardNameGenerator,
                                      DnsblNameGenerator,
                                      MeasurementNameGenerator,
                                      TelemetryNameGenerator,
                                      TrackingNameGenerator)

GENERATORS = [
    ("telemetry", lambda: TelemetryNameGenerator(
        "device.trans.manage.esoft.com")),
    ("av-hash", lambda: AvHashNameGenerator("avqs.mcafee.com")),
    ("measurement", lambda: MeasurementNameGenerator(
        "ipv6-exp.l.google.com")),
    ("dnsbl", lambda: DnsblNameGenerator("zen.spamhaus.org")),
    ("tracking", lambda: TrackingNameGenerator("dns.xx.fbcdn.net")),
]


@pytest.mark.parametrize("name,factory", GENERATORS)
class TestCommonProperties:
    def test_names_end_with_apex(self, name, factory, rng):
        generator = factory()
        for _ in range(10):
            assert generator.generate(rng).endswith("." + generator.apex)

    def test_fixed_depth(self, name, factory, rng):
        """Disposable names under the same zone section always have the
        same number of labels (Section IV-A)."""
        generator = factory()
        depths = {label_count(generator.generate(rng)) for _ in range(30)}
        assert len(depths) == 1
        assert depths == {generator.depth}

    def test_mostly_unique(self, name, factory, rng):
        generator = factory()
        names = [generator.generate(rng) for _ in range(200)]
        assert len(set(names)) > 150

    def test_reuse_probability_zero_is_all_fresh(self, name, factory, rng):
        generator = factory()
        generator.reuse_probability = 0.0
        names = [generator.generate(rng) for _ in range(100)]
        assert generator.reused == 0


class TestReuse:
    def test_reuse_draws_recent_names(self, rng):
        generator = TrackingNameGenerator("t.net", reuse_probability=0.5)
        names = [generator.generate(rng) for _ in range(300)]
        assert generator.reused > 50
        assert len(set(names)) < 300

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            TrackingNameGenerator("t.net", reuse_probability=1.0)


class TestSchemeShapes:
    def test_mcafee_scheme(self, rng):
        generator = AvHashNameGenerator("avqs.mcafee.com")
        name = generator.generate(rng)
        parts = labels(name)
        # Constant prefix then a 26-char hash, per Figure 6 (ii);
        # 11 periods => 12 labels.
        assert name.count(".") == 11
        assert parts[:8] == ["0", "0", "0", "0", "1", "0", "0", "4e"]
        assert len(parts[8]) == 26
        assert shannon_entropy(parts[8]) > 3.0

    def test_esoft_scheme(self, rng):
        generator = TelemetryNameGenerator("device.trans.manage.esoft.com")
        name = generator.generate(rng)
        parts = labels(name)
        assert parts[0].startswith("load-0-p-")
        assert parts[1].startswith("up-")
        assert parts[2].startswith("mem-")
        assert parts[3].startswith("swap-")

    def test_google_scheme(self, rng):
        generator = MeasurementNameGenerator("ipv6-exp.l.google.com")
        name = generator.generate(rng)
        parts = labels(name)
        assert parts[0] == "p2"
        assert len(parts[1]) == 13
        assert len(parts[2]) == 16
        assert parts[4] in ("i1", "i2", "s1")
        assert parts[5] in ("ds", "v4")

    def test_dnsbl_scheme(self, rng):
        generator = DnsblNameGenerator("zen.spamhaus.org")
        name = generator.generate(rng)
        parts = labels(name)[:4]
        assert all(1 <= int(p) <= 254 for p in parts)

    def test_tracking_token_length(self, rng):
        generator = TrackingNameGenerator("t.net", token_length=20)
        assert len(labels(generator.generate(rng))[0]) == 20


class TestCdnGenerator:
    def test_popular_objects_repeat(self, rng):
        generator = CdnShardNameGenerator("akamai.net", n_objects=100,
                                          popularity_exponent=1.5)
        names = [generator.generate(rng) for _ in range(500)]
        # Head objects dominate: far fewer distinct names than draws.
        assert len(set(names)) < 120

    def test_shard_derived_from_object(self, rng):
        generator = CdnShardNameGenerator("akamai.net", n_objects=50,
                                          n_shards=4)
        for _ in range(20):
            name = generator.generate(rng)
            parts = labels(name)
            object_id = int(parts[0][1:])
            shard = int(parts[1][1:])
            assert shard == object_id % 4
