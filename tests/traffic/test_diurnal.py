"""Tests for the diurnal arrival profile."""

import numpy as np
import pytest

from repro.traffic.diurnal import SECONDS_PER_DAY, DiurnalProfile


class TestIntensity:
    def test_trough_at_configured_hour(self):
        profile = DiurnalProfile(base=0.2, trough_hour=4.0)
        assert profile.intensity(4.0) == pytest.approx(0.2)

    def test_peak_opposite_trough(self):
        profile = DiurnalProfile(base=0.2, trough_hour=4.0)
        assert profile.intensity(16.0) == pytest.approx(1.0)

    def test_bounded(self):
        profile = DiurnalProfile()
        values = [profile.intensity(h) for h in np.linspace(0, 24, 97)]
        assert min(values) >= profile.base - 1e-9
        assert max(values) <= 1.0 + 1e-9

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            DiurnalProfile(base=1.5)


class TestSampling:
    def test_sorted_and_in_range(self, rng):
        profile = DiurnalProfile()
        ts = profile.sample_timestamps(rng, 5000)
        assert np.all(np.diff(ts) >= 0)
        assert ts.min() >= 0
        assert ts.max() < SECONDS_PER_DAY

    def test_compressed_day(self, rng):
        profile = DiurnalProfile()
        ts = profile.sample_timestamps(rng, 5000, day_seconds=3600)
        assert ts.max() < 3600

    def test_diurnal_shape_visible(self, rng):
        """The evening bins should carry far more events than the
        4 am trough bins."""
        profile = DiurnalProfile(base=0.1, trough_hour=4.0)
        ts = profile.sample_timestamps(rng, 50_000)
        hours = (ts / 3600).astype(int)
        counts = np.bincount(hours, minlength=24)
        assert counts[16] > 3 * counts[4]

    def test_empty(self, rng):
        assert DiurnalProfile().sample_timestamps(rng, 0).size == 0

    def test_rejects_negative(self, rng):
        with pytest.raises(ValueError):
            DiurnalProfile().sample_timestamps(rng, -1)

    def test_rejects_bad_day_seconds(self, rng):
        with pytest.raises(ValueError):
            DiurnalProfile().sample_timestamps(rng, 10, day_seconds=0)


class TestHourlyWeights:
    def test_normalised(self):
        weights = DiurnalProfile().hourly_weights()
        assert weights.shape == (24,)
        assert weights.sum() == pytest.approx(1.0)

    def test_peak_hour_heaviest(self):
        # Peak is at hour 16; midpoint sampling makes hours 15 and 16
        # symmetric around it, so either may carry the maximum.
        weights = DiurnalProfile(trough_hour=4.0).hourly_weights()
        assert np.argmax(weights) in (15, 16)
