"""Tests for the workload model."""

import numpy as np
import pytest

from repro.dns.message import RRType
from repro.traffic.population import PopulationConfig, ZonePopulation
from repro.traffic.workload import WorkloadConfig, WorkloadModel


@pytest.fixture(scope="module")
def model():
    population = ZonePopulation(PopulationConfig(
        n_popular_sites=20, n_longtail_sites=100, n_extra_disposable=4,
        cdn_objects=300))
    config = WorkloadConfig(events_per_day=3000, n_clients=50)
    return WorkloadModel(population, config)


class TestMixture:
    def test_category_probabilities_normalised(self, model):
        for t in (0.0, 0.5, 1.0):
            p = model.category_probabilities(t)
            assert p.sum() == pytest.approx(1.0)
            assert (p >= 0).all()

    def test_disposable_share_grows(self, model):
        p0 = model.category_probabilities(0.0)
        p1 = model.category_probabilities(1.0)
        disposable_index = model.CATEGORIES.index("disposable")
        assert p1[disposable_index] > p0[disposable_index]

    def test_year_fraction_clamped(self, model):
        assert (model.category_probabilities(2.0)
                == model.category_probabilities(1.0)).all()

    def test_service_probabilities_shift_toward_growers(self, model):
        p0 = model.service_probabilities(0.0)
        p1 = model.service_probabilities(1.0)
        google = next(i for i, s in enumerate(model.population.services)
                      if s.name == "google-ipv6-exp")
        assert p1[google] > p0[google]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(google_share=0.5, cdn_share=0.3,
                           longtail_share=0.2, typo_share=0.1,
                           disposable_share_end=0.2)


class TestDayGeneration:
    def test_event_count_and_order(self, model):
        events = model.generate_day(0)
        assert len(events) == 3000
        timestamps = [e.timestamp for e in events]
        assert timestamps == sorted(timestamps)

    def test_events_deterministic_per_day(self, model):
        a = model.generate_day(5, 0.3)
        b = model.generate_day(5, 0.3)
        assert [(e.timestamp, e.question.qname) for e in a[:50]] == \
               [(e.timestamp, e.question.qname) for e in b[:50]]

    def test_different_days_differ(self, model):
        a = model.generate_day(1)
        b = model.generate_day(2)
        assert [e.question.qname for e in a[:50]] != \
               [e.question.qname for e in b[:50]]

    def test_n_events_override(self, model):
        assert len(model.generate_day(0, n_events=123)) == 123

    def test_all_categories_present(self, model):
        events = model.generate_day(3, 0.5)
        categories = {e.category for e in events}
        assert categories == set(model.CATEGORIES)

    def test_clients_in_range(self, model):
        events = model.generate_day(4)
        assert all(0 <= e.client_id < 50 for e in events)

    def test_typo_names_not_registered(self, model):
        events = [e for e in model.generate_day(6) if e.category == "typo"]
        assert events
        registered = model.population.registered_2lds
        for event in events[:50]:
            parts = event.question.qname.split(".")
            two_ld = ".".join(parts[-2:])
            assert two_ld not in registered

    def test_disposable_events_from_cohort_clients(self, model):
        events = [e for e in model.generate_day(7, 0.5)
                  if e.category == "disposable"]
        assert events
        # Every disposable event's name belongs to some service, and the
        # client must be in that service's cohort.
        for event in events[:100]:
            service = model.population.disposable_zone_for(
                event.question.qname)
            assert service is not None
            cohort = set(model.clients.cohort(service.name).tolist())
            assert event.client_id in cohort

    def test_qtype_mix(self, model):
        events = model.generate_day(8)
        qtypes = {e.question.qtype for e in events}
        assert RRType.A in qtypes
        assert RRType.AAAA in qtypes

    def test_cname_events_target_cdnlink(self, model):
        events = [e for e in model.generate_day(9)
                  if e.question.qtype == RRType.CNAME]
        assert all(e.question.qname.startswith("cdnlink.") for e in events)


class TestMisspell:
    def test_misspelled_differs(self, rng):
        for _ in range(20):
            out = WorkloadModel._misspell(rng, "example.com")
            assert out != "example.com"
            assert out.endswith(".com")

    def test_short_label(self, rng):
        assert WorkloadModel._misspell(rng, "a.com") == "xa.com"
