"""Tests for the named scenario library."""

import pytest

from repro.traffic.scenarios import SCENARIOS, scenario, scenario_names
from repro.traffic.simulate import MeasurementDate, TraceSimulator


class TestScenarioCatalogue:
    def test_names(self):
        assert scenario_names() == sorted(SCENARIOS)
        assert "paper_year" in SCENARIOS

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            scenario("nope")

    def test_scale_overrides(self):
        config = scenario("paper_year", events_per_day=5_000, n_clients=50)
        assert config.workload.events_per_day == 5_000
        assert config.workload.n_clients == 50

    def test_all_scenarios_construct_simulators(self):
        for name in scenario_names():
            config = scenario(name, events_per_day=1_000, n_clients=30)
            # Shrink populations so construction stays fast.
            from dataclasses import replace
            config.population = replace(config.population,
                                        n_popular_sites=20,
                                        n_longtail_sites=50,
                                        n_extra_disposable=4,
                                        cdn_objects=200)
            simulator = TraceSimulator(config)
            assert len(simulator.authority) > 0, name


class TestScenarioSemantics:
    def test_no_growth_freezes_share(self):
        config = scenario("no_growth")
        workload = config.workload
        assert workload.disposable_share(0.0) == workload.disposable_share(1.0)

    def test_disposable_heavy_doubles_share(self):
        base = scenario("paper_year").workload
        heavy = scenario("disposable_heavy").workload
        assert heavy.disposable_share_start == pytest.approx(
            base.disposable_share_start * 2)

    def test_av_heavy_boosts_av_services(self):
        from dataclasses import replace
        from repro.traffic.population import ZonePopulation

        base_config = scenario("paper_year")
        heavy_config = scenario("av_heavy")
        shrink = dict(n_popular_sites=20, n_longtail_sites=50,
                      n_extra_disposable=4, cdn_objects=200)
        base = ZonePopulation(replace(base_config.population, **shrink))
        heavy = ZonePopulation(replace(heavy_config.population, **shrink))
        base_gti = next(s for s in base.services if s.name == "mcafee-gti")
        heavy_gti = next(s for s in heavy.services if s.name == "mcafee-gti")
        assert heavy_gti.base_weight == pytest.approx(
            base_gti.base_weight * 4)

    def test_cdn_heavy_raises_cdn_share(self):
        assert scenario("cdn_heavy").workload.cdn_share > \
            scenario("paper_year").workload.cdn_share

    def test_rfc2308_sets_negative_ttl(self):
        assert scenario("rfc2308_compliant").negative_ttl == 3_600
        assert scenario("paper_year").negative_ttl is None

    def test_weight_override_unmatched_pattern_rejected(self):
        from dataclasses import replace
        from repro.traffic.population import PopulationConfig, ZonePopulation

        config = PopulationConfig(n_popular_sites=5, n_longtail_sites=10,
                                  n_extra_disposable=2,
                                  service_weight_overrides={"ghost": 2.0})
        with pytest.raises(ValueError):
            ZonePopulation(config)


class TestScenarioBehaviour:
    def test_rfc2308_scenario_reduces_upstream_nxdomain(self):
        from dataclasses import replace

        def run(name):
            config = scenario(name, events_per_day=4_000, n_clients=60)
            config.population = replace(config.population,
                                        n_popular_sites=30,
                                        n_longtail_sites=200,
                                        n_extra_disposable=6,
                                        cdn_objects=500)
            simulator = TraceSimulator(config)
            day = simulator.run_day(MeasurementDate("probe", 100, 0.5))
            return day.nxdomain_volume_above(), day.nxdomain_volume_below()

        default_above, default_below = run("paper_year")
        compliant_above, compliant_below = run("rfc2308_compliant")
        # Same demand below; far fewer NXDOMAINs escape upstream.
        assert compliant_above < default_above
