"""Tests for the end-to-end trace simulator."""

import pytest

from repro.traffic.simulate import (PAPER_DATES, RPDNS_WINDOW_DATES,
                                    MeasurementDate)


class TestCalendar:
    def test_paper_dates(self):
        labels = [d.label for d in PAPER_DATES]
        assert labels == ["2011-02-01", "2011-09-02", "2011-09-13",
                          "2011-11-14", "2011-11-29", "2011-12-30"]
        fractions = [d.year_fraction for d in PAPER_DATES]
        assert fractions == sorted(fractions)

    def test_rpdns_window_is_13_consecutive_days(self):
        assert len(RPDNS_WINDOW_DATES) == 13
        indices = [d.day_index for d in RPDNS_WINDOW_DATES]
        assert indices == list(range(indices[0], indices[0] + 13))
        assert RPDNS_WINDOW_DATES[0].label == "2011-11-28"
        assert RPDNS_WINDOW_DATES[-1].label == "2011-12-10"


class TestSimulatedDay:
    def test_dataset_shape(self, tiny_day):
        assert tiny_day.day == "2011-11-10"
        assert tiny_day.below_volume() > 0
        assert tiny_day.above_volume() > 0
        # Caching: strictly less traffic above than below.
        assert tiny_day.above_volume() < tiny_day.below_volume()

    def test_nxdomain_present_on_both_sides(self, tiny_day):
        assert tiny_day.nxdomain_volume_below() > 0
        # Without negative caching every NXDOMAIN goes upstream.
        assert tiny_day.nxdomain_volume_above() == \
            tiny_day.nxdomain_volume_below()

    def test_populations_nested(self, tiny_day):
        resolved = tiny_day.resolved_domains()
        queried = tiny_day.queried_domains()
        assert resolved <= queried
        assert len(tiny_day.distinct_rrs()) >= len(resolved)

    def test_ground_truth_zones_queried(self, tiny_simulator, tiny_day):
        """The simulated day must contain names under the ground-truth
        disposable zones."""
        resolved = tiny_day.resolved_domains()
        hit_zones = 0
        for zone, _depth in tiny_simulator.disposable_truth():
            if any(name.endswith("." + zone) for name in resolved):
                hit_zones += 1
        assert hit_zones >= len(tiny_simulator.disposable_truth()) * 0.5

    def test_later_day_has_more_disposable(self, tiny_simulator):
        """Growth mechanism: the December day carries a larger share of
        ground-truth disposable names than the February day."""
        from repro.core.ranking import name_matches_groups
        truth = tiny_simulator.disposable_truth()
        early = tiny_simulator.run_day(MeasurementDate("feb", 31, 0.0))
        late = tiny_simulator.run_day(MeasurementDate("dec", 363, 1.0))

        def share(ds):
            resolved = ds.resolved_domains()
            flagged = sum(1 for n in resolved
                          if name_matches_groups(n, truth))
            return flagged / len(resolved)

        assert share(late) > share(early)

    def test_run_days_returns_one_dataset_per_date(self, tiny_simulator):
        dates = [MeasurementDate("d1", 500, 0.5),
                 MeasurementDate("d2", 501, 0.5)]
        datasets = tiny_simulator.run_days(dates, n_events=500)
        assert [d.day for d in datasets] == ["d1", "d2"]
        assert all(d.below_volume() > 0 for d in datasets)
