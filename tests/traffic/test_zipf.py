"""Tests for the Zipf popularity sampler."""

import numpy as np
import pytest

from repro.traffic.zipf import ZipfSampler


class TestZipfSampler:
    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(10, 1.0)
        samples = sampler.sample(rng, 1000)
        assert samples.min() >= 0
        assert samples.max() < 10

    def test_rank_zero_most_frequent(self, rng):
        sampler = ZipfSampler(50, 1.0)
        samples = sampler.sample(rng, 20_000)
        counts = np.bincount(samples, minlength=50)
        assert counts[0] == counts.max()

    def test_skew_increases_with_exponent(self, rng):
        flat = ZipfSampler(100, 0.2)
        steep = ZipfSampler(100, 1.5)
        flat_counts = np.bincount(flat.sample(rng, 20_000), minlength=100)
        steep_counts = np.bincount(steep.sample(rng, 20_000), minlength=100)
        assert steep_counts[0] > flat_counts[0]

    def test_zero_exponent_is_uniform(self, rng):
        sampler = ZipfSampler(4, 0.0)
        for rank in range(4):
            assert sampler.probability(rank) == pytest.approx(0.25)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(20, 1.1)
        total = sum(sampler.probability(r) for r in range(20))
        assert total == pytest.approx(1.0)

    def test_probability_matches_theory(self):
        sampler = ZipfSampler(3, 1.0)
        h = 1 + 0.5 + 1 / 3
        assert sampler.probability(0) == pytest.approx(1 / h)
        assert sampler.probability(2) == pytest.approx((1 / 3) / h)

    def test_sample_one(self, rng):
        sampler = ZipfSampler(5, 1.0)
        assert 0 <= sampler.sample_one(rng) < 5

    def test_single_item(self, rng):
        sampler = ZipfSampler(1, 1.0)
        assert sampler.sample(rng, 10).tolist() == [0] * 10

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0)
        with pytest.raises(ValueError):
            ZipfSampler(5, -0.1)
        with pytest.raises(IndexError):
            ZipfSampler(5, 1.0).probability(5)

    def test_empty_sample(self, rng):
        assert ZipfSampler(5, 1.0).sample(rng, 0).size == 0
