"""Tests for the client population."""

import numpy as np
import pytest

from repro.traffic.clients import ClientPopulation
from repro.traffic.population import PopulationConfig, ZonePopulation


@pytest.fixture(scope="module")
def services():
    population = ZonePopulation(PopulationConfig(
        n_popular_sites=5, n_longtail_sites=10, n_extra_disposable=2))
    return population.services


class TestClientPopulation:
    def test_samples_in_range(self, services, rng):
        clients = ClientPopulation(50, services, seed=1)
        sample = clients.sample_clients(rng, 1000)
        assert sample.min() >= 0
        assert sample.max() < 50

    def test_activity_heavy_tailed(self, services, rng):
        clients = ClientPopulation(100, services, seed=2,
                                   activity_exponent=1.4)
        sample = clients.sample_clients(rng, 50_000)
        counts = np.bincount(sample, minlength=100)
        # Top client should dominate the median client heavily.
        assert counts.max() > 10 * np.median(counts[counts > 0])

    def test_cohort_sizes_follow_fraction(self, services):
        clients = ClientPopulation(200, services, seed=3)
        for service in services:
            expected = max(1, round(service.client_fraction * 200))
            assert clients.cohort_size(service.name) == expected

    def test_cohort_members_fixed(self, services, rng):
        clients = ClientPopulation(100, services, seed=4)
        service = services[0]
        cohort = set(clients.cohort(service.name).tolist())
        for _ in range(50):
            assert clients.sample_cohort_client(rng, service.name) in cohort

    def test_unknown_service_raises(self, services, rng):
        clients = ClientPopulation(10, services, seed=5)
        with pytest.raises(KeyError):
            clients.cohort("nope")

    def test_rejects_zero_clients(self, services):
        with pytest.raises(ValueError):
            ClientPopulation(0, services)
