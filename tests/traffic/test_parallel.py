"""Parallel/serial equivalence for the sharded trace simulator.

The whole value of :mod:`repro.traffic.parallel` rests on one claim:
the merged parallel output is *identical* to the serial simulator's —
not statistically similar, identical.  These tests pin that claim at
n_workers 1, 2 and 4 (1 exercises the inline path, 2 an uneven
server/worker split, 4 the one-server-per-worker case), on both the
in-memory entry streams and the serialized bytes.
"""

import gzip
from pathlib import Path

import numpy as np
import pytest

from repro.core.interning import STREAM_FIELDS, build_day_digest
from repro.core.keys import dataset_content_key
from repro.pdns.io import save_fpdns
from repro.traffic.parallel import ShardedTraceSimulator, default_worker_count
from repro.traffic.population import PopulationConfig
from repro.traffic.simulate import (PAPER_DATES, MeasurementDate,
                                    SimulatorConfig, TraceSimulator)
from repro.traffic.workload import WorkloadConfig

try:
    from repro.core.ipc import shared_memory_available
    HAVE_SHM = shared_memory_available()
except ImportError:  # pragma: no cover
    HAVE_SHM = False

needs_shm = pytest.mark.skipif(not HAVE_SHM,
                               reason="no POSIX shared memory")

DATES = PAPER_DATES[:2]
N_EVENTS = 3_000


def small_config() -> SimulatorConfig:
    return SimulatorConfig(
        n_servers=4,
        cache_capacity=3_000,
        population=PopulationConfig(
            n_popular_sites=40, n_longtail_sites=400,
            n_extra_disposable=12, cdn_objects=1_500),
        workload=WorkloadConfig(events_per_day=6_000, n_clients=80))


@pytest.fixture(scope="module")
def serial_run():
    simulator = TraceSimulator(small_config())
    datasets = simulator.run_days(DATES, n_events=N_EVENTS)
    return datasets, simulator.cluster.total_stats()


class TestEquivalence:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_datasets_identical(self, serial_run, n_workers):
        serial_datasets, _ = serial_run
        sharded = ShardedTraceSimulator(small_config(), n_workers=n_workers)
        parallel_datasets = sharded.run_days(DATES, n_events=N_EVENTS)
        assert len(parallel_datasets) == len(serial_datasets)
        for serial_day, parallel_day in zip(serial_datasets,
                                            parallel_datasets):
            assert parallel_day.day == serial_day.day
            assert parallel_day.below == serial_day.below
            assert parallel_day.above == serial_day.above

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_total_stats_identical(self, serial_run, n_workers):
        _, serial_stats = serial_run
        sharded = ShardedTraceSimulator(small_config(), n_workers=n_workers)
        sharded.run_days(DATES, n_events=N_EVENTS)
        assert sharded.total_stats() == serial_stats

    def test_serialized_bytes_identical(self, serial_run, tmp_path):
        """The acceptance bar: gzip-TSV artifacts are byte-identical."""
        serial_datasets, _ = serial_run
        sharded = ShardedTraceSimulator(small_config(), n_workers=2)
        parallel_datasets = sharded.run_days(DATES, n_events=N_EVENTS)
        for serial_day, parallel_day in zip(serial_datasets,
                                            parallel_datasets):
            serial_path = tmp_path / f"serial-{serial_day.day}.gz"
            parallel_path = tmp_path / f"parallel-{parallel_day.day}.gz"
            save_fpdns(serial_day, serial_path)
            save_fpdns(parallel_day, parallel_path)
            # Compare decompressed payloads: gzip headers may embed
            # mtimes, the TSV content must not differ at all.
            with gzip.open(serial_path, "rb") as handle:
                serial_bytes = handle.read()
            with gzip.open(parallel_path, "rb") as handle:
                parallel_bytes = handle.read()
            assert parallel_bytes == serial_bytes


class TestShardPlanning:
    def test_workers_capped_by_servers(self):
        sharded = ShardedTraceSimulator(small_config(), n_workers=16)
        assert sharded.n_workers == 4

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardedTraceSimulator(small_config(), n_workers=0)

    def test_default_worker_count_bounds(self):
        assert 1 <= default_worker_count(4) <= 4
        assert default_worker_count(1) == 1

    def test_ground_truth_matches_serial(self):
        serial = TraceSimulator(small_config())
        sharded = ShardedTraceSimulator(small_config())
        assert sharded.disposable_truth() == serial.disposable_truth()


def _live_sim_segments():
    """Live shared-memory segments published by the sharded simulator."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return [path.name for path in root.iterdir()
            if path.name.startswith("repro-sim-")]


class TestColumnMerge:
    """The tentpole contract: the column-level merge reproduces the
    serial digest *column for column*, not just entry for entry."""

    @pytest.mark.parametrize("ipc", [
        pytest.param("shm", marks=needs_shm), "spill"])
    def test_transports_byte_identical(self, serial_run, ipc):
        serial_datasets, _ = serial_run
        sharded = ShardedTraceSimulator(small_config(), n_workers=2,
                                        ipc=ipc)
        parallel_datasets = sharded.run_days(DATES, n_events=N_EVENTS)
        assert sharded.last_ipc is not None
        assert sharded.last_ipc.mode == ipc
        assert sharded.last_ipc.segments == 2
        assert sharded.last_ipc.payload_bytes > 0
        for serial_day, parallel_day in zip(serial_datasets,
                                            parallel_datasets):
            assert parallel_day.below == serial_day.below
            assert parallel_day.above == serial_day.above

    def test_merged_digest_equals_serial_digest(self, serial_run):
        serial_datasets, _ = serial_run
        sharded = ShardedTraceSimulator(small_config(), n_workers=4)
        parallel_datasets = sharded.run_days(DATES, n_events=N_EVENTS)
        for serial_day, parallel_day in zip(serial_datasets,
                                            parallel_datasets):
            reference = build_day_digest(serial_day)
            merged = parallel_day.day_digest()
            assert merged.names.names == reference.names.names
            assert merged.rr_keys == reference.rr_keys
            np.testing.assert_array_equal(merged.rr_name_ids,
                                          reference.rr_name_ids)
            for stream in ("below", "above"):
                for field in STREAM_FIELDS:
                    np.testing.assert_array_equal(
                        getattr(getattr(merged, stream), field),
                        getattr(getattr(reference, stream), field),
                        err_msg=f"{stream}.{field}")

    def test_lazy_content_key_equals_serial(self, serial_run):
        serial_datasets, _ = serial_run
        sharded = ShardedTraceSimulator(small_config(), n_workers=2)
        parallel_datasets = sharded.run_days(DATES, n_events=N_EVENTS)
        for serial_day, parallel_day in zip(serial_datasets,
                                            parallel_datasets):
            assert (dataset_content_key(parallel_day)
                    == dataset_content_key(serial_day))

    def test_inline_run_reports_no_ipc(self):
        sharded = ShardedTraceSimulator(small_config(), n_workers=1)
        sharded.run_days(DATES[:1], n_events=500)
        assert sharded.last_ipc is not None
        assert sharded.last_ipc.mode == "inline"
        assert sharded.last_ipc.payload_bytes == 0

    def test_rejects_unknown_ipc_mode(self):
        with pytest.raises(ValueError):
            ShardedTraceSimulator(small_config(), ipc="smoke-signals")


@needs_shm
class TestSegmentCleanup:
    """No shared-memory segment may survive a run — not on success, not
    when a worker dies, not when the parent-side merge raises."""

    def test_successful_run_leaves_no_segments(self):
        sharded = ShardedTraceSimulator(small_config(), n_workers=2,
                                        ipc="shm")
        sharded.run_days(DATES[:1], n_events=500)
        assert _live_sim_segments() == []

    def test_worker_failure_leaves_no_segments(self, monkeypatch):
        # Fork-pool workers inherit the patched module state, so the
        # raise happens inside the children, before they publish.
        import repro.traffic.parallel as parallel_module

        def explode(self, *args, **kwargs):
            raise RuntimeError("injected worker failure")

        monkeypatch.setattr(parallel_module.ShardColumnsBuilder,
                            "add_response", explode)
        sharded = ShardedTraceSimulator(small_config(), n_workers=2,
                                        ipc="shm")
        with pytest.raises(RuntimeError):
            sharded.run_days(DATES[:1], n_events=500)
        assert _live_sim_segments() == []

    def test_parent_merge_failure_leaves_no_segments(self, monkeypatch):
        # Workers publish successfully; the parent then dies merging.
        # Its finally block must still unlink every segment by name.
        import repro.traffic.parallel as parallel_module

        def explode(*args, **kwargs):
            raise RuntimeError("injected merge failure")

        monkeypatch.setattr(parallel_module, "merge_shard_columns",
                            explode)
        sharded = ShardedTraceSimulator(small_config(), n_workers=2,
                                        ipc="shm")
        with pytest.raises(RuntimeError):
            sharded.run_days(DATES[:1], n_events=500)
        assert _live_sim_segments() == []


class TestStatsGuard:
    def test_stats_require_a_run(self):
        sharded = ShardedTraceSimulator(small_config(), n_workers=2)
        with pytest.raises(RuntimeError):
            sharded.total_stats()

    def test_single_date_run(self):
        date = MeasurementDate("2011-06-01", 151, 0.4)
        sharded = ShardedTraceSimulator(small_config(), n_workers=2)
        datasets = sharded.run_days([date], n_events=1_000)
        assert len(datasets) == 1
        assert datasets[0].day == "2011-06-01"
        assert datasets[0].below_volume() > 0
