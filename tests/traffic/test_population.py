"""Tests for the synthetic zone population."""

import pytest

from repro.core.names import label_count
from repro.dns.message import Question, RRType
from repro.traffic.population import PopulationConfig, ZonePopulation


@pytest.fixture(scope="module")
def population():
    return ZonePopulation(PopulationConfig(
        n_popular_sites=30, n_longtail_sites=200, n_extra_disposable=9,
        cdn_objects=500))


class TestConstruction:
    def test_sizes(self, population):
        assert len(population.popular_sites) == 30
        assert len(population.longtail_sites) == 200
        # 10 named services + 9 extras.
        assert len(population.services) == 19

    def test_popular_sites_have_enough_subdomains(self, population):
        for site in population.popular_sites:
            assert len(site.hostnames) >= 6

    def test_longtail_sites_unique(self, population):
        assert len(set(population.longtail_sites)) == 200

    def test_deterministic_given_seed(self):
        a = ZonePopulation(PopulationConfig(n_popular_sites=10,
                                            n_longtail_sites=20,
                                            n_extra_disposable=3))
        b = ZonePopulation(PopulationConfig(n_popular_sites=10,
                                            n_longtail_sites=20,
                                            n_extra_disposable=3))
        assert [s.zone for s in a.popular_sites] == [s.zone
                                                     for s in b.popular_sites]
        assert a.longtail_sites == b.longtail_sites

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            PopulationConfig(n_popular_sites=0)
        with pytest.raises(ValueError):
            PopulationConfig(subdomains_per_site=(5, 2))


class TestServices:
    def test_weight_growth(self, population):
        google = next(s for s in population.services
                      if s.name == "google-ipv6-exp")
        assert google.weight_at(1.0) > google.weight_at(0.0)

    def test_flat_service_constant(self, population):
        mcafee = next(s for s in population.services
                      if s.name == "mcafee-gti")
        assert mcafee.weight_at(0.0) == mcafee.weight_at(1.0)

    def test_depths_match_generated_names(self, population, rng):
        for service in population.services[:5]:
            name = service.generator.generate(rng)
            assert label_count(name) == service.depth

    def test_disposable_zone_for(self, population, rng):
        mcafee = next(s for s in population.services
                      if s.name == "mcafee-gti")
        name = mcafee.generator.generate(rng)
        assert population.disposable_zone_for(name) is mcafee
        assert population.disposable_zone_for("www.bank.com") is None


class TestAuthorityMaterialisation:
    @pytest.fixture(scope="class")
    def authority(self, population):
        return population.build_authority()

    def test_popular_hostnames_resolve(self, population, authority):
        site = population.popular_sites[0]
        response = authority.resolve(Question(site.hostnames[0]))
        assert response.is_success
        assert response.answers[0].ttl == site.ttl

    def test_longtail_resolves(self, population, authority):
        zone = population.longtail_sites[0]
        assert authority.resolve(Question("www." + zone)).is_success

    def test_every_service_name_resolves(self, population, authority, rng):
        for service in population.services:
            name = service.generator.generate(rng)
            response = authority.resolve(Question(name))
            assert response.is_success, service.name
            assert len(response.answers) == service.answer_count

    def test_cdn_names_resolve(self, population, authority, rng):
        name = population.cdn_generators[0].generate(rng)
        assert authority.resolve(Question(name)).is_success

    def test_google_measurement_zone_wins_over_google(self, population,
                                                      authority, rng):
        service = next(s for s in population.services
                       if s.name == "google-ipv6-exp")
        name = service.generator.generate(rng)
        zone = authority.find_zone(name)
        assert zone.apex == population.GOOGLE_MEASUREMENT_ZONE

    def test_cname_into_cdn(self, population, authority):
        site = population.popular_sites[0]
        response = authority.resolve(
            Question(f"cdnlink.{site.zone}", RRType.CNAME))
        assert response.is_success
        assert "akamai" in response.answers[0].rdata

    def test_unregistered_nxdomain(self, authority):
        assert authority.resolve(Question("xx.not-registered.org")).is_nxdomain


class TestGroundTruth:
    def test_truth_covers_all_services(self, population):
        truth = population.disposable_truth()
        assert len(truth) == len(population.services)

    def test_labeled_zones_two_classes(self, population):
        labels = population.labeled_zones()
        positives = [l for l in labels if l.disposable]
        negatives = [l for l in labels if not l.disposable]
        assert len(positives) == len(population.services)
        assert len(negatives) == len(population.popular_sites)

    def test_labels_without_extras(self, population):
        labels = population.labeled_zones(include_extras=False)
        positives = [l for l in labels if l.disposable]
        assert len(positives) == 10  # only the named services
