"""Property-based tests for the traffic substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.names import is_subdomain, label_count
from repro.traffic.diurnal import SECONDS_PER_DAY, DiurnalProfile
from repro.traffic.generators import (AvHashNameGenerator,
                                      DnsblNameGenerator,
                                      MeasurementNameGenerator,
                                      TelemetryNameGenerator,
                                      TrackingNameGenerator)
from repro.traffic.zipf import ZipfSampler

GENERATOR_FACTORIES = [
    lambda apex: TelemetryNameGenerator(apex),
    lambda apex: AvHashNameGenerator(apex),
    lambda apex: MeasurementNameGenerator(apex),
    lambda apex: DnsblNameGenerator(apex),
    lambda apex: TrackingNameGenerator(apex),
]

apex_st = st.sampled_from(["svc.example.com", "d.tracker.net",
                           "deep.zone.probe.org"])
seed_st = st.integers(min_value=0, max_value=2**32 - 1)


class TestGeneratorProperties:
    @settings(max_examples=40, deadline=None)
    @given(apex=apex_st, seed=seed_st,
           factory_index=st.integers(min_value=0,
                                     max_value=len(GENERATOR_FACTORIES) - 1))
    def test_names_always_under_apex_at_fixed_depth(self, apex, seed,
                                                    factory_index):
        generator = GENERATOR_FACTORIES[factory_index](apex)
        rng = np.random.default_rng(seed)
        expected_depth = generator.depth
        for _ in range(5):
            name = generator.generate(rng)
            assert is_subdomain(name, apex)
            assert name != apex
            assert label_count(name) == expected_depth

    @settings(max_examples=20, deadline=None)
    @given(seed=seed_st,
           reuse=st.floats(min_value=0.0, max_value=0.9,
                           allow_nan=False))
    def test_reuse_never_exceeds_window(self, seed, reuse):
        generator = TrackingNameGenerator("t.net",
                                          reuse_probability=reuse,
                                          reuse_window=8)
        rng = np.random.default_rng(seed)
        names = [generator.generate(rng) for _ in range(100)]
        # Reused names must come from the recent window: every name
        # repeats only within 8 + small slack positions of a prior use.
        last_seen = {}
        for i, name in enumerate(names):
            if name in last_seen:
                # Window of distinct fresh names between uses <= 8.
                fresh_between = len({n for n in names[last_seen[name]:i]
                                     if names.index(n) > last_seen[name]})
                assert fresh_between <= 16
            last_seen[name] = i


class TestZipfProperties:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=1, max_value=200),
           exponent=st.floats(min_value=0.0, max_value=2.5,
                              allow_nan=False),
           seed=seed_st)
    def test_probabilities_normalised_and_monotone(self, n, exponent, seed):
        sampler = ZipfSampler(n, exponent)
        probabilities = [sampler.probability(rank) for rank in range(n)]
        assert sum(probabilities) == pytest.approx(1.0)
        # Non-increasing in rank.
        assert all(earlier >= later - 1e-12
                   for earlier, later in zip(probabilities,
                                             probabilities[1:]))

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=100), seed=seed_st)
    def test_samples_within_range(self, n, seed):
        sampler = ZipfSampler(n, 1.0)
        rng = np.random.default_rng(seed)
        samples = sampler.sample(rng, 200)
        assert samples.min() >= 0
        assert samples.max() < n


class TestDiurnalProperties:
    @settings(max_examples=25, deadline=None)
    @given(base=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           trough=st.floats(min_value=0.0, max_value=48.0,
                            allow_nan=False),
           seed=seed_st)
    def test_timestamps_sorted_and_bounded(self, base, trough, seed):
        profile = DiurnalProfile(base=base, trough_hour=trough)
        rng = np.random.default_rng(seed)
        ts = profile.sample_timestamps(rng, 300)
        assert np.all(np.diff(ts) >= 0)
        assert ts.min() >= 0
        assert ts.max() < SECONDS_PER_DAY

    @settings(max_examples=25, deadline=None)
    @given(base=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
           hour=st.floats(min_value=0.0, max_value=24.0, allow_nan=False))
    def test_intensity_bounded(self, base, hour):
        profile = DiurnalProfile(base=base)
        intensity = profile.intensity(hour)
        assert base - 1e-9 <= intensity <= 1.0 + 1e-9
