"""The micro-batching request queue."""

from __future__ import annotations

import threading
from typing import List, Sequence

import pytest

from repro.service.batching import MicroBatcher
from repro.service.engine import Verdict


def fake_verdict(qname: str) -> Verdict:
    return Verdict(qname=qname, zone="", depth=0, reason="invalid-name",
                   disposable=False, score=0.0, probability=0.0,
                   group_size=0)


def fake_classify(qnames: Sequence[str]) -> List[Verdict]:
    return [fake_verdict(qname) for qname in qnames]


@pytest.fixture
def batcher():
    instance = MicroBatcher(fake_classify, max_batch=8, window_s=0.005)
    yield instance
    instance.close()


class TestSubmit:
    def test_single_request_round_trip(self, batcher):
        verdicts = batcher.submit(["a.example.com", "b.example.com"])
        assert [v.qname for v in verdicts] == ["a.example.com",
                                               "b.example.com"]
        assert batcher.requests == 1
        assert batcher.names == 2
        assert batcher.batches >= 1

    def test_concurrent_requests_each_get_their_slice(self, batcher):
        results: dict = {}
        errors: List[BaseException] = []

        def worker(tag: str) -> None:
            try:
                results[tag] = batcher.submit([f"{tag}-{i}.example.com"
                                               for i in range(3)])
            except BaseException as exc:  # pragma: no cover - test guard
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for tag, verdicts in results.items():
            assert [v.qname for v in verdicts] == \
                [f"{tag}-{i}.example.com" for i in range(3)]
        assert batcher.requests == 6
        assert batcher.names == 18

    def test_zero_window_still_serves(self):
        batcher = MicroBatcher(fake_classify, window_s=0.0)
        try:
            assert len(batcher.submit(["x.example.com"])) == 1
        finally:
            batcher.close()


class TestErrorPropagation:
    def test_classify_exception_reaches_every_caller(self):
        def broken(qnames: Sequence[str]) -> List[Verdict]:
            raise RuntimeError("model on fire")

        batcher = MicroBatcher(broken, window_s=0.0)
        try:
            with pytest.raises(RuntimeError, match="model on fire"):
                batcher.submit(["a.example.com"])
            # The worker survives a failing batch.
            with pytest.raises(RuntimeError, match="model on fire"):
                batcher.submit(["b.example.com"])
        finally:
            batcher.close()

    def test_length_mismatch_is_an_error(self):
        def short(qnames: Sequence[str]) -> List[Verdict]:
            return []

        batcher = MicroBatcher(short, window_s=0.0)
        try:
            with pytest.raises(RuntimeError, match="0 verdicts"):
                batcher.submit(["a.example.com"])
        finally:
            batcher.close()


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(fake_classify)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(["a.example.com"])

    def test_close_is_idempotent(self):
        batcher = MicroBatcher(fake_classify)
        batcher.close()
        batcher.close()

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"window_s": -0.001},
    ])
    def test_constructor_validation(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatcher(fake_classify, **kwargs)

    def test_stats_keys(self, batcher):
        batcher.submit(["a.example.com"])
        stats = batcher.stats()
        assert set(stats) == {"batches", "requests", "names",
                              "coalesced_requests", "largest_batch"}
        assert stats["largest_batch"] >= 1
