"""The batched classification engine against its per-name oracle."""

from __future__ import annotations

import pytest

from repro.service.engine import (ClassificationEngine, EngineConfig,
                                  VerdictCache, _GroupVerdict)

ODD_QNAMES = [
    "",                          # invalid: empty
    "bad..name",                 # invalid: empty label
    "-x" * 200 + ".example.com",  # invalid: oversized
    "co.uk",                     # an effective TLD: no registrable parent
    "example.com",               # its own registrable domain (apex)
    "WWW.Example.COM.",          # normalization required
    "a.b.never-seen-zone-qq.com",  # zone absent from the mining tree
]


class TestBatchOracleEquality:
    def test_batch_equals_oracle_on_replayed_traffic(self, tiny_engine,
                                                     tiny_stream):
        oracle = [tiny_engine.classify_one(q) for q in tiny_stream]
        assert tiny_engine.classify_batch(tiny_stream) == oracle

    def test_batch_equals_oracle_warm(self, tiny_engine, tiny_stream):
        oracle = [tiny_engine.classify_one(q) for q in tiny_stream]
        tiny_engine.classify_batch(tiny_stream)      # populate caches
        assert tiny_engine.classify_batch(tiny_stream) == oracle

    def test_batch_equals_oracle_on_odd_names(self, tiny_engine):
        oracle = [tiny_engine.classify_one(q) for q in ODD_QNAMES]
        assert tiny_engine.classify_batch(ODD_QNAMES) == oracle

    def test_batch_size_does_not_change_verdicts(self, tiny_engine,
                                                 tiny_stream):
        whole = tiny_engine.classify_batch(tiny_stream)
        tiny_engine.clear_caches()
        sliced = []
        for start in range(0, len(tiny_stream), 37):
            sliced.extend(
                tiny_engine.classify_batch(tiny_stream[start:start + 37]))
        assert sliced == whole


class TestVerdictReasons:
    @pytest.mark.parametrize("qname, reason", [
        ("", "invalid-name"),
        ("bad..name", "invalid-name"),
        ("co.uk", "no-zone"),
        ("example.com", "zone-apex"),
        ("a.b.never-seen-zone-qq.com", "unknown-group"),
    ])
    def test_terminal_reasons(self, tiny_engine, qname, reason):
        verdict = tiny_engine.classify_one(qname)
        assert verdict.reason == reason
        assert not verdict.disposable
        assert verdict.probability == 0.0

    def test_classified_reason_on_real_traffic(self, tiny_engine,
                                               tiny_stream):
        reasons = {tiny_engine.classify_one(q).reason
                   for q in tiny_stream}
        assert "classified" in reasons

    def test_normalization_in_verdict(self, tiny_engine):
        verdict = tiny_engine.classify_one("WWW.Example.COM.")
        assert verdict.qname == "www.example.com"

    def test_to_json_round_trips_fields(self, tiny_engine):
        verdict = tiny_engine.classify_one("example.com")
        document = verdict.to_json()
        assert document["qname"] == "example.com"
        assert document["reason"] == "zone-apex"
        assert set(document) == {"qname", "zone", "depth", "reason",
                                 "disposable", "score", "probability",
                                 "group_size"}


class TestVerdictCache:
    def test_hit_miss_counters(self):
        cache = VerdictCache(capacity=2)
        entry = _GroupVerdict(reason="classified", disposable=True,
                              score=1.0, probability=0.9, group_size=5)
        assert cache.get(("a.com", 3)) is None
        cache.put(("a.com", 3), entry)
        assert cache.get(("a.com", 3)) is entry
        assert cache.stats() == {"size": 1, "capacity": 2,
                                 "hits": 1, "misses": 1, "evictions": 0}

    def test_lru_eviction_order(self):
        cache = VerdictCache(capacity=2)
        entry = _GroupVerdict(reason="classified", disposable=False,
                              score=0.0, probability=0.0, group_size=5)
        cache.put(("a.com", 3), entry)
        cache.put(("b.com", 3), entry)
        cache.get(("a.com", 3))          # a is now most recent
        cache.put(("c.com", 3), entry)   # evicts b
        assert cache.get(("b.com", 3)) is None
        assert cache.get(("a.com", 3)) is entry
        assert cache.evictions == 1

    def test_clear_keeps_counters(self):
        cache = VerdictCache(capacity=2)
        entry = _GroupVerdict(reason="classified", disposable=False,
                              score=0.0, probability=0.0, group_size=5)
        cache.put(("a.com", 3), entry)
        cache.get(("a.com", 3))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            VerdictCache(capacity=0)


class TestEngineCaching:
    def test_tiny_cache_still_matches_oracle(self, tiny_digest,
                                             tiny_compiled_model,
                                             tiny_stream):
        engine = ClassificationEngine.from_digest(
            tiny_digest, tiny_compiled_model,
            config=EngineConfig(cache_size=1))
        oracle = [engine.classify_one(q) for q in tiny_stream]
        # A 1-entry LRU thrashes but never changes answers; the verdict
        # memo must be defeated to exercise the cache path repeatedly.
        for _ in range(2):
            engine._verdict_memo.clear()
            assert engine.classify_batch(tiny_stream) == oracle
        assert engine.cache.evictions > 0

    def test_warm_pass_extracts_nothing(self, tiny_engine, tiny_stream):
        tiny_engine.classify_batch(tiny_stream)
        extracted = tiny_engine.groups_extracted
        misses = tiny_engine.cache.misses
        tiny_engine.classify_batch(tiny_stream)
        assert tiny_engine.groups_extracted == extracted
        assert tiny_engine.cache.misses == misses

    def test_clear_caches_restores_cold_start(self, tiny_engine,
                                              tiny_stream):
        oracle = [tiny_engine.classify_one(q) for q in tiny_stream]
        tiny_engine.classify_batch(tiny_stream)
        tiny_engine.clear_caches()
        assert len(tiny_engine.cache) == 0
        misses = tiny_engine.cache.misses
        assert tiny_engine.classify_batch(tiny_stream) == oracle
        assert tiny_engine.cache.misses > misses   # genuinely cold again

    def test_verdict_memo_stays_bounded(self, tiny_engine, tiny_stream):
        tiny_engine._verdict_memo_limit = 16
        for start in range(0, len(tiny_stream), 50):
            tiny_engine.classify_batch(tiny_stream[start:start + 50])
        assert len(tiny_engine._verdict_memo) <= 16 + 50


class TestCountersAndConfig:
    def test_engine_counters(self, tiny_engine, tiny_stream):
        tiny_engine.classify_one(tiny_stream[0])
        tiny_engine.classify_batch(tiny_stream[:10])
        stats = tiny_engine.stats()
        assert stats["single_calls"] == 1
        assert stats["batch_calls"] == 1
        assert stats["names_classified"] == 11

    def test_disposable_counter_counts_served_verdicts(self, tiny_engine,
                                                       tiny_stream):
        verdicts = tiny_engine.classify_batch(tiny_stream)
        expected = sum(1 for verdict in verdicts if verdict.disposable)
        assert tiny_engine.disposable_verdicts == expected
        # Serving the same traffic again doubles the count: the metric
        # tracks verdicts *served*, memo hits included.
        tiny_engine.classify_batch(tiny_stream)
        assert tiny_engine.disposable_verdicts == 2 * expected

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0}, {"threshold": 1.5},
        {"min_group_size": 0}, {"cache_size": 0},
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)
