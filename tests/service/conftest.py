"""Service-layer fixtures: a tiny serving engine shared by the suite.

The expensive artifacts (simulated day → digest, trained + compiled
model) are session-scoped; the engine itself is function-scoped
because tests mutate its caches and counters.
"""

from __future__ import annotations

import pytest

from repro.core.classifier import LadTreeClassifier
from repro.core.classifier.compiled import compile_lad_tree
from repro.core.features import FeatureExtractor
from repro.core.hitrate import hit_rates_from_digest
from repro.core.interning import build_day_digest
from repro.core.labeling import build_training_set
from repro.core.ranking import build_tree_from_digest
from repro.service.engine import ClassificationEngine


@pytest.fixture(scope="session")
def tiny_digest(tiny_day):
    return build_day_digest(tiny_day)


@pytest.fixture(scope="session")
def tiny_compiled_model(tiny_simulator, tiny_digest):
    tree = build_tree_from_digest(tiny_digest)
    extractor = FeatureExtractor(tree, hit_rates_from_digest(tiny_digest))
    training = build_training_set(tiny_simulator.labeled_zones(),
                                  tree, extractor)
    return compile_lad_tree(LadTreeClassifier().fit(training.X, training.y))


@pytest.fixture
def tiny_engine(tiny_digest, tiny_compiled_model):
    return ClassificationEngine.from_digest(tiny_digest,
                                            tiny_compiled_model)


@pytest.fixture(scope="session")
def tiny_stream(tiny_digest):
    """The day's first below-stream queries, replayed in arrival order
    (hot names repeat; NXDOMAIN, apex and invalid-ish shapes appear)."""
    table = tiny_digest.names
    return [table.name(int(nid))
            for nid in tiny_digest.below.name_ids[:600]]
