"""End-to-end daemon test: real HTTP against an ephemeral port."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.http import MAX_BATCH_NAMES, make_server


@pytest.fixture
def server(tiny_engine):
    instance = make_server(tiny_engine, port=0, window_s=0.0)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.close()
    thread.join(timeout=5)


def _url(server, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post(server, path: str, payload: object):
    request = urllib.request.Request(
        _url(server, path), data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _get(server, path: str):
    with urllib.request.urlopen(_url(server, path),
                                timeout=10) as response:
        return response.status, response.read().decode("utf-8")


class TestClassify:
    def test_single_qname_matches_oracle(self, server, tiny_stream):
        qname = tiny_stream[0]
        oracle = server.engine.classify_one(qname).to_json()
        status, document = _post(server, "/classify", {"qname": qname})
        assert status == 200
        assert document == oracle

    def test_batch_matches_oracle(self, server, tiny_stream):
        qnames = tiny_stream[:25]
        oracle = [server.engine.classify_one(q).to_json() for q in qnames]
        status, document = _post(server, "/classify", {"qnames": qnames})
        assert status == 200
        assert document["verdicts"] == oracle

    def test_invalid_qname_is_a_verdict_not_an_error(self, server):
        status, document = _post(server, "/classify",
                                 {"qname": "bad..name"})
        assert status == 200
        assert document["reason"] == "invalid-name"


class TestMetricsAndHealth:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert json.loads(body) == {"status": "ok"}

    def test_metrics_exposition(self, server, tiny_stream):
        _post(server, "/classify", {"qnames": tiny_stream[:10]})
        status, body = _get(server, "/metrics")
        assert status == 200
        assert 'repro_serve_requests_total{endpoint="/classify"} 1' in body
        assert "repro_serve_engine_names_classified_total 10" in body
        assert "repro_serve_verdict_cache_size" in body
        assert "repro_serve_batcher_batches_total" in body
        assert "repro_serve_request_errors_total 0" in body


class TestBadRequests:
    def _status_of(self, call):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            call()
        return excinfo.value.code, json.loads(excinfo.value.read())

    def test_invalid_json(self, server):
        request = urllib.request.Request(
            _url(server, "/classify"), data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        code, document = self._status_of(
            lambda: urllib.request.urlopen(request, timeout=10))
        assert code == 400
        assert "invalid JSON" in document["error"]

    def test_missing_body(self, server):
        request = urllib.request.Request(
            _url(server, "/classify"), data=b"", method="POST")
        code, document = self._status_of(
            lambda: urllib.request.urlopen(request, timeout=10))
        assert code == 400
        assert "missing request body" in document["error"]

    def test_both_qname_and_qnames(self, server):
        code, document = self._status_of(
            lambda: _post(server, "/classify",
                          {"qname": "a.com", "qnames": ["b.com"]}))
        assert code == 400
        assert "exactly one" in document["error"]

    def test_non_string_qname(self, server):
        code, _ = self._status_of(
            lambda: _post(server, "/classify", {"qname": 7}))
        assert code == 400

    def test_oversized_batch(self, server):
        qnames = ["x.example.com"] * (MAX_BATCH_NAMES + 1)
        code, document = self._status_of(
            lambda: _post(server, "/classify", {"qnames": qnames}))
        assert code == 400
        assert "batch exceeds" in document["error"]

    def test_unknown_paths_404(self, server):
        code, _ = self._status_of(lambda: _get(server, "/nope"))
        assert code == 404
        code, _ = self._status_of(
            lambda: _post(server, "/nope", {"qname": "a.com"}))
        assert code == 404

    def test_errors_are_counted(self, server):
        self._status_of(lambda: _get(server, "/nope"))
        _, body = _get(server, "/metrics")
        assert "repro_serve_request_errors_total 1" in body
