"""Shared fixtures.

Expensive artifacts — a simulated day, the SMALL experiment context —
are session-scoped so the suite builds them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.context import SMALL, ExperimentContext
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


TINY_DATE = MeasurementDate("2011-11-10", 313, 0.85)


def tiny_simulator_config() -> SimulatorConfig:
    """A seconds-scale simulation for unit-level integration tests."""
    return SimulatorConfig(
        n_servers=2,
        cache_capacity=3_000,
        population=PopulationConfig(
            n_popular_sites=40, n_longtail_sites=400,
            n_extra_disposable=12, cdn_objects=1_500),
        workload=WorkloadConfig(events_per_day=6_000, n_clients=80))


@pytest.fixture(scope="session")
def tiny_simulator() -> TraceSimulator:
    return TraceSimulator(tiny_simulator_config())


@pytest.fixture(scope="session")
def tiny_day(tiny_simulator):
    """One simulated fpDNS day at tiny scale."""
    return tiny_simulator.run_day(TINY_DATE)


@pytest.fixture(scope="session")
def small_context() -> ExperimentContext:
    """The SMALL-profile experiment context, shared across the suite."""
    return ExperimentContext(SMALL)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
