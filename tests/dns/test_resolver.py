"""Tests for the recursive resolver and RDNS cluster."""

import pytest

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, Response, RRType
from repro.dns.resolver import RdnsCluster, RecursiveResolver
from repro.dns.zone import StaticZone, WildcardZone


def make_authority():
    h = AuthoritativeHierarchy()
    z = StaticZone("site.com")
    z.add_name("www.site.com", RRType.A, 300)
    h.add_zone(z)
    h.add_zone(WildcardZone("d.tracker.net", ttl=60))
    return h


class RecordingTap:
    def __init__(self):
        self.below = []
        self.above = []

    def observe_below(self, timestamp, client_id, response):
        self.below.append((timestamp, client_id, response))

    def observe_above(self, timestamp, response):
        self.above.append((timestamp, response))


class TestRecursiveResolver:
    def test_miss_goes_upstream_then_hit_is_cached(self):
        resolver = RecursiveResolver(make_authority(), LruDnsCache(10))
        first = resolver.resolve(Question("www.site.com"), 0.0)
        assert not first.cache_hit
        second = resolver.resolve(Question("www.site.com"), 1.0)
        assert second.cache_hit
        assert resolver.upstream_queries == 1
        assert resolver.answered_queries == 2

    def test_nxdomain_not_cached_without_negative_ttl(self):
        resolver = RecursiveResolver(make_authority(), LruDnsCache(10))
        resolver.resolve(Question("missing.site.com"), 0.0)
        second = resolver.resolve(Question("missing.site.com"), 1.0)
        assert not second.cache_hit
        assert resolver.upstream_queries == 2

    def test_negative_cache_hit_is_nxdomain(self):
        resolver = RecursiveResolver(make_authority(),
                                     LruDnsCache(10, negative_ttl=60))
        resolver.resolve(Question("missing.site.com"), 0.0)
        second = resolver.resolve(Question("missing.site.com"), 1.0)
        assert second.cache_hit
        assert second.response.is_nxdomain

    def test_ttl_expiry_causes_upstream(self):
        resolver = RecursiveResolver(make_authority(), LruDnsCache(10))
        resolver.resolve(Question("www.site.com"), 0.0)
        late = resolver.resolve(Question("www.site.com"), 1000.0)
        assert not late.cache_hit
        assert resolver.upstream_queries == 2


class TestRdnsCluster:
    def test_client_pinning_stable(self):
        cluster = RdnsCluster(make_authority(), n_servers=4)
        assert cluster.server_for(13) == cluster.server_for(13)
        assert cluster.server_for(13) == 13 % 4

    def test_independent_caches(self):
        """A record cached on one server is a miss on another — the
        reason the paper must treat the cluster as a black box."""
        cluster = RdnsCluster(make_authority(), n_servers=2)
        q = Question("www.site.com")
        first = cluster.query(0, q, 0.0)   # server 0
        second = cluster.query(1, q, 1.0)  # server 1
        assert not first.cache_hit
        assert not second.cache_hit
        third = cluster.query(2, q, 2.0)   # server 0 again
        assert third.cache_hit

    def test_tap_sees_below_always_above_only_on_miss(self):
        tap = RecordingTap()
        cluster = RdnsCluster(make_authority(), n_servers=1, taps=[tap])
        q = Question("www.site.com")
        cluster.query(0, q, 0.0)
        cluster.query(0, q, 1.0)
        assert len(tap.below) == 2
        assert len(tap.above) == 1

    def test_tap_sees_nxdomain_above_every_time(self):
        tap = RecordingTap()
        cluster = RdnsCluster(make_authority(), n_servers=1, taps=[tap])
        q = Question("no.such.org")
        cluster.query(0, q, 0.0)
        cluster.query(0, q, 1.0)
        assert len(tap.above) == 2
        assert all(r.is_nxdomain for _, r in tap.above)

    def test_add_tap_later(self):
        cluster = RdnsCluster(make_authority(), n_servers=1)
        tap = RecordingTap()
        cluster.add_tap(tap)
        cluster.query(0, Question("www.site.com"), 0.0)
        assert tap.below

    def test_total_stats(self):
        cluster = RdnsCluster(make_authority(), n_servers=2)
        q = Question("www.site.com")
        cluster.query(0, q, 0.0)
        cluster.query(0, q, 1.0)
        cluster.query(1, q, 2.0)
        stats = cluster.total_stats()
        assert stats["answered_queries"] == 3
        assert stats["hits"] == 1
        assert stats["upstream_queries"] == 2

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            RdnsCluster(make_authority(), n_servers=0)

    def test_server_index_reported(self):
        cluster = RdnsCluster(make_authority(), n_servers=3)
        result = cluster.query(5, Question("www.site.com"), 0.0)
        assert result.server_index == 5 % 3
