"""Tests for authoritative zone types."""

import pytest

from repro.dns.message import Question, RCode, ResourceRecord, RRType
from repro.dns.zone import (CallbackZone, StaticZone, WildcardZone,
                            synthesize_ip)


class TestSynthesizeIp:
    def test_deterministic(self):
        assert synthesize_ip("a.com", RRType.A) == synthesize_ip("a.com",
                                                                 RRType.A)

    def test_differs_by_name(self):
        assert synthesize_ip("a.com", RRType.A) != synthesize_ip("b.com",
                                                                 RRType.A)

    def test_differs_by_salt(self):
        assert synthesize_ip("a.com", RRType.A) != synthesize_ip(
            "a.com", RRType.A, salt="x")

    def test_ipv4_shape(self):
        octets = synthesize_ip("a.com", RRType.A).split(".")
        assert len(octets) == 4
        assert all(0 <= int(o) <= 255 for o in octets)

    def test_ipv6_shape(self):
        groups = synthesize_ip("a.com", RRType.AAAA).split(":")
        assert len(groups) == 8


class TestStaticZone:
    @pytest.fixture
    def zone(self):
        z = StaticZone("example.com")
        z.add_name("www.example.com", RRType.A, 300)
        z.add_name("www.example.com", RRType.AAAA, 300)
        return z

    def test_answers_known_name(self, zone):
        r = zone.answer(Question("www.example.com"))
        assert r.is_success
        assert r.answers[0].rtype is RRType.A

    def test_nodata_for_missing_type(self, zone):
        z = StaticZone("example.com")
        z.add_name("www.example.com", RRType.A, 300)
        r = z.answer(Question("www.example.com", RRType.AAAA))
        assert r.rcode is RCode.NOERROR
        assert r.answers == []

    def test_nxdomain_for_unknown_name(self, zone):
        r = zone.answer(Question("missing.example.com"))
        assert r.is_nxdomain

    def test_rejects_out_of_bailiwick_record(self, zone):
        with pytest.raises(ValueError):
            zone.add_record(ResourceRecord("other.org", RRType.A, 300, "x"))

    def test_covers(self, zone):
        assert zone.covers("deep.www.example.com")
        assert not zone.covers("example.org")

    def test_names_and_count(self, zone):
        assert zone.names() == ["www.example.com"]
        assert zone.record_count == 2

    def test_explicit_rdata(self):
        z = StaticZone("example.com")
        rr = z.add_name("cdn.example.com", RRType.CNAME, 60,
                        rdata="e1.g0.akamai.net")
        assert rr.rdata == "e1.g0.akamai.net"

    def test_multiple_records_same_name_type(self):
        z = StaticZone("example.com")
        z.add_name("www.example.com", RRType.A, 300, rdata="1.1.1.1")
        z.add_name("www.example.com", RRType.A, 300, rdata="2.2.2.2")
        r = z.answer(Question("www.example.com"))
        assert len(r.answers) == 2


class TestWildcardZone:
    def test_answers_any_child(self):
        z = WildcardZone("avqs.mcafee.com", ttl=300)
        r = z.answer(Question("abc123xyz.avqs.mcafee.com"))
        assert r.is_success
        assert r.answers[0].ttl == 300

    def test_per_name_rdata_distinct(self):
        z = WildcardZone("z.com", rdata_mode="per-name")
        a = z.answer(Question("a.z.com")).answers[0].rdata
        b = z.answer(Question("b.z.com")).answers[0].rdata
        assert a != b

    def test_shared_rdata(self):
        z = WildcardZone("z.com", rdata_mode="shared")
        a = z.answer(Question("a.z.com")).answers[0].rdata
        b = z.answer(Question("b.z.com")).answers[0].rdata
        assert a == b

    def test_apex_resolves(self):
        z = WildcardZone("z.com")
        assert z.answer(Question("z.com")).is_success

    def test_wrong_type_is_nodata(self):
        z = WildcardZone("z.com", rtype=RRType.A)
        r = z.answer(Question("a.z.com", RRType.AAAA))
        assert r.rcode is RCode.NOERROR
        assert r.answers == []

    def test_min_depth_enforced(self):
        z = WildcardZone("z.com", min_depth=2)
        assert z.answer(Question("a.z.com")).is_nxdomain
        assert z.answer(Question("b.a.z.com")).is_success

    def test_answer_count(self):
        z = WildcardZone("z.com", answer_count=3)
        r = z.answer(Question("a.z.com"))
        assert len(r.answers) == 3
        assert len({rr.rdata for rr in r.answers}) == 3

    def test_rejects_bad_answer_count(self):
        with pytest.raises(ValueError):
            WildcardZone("z.com", answer_count=0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            WildcardZone("z.com", rdata_mode="bogus")

    def test_deterministic_answers(self):
        z1 = WildcardZone("z.com")
        z2 = WildcardZone("z.com")
        assert (z1.answer(Question("q.z.com")).answers[0].rdata
                == z2.answer(Question("q.z.com")).answers[0].rdata)


class TestCallbackZone:
    def test_delegates(self):
        def answer(question):
            from repro.dns.message import Response
            return Response(question, RCode.NXDOMAIN)

        z = CallbackZone("cb.com", answer)
        assert z.answer(Question("x.cb.com")).is_nxdomain
