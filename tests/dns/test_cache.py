"""Tests for the TTL-aware LRU cache — the Section VI-A substrate."""

import pytest

from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType


def response_for(name, ttl=300, rdata="1.1.1.1", rcode=RCode.NOERROR):
    q = Question(name)
    if rcode is RCode.NXDOMAIN:
        return Response(q, rcode, [])
    return Response(q, rcode, [ResourceRecord(name, RRType.A, ttl, rdata)])


class TestBasicCaching:
    def test_miss_then_hit(self):
        cache = LruDnsCache(10)
        q = Question("a.com")
        assert cache.lookup(q, 0.0) is None
        cache.insert(response_for("a.com"), 0.0)
        answers = cache.lookup(q, 1.0)
        assert answers is not None
        assert answers[0].rdata == "1.1.1.1"
        assert cache.stats.hits == 1
        assert cache.stats.misses_cold == 1

    def test_ttl_decay_in_answers(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com", ttl=300), 0.0)
        answers = cache.lookup(Question("a.com"), 100.0)
        assert answers[0].ttl == 200

    def test_expiry(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com", ttl=300), 0.0)
        assert cache.lookup(Question("a.com"), 301.0) is None
        assert cache.stats.misses_expired == 1

    def test_expires_exactly_at_ttl(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com", ttl=300), 0.0)
        assert cache.lookup(Question("a.com"), 300.0) is None

    def test_keyed_by_type(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com"), 0.0)
        assert cache.lookup(Question("a.com", RRType.AAAA), 0.0) is None

    def test_ttl_zero_not_cached(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com", ttl=0), 0.0)
        assert cache.lookup(Question("a.com"), 0.0) is None

    def test_min_ttl_floor(self):
        # RFC 1536-style implementations hold TTL-0 records anyway.
        cache = LruDnsCache(10, min_ttl=30)
        cache.insert(response_for("a.com", ttl=0), 0.0)
        assert cache.lookup(Question("a.com"), 10.0) is not None
        assert cache.lookup(Question("a.com"), 31.0) is None

    def test_empty_answers_not_cached(self):
        cache = LruDnsCache(10)
        cache.insert(Response(Question("a.com"), RCode.NOERROR, []), 0.0)
        assert len(cache) == 0


class TestLruEviction:
    def test_capacity_respected(self):
        cache = LruDnsCache(3)
        for i in range(5):
            cache.insert(response_for(f"n{i}.com"), float(i))
        assert len(cache) == 3
        assert cache.stats.evictions == 2

    def test_lru_order(self):
        cache = LruDnsCache(2)
        cache.insert(response_for("a.com"), 0.0)
        cache.insert(response_for("b.com"), 1.0)
        cache.lookup(Question("a.com"), 2.0)  # refresh a
        cache.insert(response_for("c.com"), 3.0)  # evicts b
        assert cache.lookup(Question("a.com"), 4.0) is not None
        assert cache.lookup(Question("b.com"), 4.0) is None

    def test_live_eviction_tracked(self):
        cache = LruDnsCache(1, eviction_log_limit=None)
        cache.insert(response_for("a.com", ttl=1000), 0.0)
        cache.insert(response_for("b.com", ttl=1000), 1.0)
        assert cache.stats.evicted_live == 1
        assert cache.live_eviction_log[0][1] == "a.com"

    def test_eviction_log_off_by_default(self):
        cache = LruDnsCache(1)
        cache.insert(response_for("a.com", ttl=1000), 0.0)
        cache.insert(response_for("b.com", ttl=1000), 1.0)
        assert cache.stats.evicted_live == 1
        assert cache.live_eviction_log == []

    def test_eviction_log_bounded(self):
        cache = LruDnsCache(1, eviction_log_limit=2)
        for i in range(5):
            cache.insert(response_for(f"n{i}.com", ttl=1000), float(i))
        assert cache.stats.evicted_live == 4
        log = cache.live_eviction_log
        assert len(log) == 2
        assert [victim[1] for victim in log] == ["n2.com", "n3.com"]

    def test_eviction_log_limit_validated(self):
        with pytest.raises(ValueError):
            LruDnsCache(1, eviction_log_limit=-1)

    def test_expired_eviction_not_live(self):
        cache = LruDnsCache(1)
        cache.insert(response_for("a.com", ttl=5), 0.0)
        cache.insert(response_for("b.com", ttl=1000), 100.0)
        assert cache.stats.evictions == 1
        assert cache.stats.evicted_live == 0

    def test_reinsert_same_key_no_eviction(self):
        cache = LruDnsCache(2)
        cache.insert(response_for("a.com"), 0.0)
        cache.insert(response_for("a.com", rdata="2.2.2.2"), 1.0)
        assert len(cache) == 1
        answers = cache.lookup(Question("a.com"), 2.0)
        assert answers[0].rdata == "2.2.2.2"

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LruDnsCache(0)

    def test_rejects_bad_min_ttl(self):
        with pytest.raises(ValueError):
            LruDnsCache(10, min_ttl=-1)


class TestNegativeCache:
    def test_disabled_by_default(self):
        # The monitored ISP's resolvers ignored RFC 2308.
        cache = LruDnsCache(10)
        cache.insert(response_for("nx.com", rcode=RCode.NXDOMAIN), 0.0)
        assert cache.lookup(Question("nx.com"), 1.0) is None

    def test_enabled_caches_nxdomain(self):
        cache = LruDnsCache(10, negative_ttl=60)
        cache.insert(response_for("nx.com", rcode=RCode.NXDOMAIN), 0.0)
        answers = cache.lookup(Question("nx.com"), 1.0)
        assert answers == []  # negative hit: empty answer list
        assert cache.stats.negative_hits == 1

    def test_negative_entry_expires(self):
        cache = LruDnsCache(10, negative_ttl=60)
        cache.insert(response_for("nx.com", rcode=RCode.NXDOMAIN), 0.0)
        assert cache.lookup(Question("nx.com"), 61.0) is None


class TestMaintenance:
    def test_contains_peek_does_not_mutate(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com"), 0.0)
        hits_before = cache.stats.hits
        assert cache.contains(Question("a.com"), 1.0)
        assert cache.stats.hits == hits_before

    def test_flush_expired(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com", ttl=10), 0.0)
        cache.insert(response_for("b.com", ttl=1000), 0.0)
        assert cache.flush_expired(100.0) == 1
        assert len(cache) == 1

    def test_utilization(self):
        cache = LruDnsCache(4)
        cache.insert(response_for("a.com"), 0.0)
        assert cache.utilization() == 0.25

    def test_stats_aggregates(self):
        cache = LruDnsCache(10)
        cache.insert(response_for("a.com"), 0.0)
        cache.lookup(Question("a.com"), 1.0)
        cache.lookup(Question("b.com"), 1.0)
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == pytest.approx(0.5)
