"""Tests for DNS message primitives."""

import pytest

from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType


class TestResourceRecord:
    def test_normalizes_name(self):
        rr = ResourceRecord("WWW.Example.COM.", RRType.A, 300, "1.2.3.4")
        assert rr.name == "www.example.com"

    def test_key_excludes_ttl(self):
        a = ResourceRecord("a.com", RRType.A, 300, "1.1.1.1")
        b = ResourceRecord("a.com", RRType.A, 60, "1.1.1.1")
        assert a.key() == b.key()

    def test_key_includes_rdata(self):
        a = ResourceRecord("a.com", RRType.A, 300, "1.1.1.1")
        b = ResourceRecord("a.com", RRType.A, 300, "2.2.2.2")
        assert a.key() != b.key()

    def test_key_includes_type(self):
        a = ResourceRecord("a.com", RRType.A, 300, "x")
        b = ResourceRecord("a.com", RRType.AAAA, 300, "x")
        assert a.key() != b.key()

    def test_with_ttl(self):
        rr = ResourceRecord("a.com", RRType.A, 300, "1.1.1.1")
        decayed = rr.with_ttl(120)
        assert decayed.ttl == 120
        assert decayed.key() == rr.key()

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.com", RRType.A, -1, "x")

    def test_frozen(self):
        rr = ResourceRecord("a.com", RRType.A, 300, "x")
        with pytest.raises(AttributeError):
            rr.ttl = 10  # type: ignore[misc]


class TestQuestion:
    def test_normalizes(self):
        q = Question("WWW.A.COM.")
        assert q.qname == "www.a.com"

    def test_default_type_is_a(self):
        assert Question("a.com").qtype is RRType.A

    def test_equality(self):
        assert Question("a.com") == Question("A.com")


class TestResponse:
    def test_success(self):
        q = Question("a.com")
        r = Response(q, RCode.NOERROR,
                     [ResourceRecord("a.com", RRType.A, 300, "1.1.1.1")])
        assert r.is_success
        assert not r.is_nxdomain

    def test_nxdomain(self):
        r = Response(Question("a.com"), RCode.NXDOMAIN)
        assert r.is_nxdomain
        assert not r.is_success

    def test_nodata_is_not_success(self):
        r = Response(Question("a.com"), RCode.NOERROR, [])
        assert not r.is_success

    def test_servfail(self):
        r = Response(Question("a.com"), RCode.SERVFAIL)
        assert not r.is_success
        assert not r.is_nxdomain
