"""Tests for DNS wire-format size accounting."""

import pytest

from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType
from repro.dns.wire import (MAX_LABEL_LENGTH, NameCompressor,
                            WireFormatError, encoded_name_size, rdata_size,
                            response_wire_size, rr_wire_size)


class TestEncodedNameSize:
    def test_rfc_example(self):
        # www(1+3) example(1+7) com(1+3) root(1) = 17
        assert encoded_name_size("www.example.com") == 17

    def test_single_label(self):
        assert encoded_name_size("com") == 5

    def test_rejects_oversized_label(self):
        with pytest.raises(WireFormatError):
            encoded_name_size("a" * (MAX_LABEL_LENGTH + 1) + ".com")

    def test_rejects_oversized_name(self):
        name = ".".join(["a" * 60] * 5)  # 5*61+1 = 306 > 255
        with pytest.raises(WireFormatError):
            encoded_name_size(name)

    def test_max_label_ok(self):
        assert encoded_name_size("a" * MAX_LABEL_LENGTH + ".com") == \
            1 + 63 + 1 + 3 + 1


class TestNameCompressor:
    def test_first_occurrence_full(self):
        compressor = NameCompressor()
        assert compressor.name_size("www.example.com") == 17

    def test_repeat_is_pointer(self):
        compressor = NameCompressor()
        compressor.name_size("www.example.com")
        assert compressor.name_size("www.example.com") == 2

    def test_shared_suffix_compressed(self):
        compressor = NameCompressor()
        compressor.name_size("www.example.com")
        # mail(1+4) + pointer(2) = 7
        assert compressor.name_size("mail.example.com") == 7

    def test_unrelated_name_full(self):
        compressor = NameCompressor()
        compressor.name_size("www.example.com")
        # other.org shares no suffix (org != com).
        assert compressor.name_size("other.org") == \
            encoded_name_size("other.org")

    def test_tld_suffix_reused(self):
        compressor = NameCompressor()
        compressor.name_size("a.com")
        assert compressor.name_size("b.com") == 1 + 1 + 2  # 'b' + pointer


class TestRrSizes:
    def test_rdata_sizes(self):
        a = ResourceRecord("a.com", RRType.A, 60, "1.2.3.4")
        aaaa = ResourceRecord("a.com", RRType.AAAA, 60, "::1")
        assert rdata_size(a) == 4
        assert rdata_size(aaaa) == 16

    def test_cname_rdata_is_encoded_target(self):
        cname = ResourceRecord("a.com", RRType.CNAME, 60, "target.net")
        assert rdata_size(cname) == encoded_name_size("target.net")

    def test_rr_wire_size(self):
        rr = ResourceRecord("www.example.com", RRType.A, 60, "1.2.3.4")
        assert rr_wire_size(rr) == 17 + 10 + 4

    def test_rrsig_typical(self):
        sig = ResourceRecord("a.com", RRType.RRSIG, 60, "x" * 40)
        assert rdata_size(sig) == 150


class TestResponseWireSize:
    def test_single_answer(self):
        q = Question("www.example.com")
        r = Response(q, RCode.NOERROR,
                     [ResourceRecord("www.example.com", RRType.A, 60,
                                     "1.2.3.4")])
        # header 12 + qname 17 + 4 + (pointer 2 + 10 + 4)
        assert response_wire_size(r) == 12 + 17 + 4 + 16

    def test_nxdomain_question_only(self):
        r = Response(Question("nx.example.com"), RCode.NXDOMAIN, [])
        assert response_wire_size(r) == 12 + encoded_name_size(
            "nx.example.com") + 4

    def test_compression_across_answers(self):
        """A two-record RRset shares the owner name via pointers."""
        q = Question("www.example.com")
        records = [ResourceRecord("www.example.com", RRType.A, 60,
                                  f"1.2.3.{i}") for i in range(2)]
        two = response_wire_size(Response(q, RCode.NOERROR, records))
        one = response_wire_size(Response(q, RCode.NOERROR, records[:1]))
        assert two - one == 2 + 10 + 4  # pointer + fixed + A rdata

    def test_disposable_names_cost_more(self):
        """Long algorithmic names dominate byte budgets — the paper's
        storage-growth driver."""
        short = Response(Question("www.a.com"), RCode.NOERROR,
                         [ResourceRecord("www.a.com", RRType.A, 60,
                                         "1.1.1.1")])
        long_name = ("0.0.0.0.1.0.0.4e."
                     "13cfus2drmdq3j8cafidezr8l6.avqs.mcafee.com")
        long = Response(Question(long_name), RCode.NOERROR,
                        [ResourceRecord(long_name, RRType.A, 60,
                                        "127.0.0.1")])
        assert response_wire_size(long) > 1.5 * response_wire_size(short)
