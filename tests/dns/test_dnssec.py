"""Tests for the DNSSEC cost-model substrate."""

import pytest

from repro.dns.dnssec import (RRSIG_BYTES, ValidatingResolverModel,
                              ZoneSigner)
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType


def answer(name, rdata="1.1.1.1", ttl=300):
    return Response(Question(name), RCode.NOERROR,
                    [ResourceRecord(name, RRType.A, ttl, rdata)])


class TestZoneSigner:
    def test_unsigned_zone_gets_no_signature(self):
        signer = ZoneSigner(signed_zones={"signed.com"})
        r = signer.sign_response(answer("www.other.com"))
        assert r.signatures == []

    def test_signed_zone_gets_rrsig(self):
        signer = ZoneSigner(signed_zones={"signed.com"})
        r = signer.sign_response(answer("www.signed.com"))
        assert len(r.signatures) == 1
        assert r.signatures[0].rtype is RRType.RRSIG
        assert r.signatures[0].name == "www.signed.com"

    def test_per_name_signatures_differ(self):
        signer = ZoneSigner(signed_zones={"signed.com"})
        a = signer.sign_response(answer("a.signed.com")).signatures[0]
        b = signer.sign_response(answer("b.signed.com")).signatures[0]
        assert a.rdata != b.rdata

    def test_wildcard_signatures_shared(self):
        signer = ZoneSigner(wildcard_zones={"d.tracker.net"})
        a = signer.sign_response(answer("a.d.tracker.net")).signatures[0]
        b = signer.sign_response(answer("b.d.tracker.net")).signatures[0]
        assert a.rdata == b.rdata
        assert a.name == "*.d.tracker.net"

    def test_wildcard_apex_signed_by_name(self):
        signer = ZoneSigner(wildcard_zones={"d.tracker.net"})
        r = signer.sign_response(answer("d.tracker.net"))
        assert r.signatures[0].name == "d.tracker.net"

    def test_is_signed(self):
        signer = ZoneSigner(signed_zones={"signed.com"},
                            wildcard_zones={"w.net"})
        assert signer.is_signed("x.signed.com")
        assert signer.is_signed("y.w.net")
        assert not signer.is_signed("z.org")

    def test_empty_answers_untouched(self):
        signer = ZoneSigner(signed_zones={"signed.com"})
        r = Response(Question("x.signed.com"), RCode.NXDOMAIN, [])
        assert signer.sign_response(r).signatures == []


class TestValidatingResolverModel:
    def test_each_new_signature_validated(self):
        signer = ZoneSigner(signed_zones={"s.com"})
        validator = ValidatingResolverModel()
        for i in range(5):
            validator.process_upstream_response(
                signer.sign_response(answer(f"n{i}.s.com")))
        assert validator.validations_performed == 5
        assert validator.validations_skipped_cached == 0

    def test_repeat_signature_cached(self):
        signer = ZoneSigner(signed_zones={"s.com"})
        validator = ValidatingResolverModel()
        r = signer.sign_response(answer("a.s.com"))
        validator.process_upstream_response(r)
        validator.process_upstream_response(r)
        assert validator.validations_performed == 1
        assert validator.validations_skipped_cached == 1

    def test_wildcard_collapses_validations(self):
        """The Section VI-B mitigation: one validation covers all
        children of a wildcard-signed disposable zone."""
        signer = ZoneSigner(wildcard_zones={"d.net"})
        validator = ValidatingResolverModel()
        for i in range(20):
            validator.process_upstream_response(
                signer.sign_response(answer(f"x{i}.d.net", rdata=f"r{i}")))
        assert validator.validations_performed == 1
        assert validator.validations_skipped_cached == 19

    def test_unsigned_responses_counted(self):
        validator = ValidatingResolverModel()
        validator.process_upstream_response(answer("plain.org"))
        assert validator.unsigned_responses == 1
        assert validator.validations_performed == 0

    def test_signature_cache_bytes(self):
        signer = ZoneSigner(signed_zones={"s.com"})
        validator = ValidatingResolverModel()
        validator.process_upstream_response(
            signer.sign_response(answer("a.s.com")))
        assert validator.signature_cache_bytes == RRSIG_BYTES
        assert validator.distinct_signatures_cached == 1

    def test_cache_bytes_for(self):
        validator = ValidatingResolverModel()
        assert validator.cache_bytes_for(10) > 0
