"""Tests for the stub resolver."""

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.message import Question, RRType
from repro.dns.resolver import RdnsCluster
from repro.dns.stub import StubResolver
from repro.dns.zone import StaticZone


def make_cluster():
    h = AuthoritativeHierarchy()
    z = StaticZone("site.com")
    z.add_name("www.site.com", RRType.A, 300)
    h.add_zone(z)
    return RdnsCluster(h, n_servers=1)


class TestStubResolver:
    def test_forwards_to_cluster(self):
        stub = StubResolver(1, make_cluster())
        r = stub.query(Question("www.site.com"), 0.0)
        assert r.is_success
        assert stub.queries_sent == 1

    def test_local_cache_absorbs_repeats(self):
        stub = StubResolver(1, make_cluster(), local_cache_capacity=16)
        stub.query(Question("www.site.com"), 0.0)
        stub.query(Question("www.site.com"), 1.0)
        assert stub.queries_sent == 1
        assert stub.local_hits == 1

    def test_no_local_cache_by_default(self):
        stub = StubResolver(1, make_cluster())
        stub.query(Question("www.site.com"), 0.0)
        stub.query(Question("www.site.com"), 1.0)
        assert stub.queries_sent == 2

    def test_local_cache_respects_ttl(self):
        stub = StubResolver(1, make_cluster(), local_cache_capacity=16)
        stub.query(Question("www.site.com"), 0.0)
        stub.query(Question("www.site.com"), 1000.0)  # TTL 300 expired
        assert stub.queries_sent == 2

    def test_nxdomain_not_locally_cached(self):
        stub = StubResolver(1, make_cluster(), local_cache_capacity=16)
        stub.query(Question("missing.site.com"), 0.0)
        stub.query(Question("missing.site.com"), 1.0)
        assert stub.queries_sent == 2
