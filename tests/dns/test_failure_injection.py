"""Failure-injection tests: SERVFAIL, flapping authorities, cache
poisoning-adjacent edge cases the substrate must survive."""

import pytest

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.cache import LruDnsCache
from repro.dns.message import (Question, RCode, ResourceRecord, Response,
                               RRType)
from repro.dns.resolver import RdnsCluster, RecursiveResolver
from repro.dns.zone import CallbackZone, StaticZone


class FlakyZone(CallbackZone):
    """Answers SERVFAIL for the first ``failures`` queries, then OK."""

    def __init__(self, apex, failures):
        self.remaining_failures = failures

        def respond(question):
            if self.remaining_failures > 0:
                self.remaining_failures -= 1
                return Response(question, RCode.SERVFAIL, [])
            return Response(question, RCode.NOERROR, [
                ResourceRecord(question.qname, RRType.A, 300, "9.9.9.9")])

        super().__init__(apex, respond)


class TestServfailHandling:
    def test_servfail_not_cached(self):
        authority = AuthoritativeHierarchy()
        authority.add_zone(FlakyZone("flaky.com", failures=1))
        resolver = RecursiveResolver(authority, LruDnsCache(10))
        first = resolver.resolve(Question("www.flaky.com"), 0.0)
        assert first.response.rcode is RCode.SERVFAIL
        # Retry must reach upstream again (no caching of SERVFAIL) and
        # now succeed.
        second = resolver.resolve(Question("www.flaky.com"), 1.0)
        assert not second.cache_hit
        assert second.response.is_success

    def test_recovery_answer_cached_normally(self):
        authority = AuthoritativeHierarchy()
        authority.add_zone(FlakyZone("flaky.com", failures=1))
        resolver = RecursiveResolver(authority, LruDnsCache(10))
        resolver.resolve(Question("www.flaky.com"), 0.0)  # SERVFAIL
        resolver.resolve(Question("www.flaky.com"), 1.0)  # OK, cached
        third = resolver.resolve(Question("www.flaky.com"), 2.0)
        assert third.cache_hit

    def test_servfail_not_negative_cached(self):
        """Negative caching applies to NXDOMAIN only (RFC 2308), never
        to SERVFAIL."""
        authority = AuthoritativeHierarchy()
        authority.add_zone(FlakyZone("flaky.com", failures=2))
        resolver = RecursiveResolver(authority,
                                     LruDnsCache(10, negative_ttl=300))
        resolver.resolve(Question("www.flaky.com"), 0.0)
        second = resolver.resolve(Question("www.flaky.com"), 1.0)
        assert not second.cache_hit
        assert second.response.rcode is RCode.SERVFAIL


class TestRdataChange:
    def test_authority_rdata_change_visible_after_expiry(self):
        """When the authoritative answer changes, the resolver serves
        stale data until the TTL runs out, then picks up the new one —
        never a mix."""
        zone = StaticZone("move.com")
        zone.add_name("www.move.com", RRType.A, 60, rdata="1.1.1.1")
        authority = AuthoritativeHierarchy()
        authority.add_zone(zone)
        resolver = RecursiveResolver(authority, LruDnsCache(10))

        first = resolver.resolve(Question("www.move.com"), 0.0)
        assert first.response.answers[0].rdata == "1.1.1.1"

        # The operator renumbers.
        zone._records[("www.move.com", RRType.A)] = [
            ResourceRecord("www.move.com", RRType.A, 60, "2.2.2.2")]

        stale = resolver.resolve(Question("www.move.com"), 30.0)
        assert stale.cache_hit
        assert stale.response.answers[0].rdata == "1.1.1.1"

        fresh = resolver.resolve(Question("www.move.com"), 61.0)
        assert not fresh.cache_hit
        assert fresh.response.answers[0].rdata == "2.2.2.2"


class TestClusterUnderFailure:
    def test_one_flaky_zone_does_not_poison_others(self):
        authority = AuthoritativeHierarchy()
        authority.add_zone(FlakyZone("flaky.com", failures=10**6))
        good = StaticZone("good.com")
        good.add_name("www.good.com", RRType.A, 300)
        authority.add_zone(good)
        cluster = RdnsCluster(authority, n_servers=2, cache_capacity=100)
        for i in range(10):
            bad = cluster.query(i, Question("www.flaky.com"), float(i))
            assert bad.response.rcode is RCode.SERVFAIL
        ok = cluster.query(0, Question("www.good.com"), 20.0)
        assert ok.response.is_success
