"""Tests for the authoritative hierarchy."""

import pytest

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.message import Question, RRType
from repro.dns.zone import StaticZone, WildcardZone


@pytest.fixture
def hierarchy():
    h = AuthoritativeHierarchy()
    static = StaticZone("example.com")
    static.add_name("www.example.com", RRType.A, 300)
    h.add_zone(static)
    h.add_zone(WildcardZone("avqs.mcafee.com", ttl=300))
    h.add_zone(StaticZone("mcafee.com",
                          records=None))
    return h


class TestZoneMatching:
    def test_resolves_static(self, hierarchy):
        r = hierarchy.resolve(Question("www.example.com"))
        assert r.is_success

    def test_longest_suffix_wins(self, hierarchy):
        # avqs.mcafee.com (wildcard) should win over mcafee.com.
        zone = hierarchy.find_zone("h4sh.avqs.mcafee.com")
        assert zone.apex == "avqs.mcafee.com"

    def test_parent_zone_for_other_children(self, hierarchy):
        zone = hierarchy.find_zone("www.mcafee.com")
        assert zone.apex == "mcafee.com"

    def test_unregistered_is_nxdomain(self, hierarchy):
        r = hierarchy.resolve(Question("www.unknown-zone.org"))
        assert r.is_nxdomain

    def test_find_zone_missing(self, hierarchy):
        assert hierarchy.find_zone("nothing.org") is None

    def test_duplicate_registration_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.add_zone(StaticZone("example.com"))

    def test_contains_and_len(self, hierarchy):
        assert "example.com" in hierarchy
        assert "nothing.org" not in hierarchy
        assert len(hierarchy) == 3


class TestStats:
    def test_query_counting(self, hierarchy):
        hierarchy.resolve(Question("www.example.com"))
        hierarchy.resolve(Question("missing.example.com"))
        hierarchy.resolve(Question("q.unknown.org"))
        stats = hierarchy.stats
        assert stats.queries == 3
        assert stats.noerror == 1
        assert stats.nxdomain == 2

    def test_per_zone_counter(self, hierarchy):
        hierarchy.resolve(Question("www.example.com"))
        hierarchy.resolve(Question("www.example.com"))
        assert hierarchy.stats.per_zone_queries["example.com"] == 2

    def test_referral_accounting(self, hierarchy):
        before = hierarchy.stats.referrals
        hierarchy.resolve(Question("www.example.com"))
        assert hierarchy.stats.referrals == before + 3
        hierarchy.resolve(Question("x.unknown.org"))
        assert hierarchy.stats.referrals == before + 5
