"""Model-based testing of the LRU DNS cache.

A deliberately naive reference cache (plain dict + explicit recency
list, no clever bookkeeping) is driven with the same random operation
sequences as the real implementation; every lookup outcome must agree.
This catches interaction bugs (TTL vs LRU vs re-insert ordering) that
example-based tests miss.
"""

from __future__ import annotations

import string
from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType


class ReferenceCache:
    """Obviously-correct LRU+TTL cache: O(n) everything."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self.entries: Dict[str, Tuple[float, str]] = {}  # name -> (expiry, rdata)
        self.recency: List[str] = []  # least recent first

    def lookup(self, name: str, now: float) -> Optional[str]:
        if name not in self.entries:
            return None
        expiry, rdata = self.entries[name]
        if now >= expiry:
            del self.entries[name]
            self.recency.remove(name)
            return None
        self.recency.remove(name)
        self.recency.append(name)
        return rdata

    def insert(self, name: str, ttl: int, rdata: str, now: float) -> None:
        if ttl <= 0:
            return
        if name in self.entries:
            self.recency.remove(name)
        self.entries[name] = (now + ttl, rdata)
        self.recency.append(name)
        while len(self.entries) > self.capacity:
            victim = self.recency.pop(0)
            del self.entries[victim]


# Operations: (kind, name_index, ttl, time_step)
op_st = st.tuples(
    st.sampled_from(["lookup", "insert"]),
    st.integers(min_value=0, max_value=7),     # small namespace -> collisions
    st.integers(min_value=0, max_value=50),    # TTL
    st.integers(min_value=0, max_value=30),    # time advance
)

NAMES = [f"n{i}.model.com" for i in range(8)]


class TestCacheAgainstReference:
    @settings(max_examples=150, deadline=None)
    @given(ops=st.lists(op_st, min_size=1, max_size=60),
           capacity=st.integers(min_value=1, max_value=6))
    def test_lookup_outcomes_match(self, ops, capacity):
        real = LruDnsCache(capacity)
        reference = ReferenceCache(capacity)
        now = 0.0
        for kind, name_index, ttl, step in ops:
            now += step
            name = NAMES[name_index]
            if kind == "lookup":
                got = real.lookup(Question(name), now)
                expected = reference.lookup(name, now)
                if expected is None:
                    assert got is None, (name, now)
                else:
                    assert got is not None, (name, now)
                    assert got[0].rdata == expected
            else:
                rdata = f"10.0.0.{ttl}"
                response = Response(
                    Question(name), RCode.NOERROR,
                    [ResourceRecord(name, RRType.A, ttl, rdata)])
                real.insert(response, now)
                reference.insert(name, ttl, rdata, now)
            assert len(real) <= capacity

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(op_st, min_size=1, max_size=40))
    def test_stats_invariants(self, ops):
        cache = LruDnsCache(4)
        now = 0.0
        for kind, name_index, ttl, step in ops:
            now += step
            name = NAMES[name_index]
            if kind == "lookup":
                cache.lookup(Question(name), now)
            else:
                response = Response(
                    Question(name), RCode.NOERROR,
                    [ResourceRecord(name, RRType.A, ttl, "1.1.1.1")])
                cache.insert(response, now)
        stats = cache.stats
        assert stats.lookups == stats.hits + stats.misses
        assert stats.evicted_live <= stats.evictions
        assert stats.evictions <= stats.inserts
