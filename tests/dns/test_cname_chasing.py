"""Tests for CNAME chain resolution (RFC 1034 §3.6.2)."""

import pytest

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, RRType
from repro.dns.resolver import RecursiveResolver
from repro.dns.zone import StaticZone, WildcardZone


@pytest.fixture
def authority():
    h = AuthoritativeHierarchy()
    site = StaticZone("shop.com")
    site.add_name("www.shop.com", RRType.A, 300)
    site.add_name("assets.shop.com", RRType.CNAME, 300,
                  rdata="e7.g0.akamai.net")
    site.add_name("loop-a.shop.com", RRType.CNAME, 300,
                  rdata="loop-b.shop.com")
    site.add_name("loop-b.shop.com", RRType.CNAME, 300,
                  rdata="loop-a.shop.com")
    site.add_name("dangling.shop.com", RRType.CNAME, 300,
                  rdata="gone.nowhere-zone.org")
    h.add_zone(site)
    h.add_zone(WildcardZone("akamai.net", ttl=60))
    return h


@pytest.fixture
def resolver(authority):
    return RecursiveResolver(authority, LruDnsCache(100))


class TestChasing:
    def test_a_query_on_cname_owner_returns_full_chain(self, resolver):
        result = resolver.resolve(Question("assets.shop.com", RRType.A), 0.0)
        answers = result.response.answers
        assert [rr.rtype for rr in answers] == [RRType.CNAME, RRType.A]
        assert answers[0].name == "assets.shop.com"
        assert answers[1].name == "e7.g0.akamai.net"
        assert result.response.is_success

    def test_chain_counts_extra_upstream_queries(self, resolver):
        resolver.resolve(Question("assets.shop.com", RRType.A), 0.0)
        assert resolver.upstream_queries == 2

    def test_chain_cached_under_original_question(self, resolver):
        resolver.resolve(Question("assets.shop.com", RRType.A), 0.0)
        second = resolver.resolve(Question("assets.shop.com", RRType.A), 1.0)
        assert second.cache_hit
        assert len(second.response.answers) == 2

    def test_explicit_cname_query_not_chased(self, resolver):
        result = resolver.resolve(Question("assets.shop.com", RRType.CNAME),
                                  0.0)
        assert [rr.rtype for rr in result.response.answers] == [RRType.CNAME]
        assert resolver.upstream_queries == 1

    def test_plain_a_query_unchanged(self, resolver):
        result = resolver.resolve(Question("www.shop.com", RRType.A), 0.0)
        assert len(result.response.answers) == 1
        assert resolver.upstream_queries == 1

    def test_cname_loop_terminates(self, resolver):
        result = resolver.resolve(Question("loop-a.shop.com", RRType.A), 0.0)
        # Chain capped; the resolver must return rather than spin.
        assert resolver.upstream_queries <= \
            RecursiveResolver.MAX_CNAME_CHAIN + 1
        assert all(rr.rtype is RRType.CNAME
                   for rr in result.response.answers)

    def test_dangling_cname_yields_nxdomain(self, resolver):
        result = resolver.resolve(Question("dangling.shop.com", RRType.A),
                                  0.0)
        assert result.response.is_nxdomain

    def test_chain_ttl_capped_by_minimum(self, resolver):
        """The cached entry expires with the chain's shortest TTL
        (akamai target: 60s < the CNAME's 300s)."""
        resolver.resolve(Question("assets.shop.com", RRType.A), 0.0)
        assert resolver.resolve(Question("assets.shop.com", RRType.A),
                                59.0).cache_hit
        assert not resolver.resolve(Question("assets.shop.com", RRType.A),
                                    61.0).cache_hit


class TestTapView:
    def test_collector_records_chain_members_by_owner(self, authority):
        from repro.dns.resolver import RdnsCluster
        from repro.pdns.collector import PassiveDnsCollector

        collector = PassiveDnsCollector(day="t")
        cluster = RdnsCluster(authority, n_servers=1, taps=[collector])
        cluster.query(0, Question("assets.shop.com", RRType.A), 0.0)
        names = [(e.qname, e.qtype) for e in collector.dataset.below]
        assert ("assets.shop.com", RRType.CNAME) in names
        assert ("e7.g0.akamai.net", RRType.A) in names
