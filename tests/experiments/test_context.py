"""Tests for the experiment context."""

import pytest

from repro.experiments.context import MEDIUM, SMALL, ExperimentContext
from repro.traffic.simulate import PAPER_DATES, MeasurementDate


class TestProfiles:
    def test_profiles_distinct(self):
        assert SMALL.events_per_day < MEDIUM.events_per_day
        assert SMALL.name != MEDIUM.name

    def test_simulator_config_wired(self):
        config = SMALL.simulator_config()
        assert config.workload.events_per_day == SMALL.events_per_day
        assert config.population.n_popular_sites == SMALL.n_popular_sites
        assert config.cache_capacity == SMALL.cache_capacity


class TestContext:
    def test_dataset_cached(self, small_context):
        a = small_context.dataset(PAPER_DATES[0])
        b = small_context.dataset(PAPER_DATES[0])
        assert a is b

    def test_calendar_simulated_in_order(self, small_context):
        """Requesting a late date then an early one must not corrupt
        cache timelines — both come from one chronological pass."""
        late = small_context.dataset(PAPER_DATES[-1])
        early = small_context.dataset(PAPER_DATES[0])
        assert late.day == "2011-12-30"
        assert early.day == "2011-02-01"

    def test_adhoc_past_date_rejected(self, small_context):
        small_context.dataset(PAPER_DATES[0])  # ensures calendar ran
        with pytest.raises(ValueError):
            small_context.dataset(MeasurementDate("ad-hoc-past", 1, 0.0))

    def test_adhoc_future_date_allowed(self, small_context):
        ds = small_context.dataset(MeasurementDate("ad-hoc-future", 999,
                                                   1.0))
        assert ds.below_volume() > 0

    def test_training_set_and_classifier_cached(self, small_context):
        assert small_context.training_set() is small_context.training_set()
        assert small_context.classifier() is small_context.classifier()

    def test_mining_result_cached_per_threshold(self, small_context):
        a = small_context.mining_result(PAPER_DATES[0])
        b = small_context.mining_result(PAPER_DATES[0])
        c = small_context.mining_result(PAPER_DATES[0], threshold=0.5)
        assert a is b
        assert c is not a

    def test_truth_groups_nonempty(self, small_context):
        assert len(small_context.truth_groups()) > 10
