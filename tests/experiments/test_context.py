"""Tests for the experiment context."""

import pytest

from repro.experiments.context import (MEDIUM, SMALL, ExperimentContext,
                                       ScaleProfile)
from repro.traffic.artifacts import FpDnsArtifactCache
from repro.traffic.simulate import PAPER_DATES, MeasurementDate

# Seconds-scale profile for the acceleration-path tests below: they
# each run the full standard calendar, so the per-day cost must be tiny.
TINY = ScaleProfile(name="tiny-accel", events_per_day=800,
                    n_popular_sites=30, n_longtail_sites=200,
                    n_extra_disposable=8, n_clients=40,
                    cache_capacity=2_000, cdn_objects=800)


class TestProfiles:
    def test_profiles_distinct(self):
        assert SMALL.events_per_day < MEDIUM.events_per_day
        assert SMALL.name != MEDIUM.name

    def test_simulator_config_wired(self):
        config = SMALL.simulator_config()
        assert config.workload.events_per_day == SMALL.events_per_day
        assert config.population.n_popular_sites == SMALL.n_popular_sites
        assert config.cache_capacity == SMALL.cache_capacity


class TestContext:
    def test_dataset_cached(self, small_context):
        a = small_context.dataset(PAPER_DATES[0])
        b = small_context.dataset(PAPER_DATES[0])
        assert a is b

    def test_calendar_simulated_in_order(self, small_context):
        """Requesting a late date then an early one must not corrupt
        cache timelines — both come from one chronological pass."""
        late = small_context.dataset(PAPER_DATES[-1])
        early = small_context.dataset(PAPER_DATES[0])
        assert late.day == "2011-12-30"
        assert early.day == "2011-02-01"

    def test_adhoc_past_date_rejected(self, small_context):
        small_context.dataset(PAPER_DATES[0])  # ensures calendar ran
        with pytest.raises(ValueError):
            small_context.dataset(MeasurementDate("ad-hoc-past", 1, 0.0))

    def test_adhoc_future_date_allowed(self, small_context):
        ds = small_context.dataset(MeasurementDate("ad-hoc-future", 999,
                                                   1.0))
        assert ds.below_volume() > 0

    def test_training_set_and_classifier_cached(self, small_context):
        assert small_context.training_set() is small_context.training_set()
        assert small_context.classifier() is small_context.classifier()

    def test_mining_result_cached_per_threshold(self, small_context):
        a = small_context.mining_result(PAPER_DATES[0])
        b = small_context.mining_result(PAPER_DATES[0])
        c = small_context.mining_result(PAPER_DATES[0], threshold=0.5)
        assert a is b
        assert c is not a

    def test_truth_groups_nonempty(self, small_context):
        assert len(small_context.truth_groups()) > 10


class TestAcceleratedContext:
    """The sharded and artifact-cached paths must change nothing but
    wall-clock time."""

    def test_sharded_context_matches_serial(self):
        serial = ExperimentContext(TINY)
        sharded = ExperimentContext(TINY, n_workers=2)
        for date in PAPER_DATES[:2]:
            a = serial.dataset(date)
            b = sharded.dataset(date)
            assert a.below == b.below
            assert a.above == b.above

    def test_warm_session_skips_simulation(self, tmp_path):
        cold_cache = FpDnsArtifactCache(tmp_path)
        cold = ExperimentContext(TINY, artifact_cache=cold_cache)
        cold_day = cold.dataset(PAPER_DATES[0])
        assert cold_cache.hits == 0
        stored = len(cold_cache)
        assert stored > 0

        warm_cache = FpDnsArtifactCache(tmp_path)
        warm = ExperimentContext(TINY, artifact_cache=warm_cache)
        warm_day = warm.dataset(PAPER_DATES[0])
        # Every calendar day came from disk: no misses, no simulation.
        assert warm_cache.misses == 0
        assert warm_cache.hits == stored
        assert warm._replayed == 0
        assert warm_day.below == cold_day.below
        assert warm_day.above == cold_day.above

    def test_warm_session_is_digest_native(self, tmp_path):
        """A cache-warm columnar session feeds deserialised digests
        straight into mining: no entry lists are ever materialised."""
        from repro.pdns.columnar import ColumnarFpDnsDataset

        cache = FpDnsArtifactCache(tmp_path, artifact_format="columnar")
        ExperimentContext(TINY, artifact_cache=cache).dataset(PAPER_DATES[0])

        warm = ExperimentContext(
            TINY, artifact_cache=FpDnsArtifactCache(
                tmp_path, artifact_format="columnar"))
        day = warm.dataset(PAPER_DATES[0])
        assert isinstance(day, ColumnarFpDnsDataset)
        digest = warm.digest(PAPER_DATES[0])
        assert digest is day.day_digest()       # no rebuild
        assert day._below_entries is None       # no materialisation
        assert day._above_entries is None

    @pytest.mark.parametrize("artifact_format", ["columnar", "tsv"])
    def test_mining_identical_across_formats_and_workers(self, tmp_path,
                                                         artifact_format):
        """The paper's outputs are invariant under the storage backend
        and worker count — both are wall-clock knobs only."""
        baseline = ExperimentContext(TINY)
        expected = baseline.mining_result(PAPER_DATES[0])

        root = tmp_path / artifact_format
        cache = FpDnsArtifactCache(root, artifact_format=artifact_format)
        ExperimentContext(TINY, artifact_cache=cache).dataset(PAPER_DATES[0])
        warm = ExperimentContext(
            TINY, miner_workers=2,
            artifact_cache=FpDnsArtifactCache(
                root, artifact_format=artifact_format))
        assert warm.mining_result(PAPER_DATES[0]) == expected

    def test_digest_equal_across_formats(self, tmp_path):
        """Digest columns from a columnar load equal those built from a
        TSV load of the same day."""
        import numpy as np

        from repro.core.interning import STREAM_FIELDS

        day = PAPER_DATES[0]
        for artifact_format in ("columnar", "tsv"):
            cache = FpDnsArtifactCache(tmp_path / artifact_format,
                                       artifact_format=artifact_format)
            ExperimentContext(TINY, artifact_cache=cache).dataset(day)

        contexts = {
            artifact_format: ExperimentContext(
                TINY, artifact_cache=FpDnsArtifactCache(
                    tmp_path / artifact_format,
                    artifact_format=artifact_format))
            for artifact_format in ("columnar", "tsv")}
        d_col = contexts["columnar"].digest(day)
        d_tsv = contexts["tsv"].digest(day)
        assert list(d_col.names.names) == list(d_tsv.names.names)
        assert d_col.rr_keys == d_tsv.rr_keys
        for which in ("below", "above"):
            for field in STREAM_FIELDS:
                assert np.array_equal(
                    getattr(getattr(d_col, which), field),
                    getattr(getattr(d_tsv, which), field)), (which, field)

    def test_resident_days_bounds_memory_and_reloads(self, tmp_path):
        """With ``resident_days`` set, at most that many per-entry
        datasets stay in memory; evicted days stay *produced* and
        reload transparently from the artifact cache."""
        cache = FpDnsArtifactCache(tmp_path)
        bounded = ExperimentContext(TINY, artifact_cache=cache,
                                    resident_days=2)
        first = bounded.dataset(PAPER_DATES[0])  # runs the calendar
        # The early day was evicted mid-calendar and reloaded on return.
        assert first.day == PAPER_DATES[0].label
        assert len(bounded._datasets) <= 2
        assert len(bounded._produced) >= len(PAPER_DATES)

        reference = ExperimentContext(
            TINY, artifact_cache=FpDnsArtifactCache(tmp_path))
        expected = reference.dataset(PAPER_DATES[0])
        again = bounded.dataset(PAPER_DATES[0])
        assert again.below == expected.below
        assert again.above == expected.above
        assert len(bounded._datasets) <= 2

    def test_release_day_frees_then_reloads(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        ctx = ExperimentContext(TINY, artifact_cache=cache)
        day = PAPER_DATES[0]
        before = ctx.dataset(day)
        ctx.digest(day)
        ctx.hit_rates(day)
        ctx.release_day(day)
        assert day.label not in ctx._datasets
        assert day.label not in ctx._digests
        assert day.label not in ctx._hit_rates
        after = ctx.dataset(day)
        assert after is not before
        assert after.below == before.below
        assert after.above == before.above

    def test_release_without_artifact_cache_is_unrecoverable(self):
        ctx = ExperimentContext(TINY)
        day = PAPER_DATES[0]
        ctx.dataset(day)
        ctx.release_day(day)
        with pytest.raises(RuntimeError):
            ctx.dataset(day)

    def test_adhoc_date_after_warm_hits_replays(self, tmp_path):
        cache = FpDnsArtifactCache(tmp_path)
        ExperimentContext(TINY, artifact_cache=cache).dataset(PAPER_DATES[0])

        serial = ExperimentContext(TINY)
        warm = ExperimentContext(TINY,
                                 artifact_cache=FpDnsArtifactCache(tmp_path))
        adhoc = MeasurementDate("ad-hoc-future", 999, 1.0)
        serial.dataset(PAPER_DATES[0])   # runs the standard calendar
        warm.dataset(PAPER_DATES[0])     # loads it from disk instead
        a = serial.dataset(adhoc)
        b = warm.dataset(adhoc)
        # The warm context loaded the calendar from disk, then had to
        # rewarm its serial caches by replay before the ad-hoc day.
        assert warm._replayed > 0
        assert a.below == b.below
        assert a.above == b.above


class TestPdnsBackendSelection:
    def test_default_is_in_memory(self, monkeypatch):
        from repro.pdns.database import PassiveDnsDatabase
        monkeypatch.delenv("REPRO_PDNS_STORE", raising=False)
        ctx = ExperimentContext(SMALL)
        assert isinstance(ctx.pdns_database(), PassiveDnsDatabase)

    def test_env_knob_selects_segmented_store(self, tmp_path, monkeypatch):
        from repro.pdns.store import SegmentedPdnsStore
        monkeypatch.setenv("REPRO_PDNS_STORE", str(tmp_path))
        ctx = ExperimentContext(SMALL)
        store = ctx.pdns_database()
        assert isinstance(store, SegmentedPdnsStore)
        assert store.root.parent == tmp_path
        assert len(store) == 0

    def test_each_run_gets_a_fresh_store(self, tmp_path, monkeypatch):
        from repro.dns.message import RRType
        monkeypatch.setenv("REPRO_PDNS_STORE", str(tmp_path))
        ctx = ExperimentContext(SMALL)
        first = ctx.pdns_database()
        first.ingest_rrs("2011-02-22", [("a.x.com", RRType.A, "1.1.1.1")])
        second = ctx.pdns_database()
        assert second.root != first.root
        assert len(second) == 0

    def test_leftover_store_not_reused(self, tmp_path, monkeypatch):
        from repro.dns.message import RRType
        from repro.pdns.store import SegmentedPdnsStore
        monkeypatch.setenv("REPRO_PDNS_STORE", str(tmp_path))
        leftover = SegmentedPdnsStore(tmp_path / "small-run0")
        leftover.ingest_rrs("2011-02-22",
                            [("a.x.com", RRType.A, "1.1.1.1")])
        ctx = ExperimentContext(SMALL)
        store = ctx.pdns_database()
        assert store.root != leftover.root
        assert len(store) == 0
