"""Tests for the ablation experiments."""

import pytest

from repro.experiments.ablations import (run_classifier_comparison,
                                         run_feature_ablation,
                                         run_threshold_sweep)


class TestClassifierComparison:
    @pytest.fixture(scope="class")
    def comparison(self, small_context):
        return run_classifier_comparison(small_context, n_folds=5)

    def test_all_six_models(self, comparison):
        assert set(comparison.summary) == {"lad-tree", "cart", "naive-bayes",
                                           "knn", "logistic", "neural-net"}

    def test_every_model_learns_the_task(self, comparison):
        """The classes are well separated; every candidate should be
        far above chance (the paper's model selection was picking among
        good options)."""
        for name, metrics in comparison.summary.items():
            assert metrics["auc"] > 0.8, name

    def test_lad_tree_competitive(self, comparison):
        lad_auc = comparison.summary["lad-tree"]["auc"]
        best_auc = comparison.summary[comparison.best_model()]["auc"]
        assert lad_auc >= best_auc - 0.05

    def test_renders(self, comparison):
        assert "model selection" in comparison.render()


class TestFeatureAblation:
    @pytest.fixture(scope="class")
    def ablation(self, small_context):
        return run_feature_ablation(small_context, n_folds=5)

    def test_three_rows(self, ablation):
        assert set(ablation.aucs) == {"tree-structure only",
                                      "cache-hit-rate only",
                                      "both families"}

    def test_both_families_at_least_as_good(self, ablation):
        both = ablation.aucs["both families"]
        assert both >= ablation.aucs["tree-structure only"] - 0.05
        assert both >= ablation.aucs["cache-hit-rate only"] - 0.05

    def test_each_family_alone_carries_signal(self, ablation):
        """Section V-A2: both families individually separate the
        classes to a useful degree."""
        assert ablation.aucs["cache-hit-rate only"] > 0.8
        assert ablation.aucs["tree-structure only"] > 0.6

    def test_renders(self, ablation):
        assert "feature families" in ablation.render()


class TestThresholdSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_context):
        return run_threshold_sweep(small_context,
                                   thresholds=(0.5, 0.9, 0.99))

    def test_rows(self, sweep):
        assert [row[0] for row in sweep.rows] == [0.5, 0.9, 0.99]

    def test_paper_threshold_high_precision(self, sweep):
        theta_09 = next(row for row in sweep.rows if row[0] == 0.9)
        assert theta_09[1] > 0.8  # precision
        assert theta_09[2] > 0.6  # recall

    def test_recall_non_increasing_with_threshold(self, sweep):
        recalls = [row[2] for row in sweep.rows]
        assert all(later <= earlier + 0.02
                   for earlier, later in zip(recalls, recalls[1:]))

    def test_renders(self, sweep):
        assert "threshold sweep" in sweep.render()
