"""Tests for the parameter-sweep harness."""

import pytest

from repro.experiments.sweeps import (ParameterSweep, SweepResult,
                                      set_config_attr)
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, WorkloadConfig)


def tiny_base():
    return SimulatorConfig(
        n_servers=1,
        cache_capacity=2_000,
        population=PopulationConfig(n_popular_sites=20,
                                    n_longtail_sites=100,
                                    n_extra_disposable=4,
                                    cdn_objects=400),
        workload=WorkloadConfig(events_per_day=2_000, n_clients=40))


class TestSetConfigAttr:
    def test_top_level(self):
        config = tiny_base()
        set_config_attr(config, "cache_capacity", 99)
        assert config.cache_capacity == 99

    def test_nested(self):
        config = tiny_base()
        set_config_attr(config, "workload.events_per_day", 123)
        assert config.workload.events_per_day == 123

    def test_unknown_rejected(self):
        with pytest.raises(AttributeError):
            set_config_attr(tiny_base(), "workload.nope", 1)


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        sweep = ParameterSweep(
            base=tiny_base(),
            vary=("workload.events_per_day", [1_000, 4_000]),
            metrics={
                "ratio": lambda sim, day: (day.above_volume()
                                           / day.below_volume()),
                "resolved": lambda sim, day: len(day.resolved_domains()),
            })
        return sweep.run()

    def test_one_point_per_value(self, result):
        assert result.values == [1_000, 4_000]
        assert len(result.metrics["ratio"]) == 2

    def test_density_improves_caching(self, result):
        """The scale-ablation fact through the generic harness: more
        events per day -> lower above/below ratio."""
        assert result.is_monotone("ratio", increasing=False, slack=0.01)

    def test_more_events_more_names(self, result):
        assert result.is_monotone("resolved", increasing=True)

    def test_series_and_render(self, result):
        series = result.series("ratio")
        assert [value for value, _ in series] == [1_000, 4_000]
        text = result.render()
        assert "workload.events_per_day" in text
        assert "ratio" in text

    def test_base_config_not_mutated(self):
        base = tiny_base()
        sweep = ParameterSweep(
            base=base, vary=("cache_capacity", [10]),
            metrics={"x": lambda sim, day: 0.0},
            events_per_day=200, warmup_date=None)
        sweep.run()
        assert base.cache_capacity == 2_000

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ParameterSweep(tiny_base(), ("cache_capacity", []),
                           {"x": lambda sim, day: 0.0})
        with pytest.raises(ValueError):
            ParameterSweep(tiny_base(), ("cache_capacity", [1]), {})
