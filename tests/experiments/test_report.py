"""Tests for the text-report helpers."""

from repro.experiments.report import (format_kv, format_percent,
                                      format_series, format_table)


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.276) == "27.6%"

    def test_digits(self):
        assert format_percent(0.0061, digits=2) == "0.61%"

    def test_zero(self):
        assert format_percent(0.0) == "0.0%"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [("a", 1), ("longer", 22)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # Separator row matches column widths.
        assert set(lines[1]) <= {"-", " "}
        assert "longer" in lines[3]

    def test_wide_cell_extends_column(self):
        table = format_table(["x"], [("wiiiiiiide",)])
        assert "wiiiiiiide" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2

    def test_non_string_cells(self):
        table = format_table(["a"], [(3.14,), (None,)])
        assert "3.14" in table and "None" in table


class TestFormatKv:
    def test_alignment(self):
        block = format_kv([("k", "v"), ("longer-key", 2)])
        lines = block.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        block = format_kv([("k", "v")], title="Header")
        lines = block.splitlines()
        assert lines[0] == "Header"
        assert lines[1] == "======"

    def test_empty(self):
        assert format_kv([]) == ""


class TestFormatSeries:
    def test_basic(self):
        out = format_series("s", [0.1, 0.25], digits=2)
        assert out == "s: [0.10, 0.25]"
