"""Tests for the Section VI experiment runners."""

import pytest

from repro.experiments.impact_runs import (run_sec6a_cache_pressure,
                                           run_sec6b_dnssec,
                                           run_sec6c_pdns_storage)


class TestSec6a:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_sec6a_cache_pressure(small_context,
                                        capacities=[300, 1_500, 6_000],
                                        n_events=6_000)

    def test_degradation_worst_at_smallest_cache(self, result):
        degradations = result.degradation_series()
        assert degradations[0] >= degradations[-1] - 0.02

    def test_loaded_run_latency_not_lower(self, result):
        for comparison in result.comparisons:
            assert (comparison.with_disposable.mean_latency_ms
                    >= comparison.without_disposable.mean_latency_ms - 0.5)

    def test_renders(self, result):
        assert "VI-A" in result.render()


class TestSec6b:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_sec6b_dnssec(small_context, n_events=6_000)

    def test_wildcard_saves_validations(self, result):
        assert result.study.wildcard_savings() > 0.1

    def test_renders(self, result):
        assert "VI-B" in result.render()


class TestSec6c:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_sec6c_pdns_storage(small_context)

    def test_wildcard_reduction(self, result):
        assert result.result.reduction_ratio < 0.8

    def test_disposable_majority(self, result):
        assert result.result.disposable_fraction > 0.4

    def test_renders(self, result):
        assert "VI-C" in result.render()
