"""Shape tests for Tables I-II and the Figure 11 summary."""

import pytest

from repro.experiments.tables import (run_fig11_summary,
                                      run_table1_lookup_tail,
                                      run_table2_dhr_tail)


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self, small_context):
        return run_table1_lookup_tail(small_context)

    def test_six_rows(self, table):
        assert len(table.rows) == 6

    def test_tail_dominates_everywhere(self, table):
        """Paper: the <10-lookup tail is 90-94% of RRs."""
        for row in table.rows:
            assert row.tail_fraction > 0.8

    def test_disposable_share_of_tail_grows(self, table):
        """Paper: 28% -> 57% over the year."""
        series = table.disposable_share_series()
        assert series[-1] > series[0]

    def test_disposable_lives_in_tail(self, table):
        """Paper: 96-98% of disposable RRs are in the tail."""
        for value in table.in_tail_series():
            assert value > 0.9

    def test_renders(self, table):
        assert "Table I" in table.render()


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self, small_context):
        return run_table2_dhr_tail(small_context)

    def test_six_rows(self, table):
        assert len(table.rows) == 6

    def test_zero_dhr_tail_majority(self, table):
        """Paper: the zero-DHR tail is 89-94% of RRs."""
        for row in table.rows:
            assert row.tail_fraction > 0.55

    def test_disposable_share_grows(self, table):
        series = table.disposable_share_series()
        assert series[-1] > series[0]

    def test_disposable_lives_in_tail(self, table):
        """Paper: ~96% of disposable RRs have zero DHR."""
        for value in table.in_tail_series():
            assert value > 0.85

    def test_renders(self, table):
        assert "Table II" in table.render()


class TestFig11Summary:
    @pytest.fixture(scope="class")
    def summary(self, small_context):
        return run_fig11_summary(small_context)

    def test_classifier_accuracy_band(self, summary):
        assert summary.tpr_at_05 > 0.9
        assert summary.fpr_at_05 < 0.05

    def test_zone_counts_positive(self, summary):
        assert summary.n_disposable_zones > 10
        assert 0 < summary.n_disposable_2lds <= summary.n_disposable_zones

    def test_growth_rows(self, summary):
        assert summary.queried_last > summary.queried_first
        assert summary.resolved_last > summary.resolved_first
        assert summary.rr_last > summary.rr_first

    def test_example_zones_reported(self, summary):
        assert summary.example_zones

    def test_disposable_names_are_long(self, summary):
        """Paper: disposable names average ~7 periods — longer than
        ordinary hostnames."""
        assert summary.mean_disposable_periods > 3.0

    def test_cdn_borderline_small(self, summary):
        """Paper: only 0.6% of flagged zones were CDN; here the CDN
        borderline stays a small minority of findings."""
        assert summary.cdn_zone_fraction < 0.35

    def test_renders(self, summary):
        text = summary.render()
        assert "Figure 11" in text
        assert "disposable" in text
