"""End-to-end integration tests: the full Figure 10 pipeline against
the simulator's ground truth."""

import pytest

from repro.core.ranking import name_matches_groups
from repro.traffic.simulate import PAPER_DATES


class TestEndToEndPipeline:
    @pytest.fixture(scope="class")
    def december(self, small_context):
        return small_context.mining_result(PAPER_DATES[-1])

    def test_miner_recovers_most_truth_zones(self, small_context, december):
        """Every ground-truth disposable (zone, depth) with enough
        observed names should be discovered, possibly keyed at an
        ancestor zone."""
        truth = small_context.truth_groups()
        found = december.groups
        dataset = small_context.dataset(PAPER_DATES[-1])
        resolved = dataset.resolved_domains()
        recovered = 0
        eligible = 0
        for zone, depth in truth:
            observed = sum(1 for name in resolved
                           if name.endswith("." + zone))
            if observed < 5:
                continue  # below the miner's min_group_size
            eligible += 1
            if any((fz == zone or zone.endswith("." + fz)) and fd == depth
                   for fz, fd in found):
                recovered += 1
        assert eligible > 10
        assert recovered / eligible > 0.85

    def test_low_false_positive_rate_on_names(self, small_context, december):
        """Few non-disposable resolved names should be flagged.  CDN
        names are excluded from the accounting, as the paper itself
        found CDN zones at the definition's boundary (0.6% of zones)."""
        truth = small_context.truth_groups()
        dataset = small_context.dataset(PAPER_DATES[-1])
        resolved = [name for name in dataset.resolved_domains()
                    if "akamai" not in name]
        flagged_false = sum(
            1 for name in resolved
            if name_matches_groups(name, december.groups)
            and not name_matches_groups(name, truth))
        non_disposable = sum(1 for name in resolved
                             if not name_matches_groups(name, truth))
        assert flagged_false / non_disposable < 0.05

    def test_mining_is_deterministic(self, small_context):
        a = small_context.mining_result(PAPER_DATES[2])
        # Recompute from scratch with the same classifier.
        from repro.core.miner import MinerConfig
        from repro.core.ranking import DisposableZoneRanker
        ranker = DisposableZoneRanker(small_context.classifier(),
                                      MinerConfig(threshold=0.9))
        b = ranker.run_day(small_context.dataset(PAPER_DATES[2]),
                           small_context.hit_rates(PAPER_DATES[2]))
        assert a.groups == b.groups

    def test_fig11_style_zone_inventory(self, small_context, december):
        """The December run should discover a substantial zone
        inventory spanning multiple 2LDs (paper: 14,488 zones under
        12,397 2LDs over 6 days)."""
        assert len(december.findings) >= 15
        assert len(december.disposable_2lds) >= 10
