"""Shape tests for the per-figure experiment runners (SMALL profile).

These assert the *qualitative* facts each paper figure reports — who
wins, which direction things grow, where the mass sits — not the
authors' absolute numbers (our substrate is a simulator, not their
ISP; see EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.experiments.figures import (run_fig02_traffic_volume,
                                       run_fig03_long_tail,
                                       run_fig04_chr_distribution,
                                       run_fig05_new_rrs,
                                       run_fig07_chr_labeled,
                                       run_fig12_roc, run_fig13_growth,
                                       run_fig14_ttl,
                                       run_fig15_pdns_growth)


class TestFig02:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig02_traffic_volume(small_context)

    def test_above_well_below_below(self, result):
        """Caching: clearly less traffic above the resolvers than
        below.  The paper's ~10x gap needs ISP event density (~200
        queries per RR per day vs our ~5); at simulator scale the gap
        is ~2x and grows with events_per_day (see EXPERIMENTS.md)."""
        assert result.mean_above_below_ratio < 0.75

    def test_nxdomain_share_larger_above(self, result):
        """No negative caching -> NXDOMAIN is a far larger share of the
        upstream traffic (paper: ~40% above vs ~6% below)."""
        assert (result.mean_nxdomain_share_above
                > 1.5 * result.mean_nxdomain_share_below)

    def test_nxdomain_share_below_small(self, result):
        assert result.mean_nxdomain_share_below < 0.12

    def test_diurnal_pattern_visible(self, result):
        assert result.diurnal_peak_to_trough() > 2.0

    def test_google_akamai_less_than_half(self, result):
        """The two reference groups account for less than half of
        below traffic (Section III-C1)."""
        for summary in result.summaries:
            assert summary.google_akamai_share_below < 0.5

    def test_renders(self, result):
        text = result.render()
        assert "Figure 2" in text and "above/below" in text


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig03_long_tail(small_context)

    def test_long_tail_dominates(self, result):
        """Paper: >90% of RRs receive fewer than 10 lookups."""
        assert result.low_volume_fraction > 0.85

    def test_zero_dhr_majority(self, result):
        """Paper: ~89% of RRs have zero domain hit rate."""
        assert result.zero_dhr_fraction > 0.6

    def test_volumes_sorted(self, result):
        assert np.all(np.diff(result.sorted_volumes) <= 0)

    def test_head_is_heavy(self, result):
        assert result.sorted_volumes[0] > 50 * np.median(result.sorted_volumes)

    def test_renders(self, result):
        assert "Figure 3" in result.render()


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig04_chr_distribution(small_context)

    def test_majority_of_chr_below_half(self, result):
        """Paper: 58% of CHR samples below 0.5."""
        assert result.below_half_fraction > 0.5

    def test_year_pool_larger_than_day(self, result):
        assert len(result.year_cdf) > len(result.day_cdf)

    def test_renders(self, result):
        assert "Figure 4" in result.render()


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig05_new_rrs(small_context)

    def test_thirteen_days(self, result):
        assert len(result.report.days) == 13

    def test_new_rrs_decline_as_db_warms(self, result):
        """Paper: ~30% fewer new RRs on the 13th consecutive day."""
        assert result.report.overall_decline() > 0.05

    def test_google_keeps_producing(self, result):
        """Google's series must NOT collapse (it grew in the paper)."""
        days = result.report.days
        assert days[-1].new_google > 0.5 * days[0].new_google

    def test_renders(self, result):
        assert "Figure 5" in result.render()


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig07_chr_labeled(small_context)

    def test_disposable_chr_mass_at_zero(self, result):
        """Paper: 90% of disposable CHR samples are zero."""
        assert result.split.disposable_zero_fraction > 0.85

    def test_classes_separated(self, result):
        assert (result.split.non_disposable_median
                > result.split.disposable.quantile(0.5))

    def test_non_disposable_has_high_chr_mass(self, result):
        assert result.split.non_disposable_fraction_above(0.58) > 0.1

    def test_renders(self, result):
        assert "Figure 7" in result.render()


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig12_roc(small_context)

    def test_high_accuracy(self, result):
        """Paper: 97% TPR at 1% FPR (theta=0.5)."""
        assert result.tpr_at_05 > 0.9
        assert result.fpr_at_05 < 0.05

    def test_stricter_threshold_fewer_fp(self, result):
        assert result.fpr_at_09 <= result.fpr_at_05 + 1e-9

    def test_auc_near_one(self, result):
        assert result.auc > 0.95

    def test_training_set_balanced(self, result):
        assert result.n_positive >= 10
        assert result.n_train - result.n_positive >= 10

    def test_renders(self, result):
        assert "Figure 12" in result.render()


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig13_growth(small_context)

    def test_six_points(self, result):
        assert len(result.series.points) == 6

    def test_growth_in_all_three_series(self, result):
        assert result.series.queried_growth() > 0.0
        assert result.series.resolved_growth() > 0.0
        assert result.series.rr_growth() > 0.0

    def test_roughly_monotonic(self, result):
        assert result.series.is_monotonic_increasing("resolved_fraction",
                                                     slack=0.03)

    def test_starting_levels_in_paper_band(self, result):
        first = result.series.first
        assert 0.1 < first.queried_fraction < 0.45
        assert 0.15 < first.resolved_fraction < 0.5
        assert 0.2 < first.rr_fraction < 0.6

    def test_rr_share_exceeds_name_share(self, result):
        for point in result.series.points:
            assert point.rr_fraction > point.resolved_fraction

    def test_renders(self, result):
        assert "Figure 13" in result.render()


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig14_ttl(small_context)

    def test_february_mode_near_zero(self, result):
        """Paper: 28% of disposable domains at TTL=1s in February."""
        assert result.february.mode() == 1

    def test_december_mode_300(self, result):
        """Paper: operators switched to larger TTLs; December's mode
        is 300 s."""
        assert result.december.mode() == 300
        assert result.december.fraction_at(1) < 0.05

    def test_december_has_more_mass(self, result):
        assert result.december.total > result.february.total

    def test_renders(self, result):
        assert "Figure 14" in result.render()


class TestFig15:
    @pytest.fixture(scope="class")
    def result(self, small_context):
        return run_fig15_pdns_growth(small_context)

    def test_disposable_majority_of_unique_rrs(self, result):
        """Paper: 88% of all unique RRs after 13 days are disposable."""
        assert result.report.disposable_fraction > 0.4

    def test_disposable_share_of_new_rrs_grows(self, result):
        days = result.report.days
        assert days[-1].disposable_share > days[0].disposable_share - 0.05

    def test_non_disposable_new_rrs_collapse(self, result):
        """Paper: non-disposable new RRs drop hard (13M -> 1.6M) while
        disposable stays high."""
        days = result.report.days
        nd_drop = 1 - days[-1].new_non_disposable / days[0].new_non_disposable
        d_drop = 1 - days[-1].new_disposable / max(days[0].new_disposable, 1)
        assert nd_drop > d_drop

    def test_renders(self, result):
        assert "Figure 15" in result.render()
