"""End-to-end deployment workflow: everything a real operator would
run, chained across module boundaries.

tap → fpDNS file → streaming mine (with a persisted model) → discovery
ledger → zone profile → pDNS-DB → wildcard mitigation → forensic query.
"""

import pytest

from repro.core.classifier import load_lad_tree, save_lad_tree
from repro.core.features import FeatureExtractor
from repro.core.hitrate import compute_hit_rates
from repro.core.miner import MinerConfig
from repro.core.profile import ZoneProfiler
from repro.core.streaming import StreamingDayBuilder, mine_stream
from repro.core.tracking import ZoneTracker
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.io import iter_fpdns_entries, save_fpdns
from repro.pdns.query import PdnsQueryIndex


class TestOperatorWorkflow:
    @pytest.fixture(scope="class")
    def workflow(self, small_context, tmp_path_factory):
        """Run the whole chain once; tests assert on the artifacts."""
        tmp = tmp_path_factory.mktemp("workflow")
        from repro.traffic.simulate import PAPER_DATES

        # 1. Train on the labeling day and persist the model.
        model_path = tmp / "model.json"
        save_lad_tree(small_context.classifier(), model_path)

        # 2. The tap wrote a day to disk.
        date = PAPER_DATES[-1]
        dataset = small_context.dataset(date)
        day_path = tmp / "day.tsv.gz"
        save_fpdns(dataset, day_path)

        # 3. Daily job: stream the file, mine with the deployed model.
        deployed = load_lad_tree(model_path)
        findings, stats = mine_stream(iter_fpdns_entries(day_path),
                                      deployed, MinerConfig(),
                                      day=dataset.day)

        # 4. Ledger + profile of the top finding.
        tracker = ZoneTracker()
        tracker.ingest_findings(dataset.day, findings)
        builder = StreamingDayBuilder(day=dataset.day)
        builder.observe_many(iter_fpdns_entries(day_path))
        tree, hit_rates = builder.finish()
        top = max(findings, key=lambda f: f.group_size)
        profile = ZoneProfiler(tree, hit_rates, deployed).profile(top.zone)

        # 5. pDNS-DB ingest + mitigation + forensic index.
        database = PassiveDnsDatabase()
        database.ingest_day(dataset)
        groups = {finding.as_group_key() for finding in findings}
        mitigated_rows = database.wildcard_aggregated_size(groups)
        index = PdnsQueryIndex(database)

        return {
            "dataset": dataset, "findings": findings, "stats": stats,
            "tracker": tracker, "profile": profile, "database": database,
            "mitigated_rows": mitigated_rows, "index": index, "top": top,
            "context": small_context,
        }

    def test_streaming_matches_batch_mining(self, workflow):
        from repro.traffic.simulate import PAPER_DATES
        batch = workflow["context"].mining_result(PAPER_DATES[-1]).groups
        streamed = {finding.as_group_key()
                    for finding in workflow["findings"]}
        assert streamed == batch

    def test_ledger_populated(self, workflow):
        tracker = workflow["tracker"]
        assert tracker.total_zones() == len(workflow["findings"])
        assert tracker.total_2lds() >= 1

    def test_profile_confirms_top_finding(self, workflow):
        profile = workflow["profile"]
        top = workflow["top"]
        assert top.depth in profile.disposable_depths(threshold=0.5)
        assert "disposable" in profile.render()

    def test_mitigation_shrinks_database(self, workflow):
        assert workflow["mitigated_rows"] < len(workflow["database"])

    def test_forensic_pivot_reaches_flagged_zone(self, workflow):
        top = workflow["top"]
        index = workflow["index"]
        under = index.names_under_zone(top.zone)
        assert len(under) >= 5
        history = index.history_for_name(under[0])
        assert history
        assert history[0].first_seen == workflow["dataset"].day

    def test_stats_agree_with_dataset(self, workflow):
        stats = workflow["stats"]
        dataset = workflow["dataset"]
        assert stats.below_entries == dataset.below_volume()
        assert stats.above_entries == dataset.above_volume()
