"""Tests for the calibration validator."""

import pytest

from repro.experiments.validation import validate_calibration


class TestCalibrationScorecard:
    @pytest.fixture(scope="class")
    def scorecard(self, tiny_simulator, tiny_day):
        return validate_calibration(tiny_simulator, tiny_day)

    def test_default_workload_passes_all_invariants(self, scorecard):
        assert scorecard.all_passed, scorecard.render()

    def test_ten_invariants_checked(self, scorecard):
        assert len(scorecard.checks) == 10

    def test_failures_empty_when_passing(self, scorecard):
        assert scorecard.failures() == []

    def test_render(self, scorecard):
        text = scorecard.render()
        assert "Calibration scorecard" in text
        assert "PASS" in text
        assert "FAIL" not in text

    def test_measured_values_finite(self, scorecard):
        for check in scorecard.checks:
            assert check.measured == check.measured  # not NaN


class TestMiscalibrationDetected:
    def test_disposable_flood_fails_share_band(self):
        """A workload with disposable traffic cranked far beyond the
        paper's regime must fail the share-band invariant — the
        scorecard is a real net, not a rubber stamp."""
        from repro.traffic.simulate import (MeasurementDate,
                                            PopulationConfig,
                                            SimulatorConfig,
                                            TraceSimulator, WorkloadConfig)

        config = SimulatorConfig(
            cache_capacity=3_000,
            population=PopulationConfig(n_popular_sites=20,
                                        n_longtail_sites=50,
                                        n_extra_disposable=10,
                                        cdn_objects=500),
            workload=WorkloadConfig(events_per_day=6_000, n_clients=60,
                                    popular_share=0.18,
                                    longtail_share=0.02,
                                    typo_share=0.02,
                                    cdn_share=0.02,
                                    google_share=0.02,
                                    disposable_share_start=0.60,
                                    disposable_share_end=0.70))
        simulator = TraceSimulator(config)
        day = simulator.run_day(MeasurementDate("flood", 100, 1.0))
        scorecard = validate_calibration(simulator, day)
        failed = {check.name for check in scorecard.failures()}
        assert "disposable share of resolved names" in failed
