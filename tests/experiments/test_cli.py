"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments import cli
from repro.experiments.context import SMALL


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table1" in out and "sec6b" in out

    def test_catalogue_covers_every_paper_artifact(self):
        expected = {"fig2", "fig3", "fig4", "fig5", "fig7", "fig11",
                    "fig12", "fig13", "fig14", "fig15", "table1", "table2",
                    "sec6a", "sec6b", "sec6c"}
        assert expected <= set(cli.EXPERIMENTS)

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_run_one_experiment(self, small_context, capsys, monkeypatch):
        # Reuse the session's SMALL context instead of building a new one.
        monkeypatch.setattr(cli, "get_context",
                            lambda profile: small_context)
        assert cli.main(["fig12", "--profile", "small"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "TPR" in out

    def test_run_table(self, small_context, capsys, monkeypatch):
        monkeypatch.setattr(cli, "get_context",
                            lambda profile: small_context)
        assert cli.main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_calibrate_command(self, small_context, capsys, monkeypatch):
        monkeypatch.setattr(cli, "get_context",
                            lambda profile: small_context)
        exit_code = cli.main(["calibrate"])
        out = capsys.readouterr().out
        assert "Calibration scorecard" in out
        assert exit_code == 0

    def test_list_mentions_calibrate(self, capsys):
        cli.main(["list"])
        assert "calibrate" in capsys.readouterr().out

    def test_extra_positional_rejected_for_experiments(self):
        with pytest.raises(SystemExit):
            cli.main(["fig12", "stats"])


class TestCacheCommand:
    def _populate(self, root):
        root.mkdir(parents=True, exist_ok=True)
        (root / "a.fpdns2").write_bytes(b"x" * 10)
        (root / "b.mining.json").write_bytes(b"y" * 4)

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 artifacts" in out and "14 bytes" in out
        assert ".fpdns2" in out and ".mining.json" in out

    def test_stats_is_default_action(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["cache", "--dir", str(tmp_path)]) == 0
        assert "2 artifacts" in capsys.readouterr().out

    def test_prune(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["cache", "prune", "--dir", str(tmp_path),
                         "--max-bytes", "4"]) == 0
        assert "pruned 1 artifacts" in capsys.readouterr().out
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert len(remaining) == 1

    def test_prune_requires_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["cache", "prune", "--dir", str(tmp_path)])

    def test_env_knobs_supply_directories(self, tmp_path, capsys,
                                          monkeypatch):
        self._populate(tmp_path)
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE", str(tmp_path))
        monkeypatch.delenv("REPRO_MINER_CACHE", raising=False)
        assert cli.main(["cache", "stats"]) == 0
        assert "2 artifacts" in capsys.readouterr().out

    def test_no_directories_errors(self, monkeypatch):
        monkeypatch.delenv("REPRO_ARTIFACT_CACHE", raising=False)
        monkeypatch.delenv("REPRO_MINER_CACHE", raising=False)
        with pytest.raises(SystemExit):
            cli.main(["cache", "stats"])

    def test_unknown_action_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["cache", "wipe", "--dir", str(tmp_path)])

    def test_list_mentions_cache(self, capsys):
        cli.main(["list"])
        assert "cache" in capsys.readouterr().out


class TestServeCommand:
    def test_list_mentions_serve(self, capsys):
        assert cli.main(["list"]) == 0
        assert "serve" in capsys.readouterr().out

    def test_serve_help_documents_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--host", "--port", "--profile", "--model",
                     "--threshold", "--max-batch", "--batch-window-ms"):
            assert flag in out

    def test_serve_rejects_unknown_profile(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["serve", "--profile", "huge"])

    def test_serve_wires_settings_and_serves(self, monkeypatch, capsys):
        """`repro serve` builds a server from the parsed settings and
        runs it; a stub server keeps the test off the network."""
        from repro.service import app as service_app

        captured = {}

        class StubServer:
            server_address = ("127.0.0.1", 43210)

            class batcher:  # noqa: N801 - attribute stand-in
                close = staticmethod(lambda: captured.setdefault(
                    "batcher_closed", True))

            def serve_forever(self):
                captured["served"] = True
                raise KeyboardInterrupt

            def server_close(self):
                captured["closed"] = True

        def fake_build_server(settings):
            captured["settings"] = settings
            return StubServer()

        monkeypatch.setattr(service_app, "build_server", fake_build_server)
        assert cli.main(["serve", "--port", "0", "--profile", "small",
                         "--threshold", "0.8", "--batch-window-ms", "1.5",
                         "--cache-size", "128"]) == 0
        settings = captured["settings"]
        assert settings.port == 0
        assert settings.threshold == 0.8
        assert settings.cache_size == 128
        assert settings.batch_window_s == pytest.approx(0.0015)
        assert captured["served"]
        assert captured["closed"]
        assert captured["batcher_closed"]
        assert "shutting down" in capsys.readouterr().out


class TestPdnsCommand:
    def _populate(self, root):
        from repro.dns.message import RRType
        from repro.pdns.store import SegmentedPdnsStore

        store = SegmentedPdnsStore(root)
        store.ingest_rrs("2011-02-22", [
            ("a.x.example.com", RRType.A, "10.0.0.1"),
            ("b.x.example.com", RRType.A, "10.0.0.2")])
        store.ingest_rrs("2011-02-23", [
            ("c.y.example.net", RRType.A, "10.0.0.3")])
        return store

    def test_stats(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["pdns", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 segments" in out and "3 rows" in out

    def test_stats_is_default_action(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["pdns", "--dir", str(tmp_path)]) == 0
        assert "2 segments" in capsys.readouterr().out

    def test_compact(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["pdns", "compact", "--dir", str(tmp_path)]) == 0
        assert "compacted 2 segments" in capsys.readouterr().out
        assert len(list(tmp_path.glob("*.pdnsseg"))) == 1

    def test_prune(self, tmp_path, capsys):
        self._populate(tmp_path)
        assert cli.main(["pdns", "prune", "--dir", str(tmp_path),
                         "--max-bytes", "0"]) == 0
        assert "pruned 2 segments" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.pdnsseg"))

    def test_prune_requires_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["pdns", "prune", "--dir", str(tmp_path)])

    def test_env_knob_supplies_directory(self, tmp_path, capsys,
                                         monkeypatch):
        self._populate(tmp_path)
        monkeypatch.setenv("REPRO_PDNS_STORE", str(tmp_path))
        assert cli.main(["pdns", "stats"]) == 0
        assert "2 segments" in capsys.readouterr().out

    def test_no_directories_errors(self, monkeypatch):
        monkeypatch.delenv("REPRO_PDNS_STORE", raising=False)
        with pytest.raises(SystemExit):
            cli.main(["pdns", "stats"])

    def test_unknown_action_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["pdns", "wipe", "--dir", str(tmp_path)])

    def test_corrupt_segment_reported_not_fatal(self, tmp_path, capsys):
        self._populate(tmp_path)
        bad = sorted(tmp_path.glob("*.pdnsseg"))[0]
        bad.write_bytes(b"#garbage\n")
        assert cli.main(["pdns", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 segments" in out
        assert "corrupt segment skipped" in out
        assert bad.name in out

    def test_list_mentions_pdns(self, capsys):
        cli.main(["list"])
        assert "pdns" in capsys.readouterr().out
