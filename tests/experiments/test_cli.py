"""Tests for the command-line experiment runner."""

import pytest

from repro.experiments import cli
from repro.experiments.context import SMALL


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table1" in out and "sec6b" in out

    def test_catalogue_covers_every_paper_artifact(self):
        expected = {"fig2", "fig3", "fig4", "fig5", "fig7", "fig11",
                    "fig12", "fig13", "fig14", "fig15", "table1", "table2",
                    "sec6a", "sec6b", "sec6c"}
        assert expected <= set(cli.EXPERIMENTS)

    def test_unknown_experiment_errors(self):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_run_one_experiment(self, small_context, capsys, monkeypatch):
        # Reuse the session's SMALL context instead of building a new one.
        monkeypatch.setattr(cli, "get_context",
                            lambda profile: small_context)
        assert cli.main(["fig12", "--profile", "small"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "TPR" in out

    def test_run_table(self, small_context, capsys, monkeypatch):
        monkeypatch.setattr(cli, "get_context",
                            lambda profile: small_context)
        assert cli.main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_calibrate_command(self, small_context, capsys, monkeypatch):
        monkeypatch.setattr(cli, "get_context",
                            lambda profile: small_context)
        exit_code = cli.main(["calibrate"])
        out = capsys.readouterr().out
        assert "Calibration scorecard" in out
        assert exit_code == 0

    def test_list_mentions_calibrate(self, capsys):
        cli.main(["list"])
        assert "calibrate" in capsys.readouterr().out
