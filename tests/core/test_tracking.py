"""Tests for the cross-day zone tracker."""

import pytest

from repro.core.miner import DisposableZoneFinding
from repro.core.tracking import ZoneTracker


def finding(zone, depth=4, confidence=0.95, size=20):
    return DisposableZoneFinding(zone=zone, depth=depth,
                                 confidence=confidence, group_size=size)


class TestIngestion:
    def test_new_zone_counting(self):
        tracker = ZoneTracker()
        assert tracker.ingest_findings("d1", [finding("a.x.com"),
                                              finding("b.y.com")]) == 2
        assert tracker.ingest_findings("d2", [finding("a.x.com"),
                                              finding("c.z.com")]) == 1
        assert tracker.total_zones() == 3
        assert tracker.new_zones_per_day() == {"d1": 2, "d2": 1}

    def test_duplicate_day_rejected(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [])
        with pytest.raises(ValueError):
            tracker.ingest_findings("d1", [])

    def test_depth_distinguishes_groups(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("a.x.com", depth=3),
                                       finding("a.x.com", depth=4)])
        assert tracker.total_zones() == 2

    def test_first_last_seen_and_persistence(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("a.x.com", confidence=0.91)])
        tracker.ingest_findings("d2", [finding("a.x.com", confidence=0.99,
                                               size=50)])
        tracker.ingest_findings("d3", [])
        entry = tracker.entries()[0]
        assert entry.first_seen == "d1"
        assert entry.last_seen == "d2"
        assert entry.days_flagged == 2
        assert entry.max_confidence == 0.99
        assert entry.max_group_size == 50

    def test_contains(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("a.x.com", depth=4)])
        assert ("a.x.com", 4) in tracker
        assert ("a.x.com", 5) not in tracker


class TestAggregates:
    @pytest.fixture
    def tracker(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("t1.one.com"),
                                       finding("t2.one.com"),
                                       finding("t.two.org")])
        tracker.ingest_findings("d2", [finding("t1.one.com")])
        return tracker

    def test_total_2lds(self, tracker):
        # t1.one.com and t2.one.com share the 2LD one.com.
        assert tracker.total_zones() == 3
        assert tracker.total_2lds() == 2

    def test_persistent_and_wonders(self, tracker):
        persistent = {entry.zone for entry in tracker.persistent_zones()}
        wonders = {entry.zone for entry in tracker.one_day_wonders()}
        assert persistent == {"t1.one.com"}
        assert wonders == {"t2.one.com", "t.two.org"}

    def test_discovery_curve(self, tracker):
        assert tracker.discovery_curve() == [("d1", 3), ("d2", 3)]

    def test_days(self, tracker):
        assert tracker.days() == ["d1", "d2"]


class TestWithMiningResults:
    def test_ingest_daily_results(self, small_context):
        from repro.traffic.simulate import PAPER_DATES

        tracker = ZoneTracker()
        for date in PAPER_DATES:
            tracker.ingest(small_context.mining_result(date))
        assert tracker.total_zones() >= 15
        assert tracker.total_2lds() <= tracker.total_zones()
        # The big services persist across all six dates.
        assert len(tracker.persistent_zones(min_days=6)) >= 5
        curve = tracker.discovery_curve()
        # Cumulative discovery is non-decreasing.
        counts = [count for _, count in curve]
        assert counts == sorted(counts)
