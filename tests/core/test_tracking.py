"""Tests for the cross-day zone tracker."""

import pytest

from repro.core.miner import DisposableZoneFinding
from repro.core.tracking import ZoneTracker


def finding(zone, depth=4, confidence=0.95, size=20):
    return DisposableZoneFinding(zone=zone, depth=depth,
                                 confidence=confidence, group_size=size)


class TestIngestion:
    def test_new_zone_counting(self):
        tracker = ZoneTracker()
        assert tracker.ingest_findings("d1", [finding("a.x.com"),
                                              finding("b.y.com")]) == 2
        assert tracker.ingest_findings("d2", [finding("a.x.com"),
                                              finding("c.z.com")]) == 1
        assert tracker.total_zones() == 3
        assert tracker.new_zones_per_day() == {"d1": 2, "d2": 1}

    def test_duplicate_day_rejected(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [])
        with pytest.raises(ValueError):
            tracker.ingest_findings("d1", [])

    def test_depth_distinguishes_groups(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("a.x.com", depth=3),
                                       finding("a.x.com", depth=4)])
        assert tracker.total_zones() == 2

    def test_first_last_seen_and_persistence(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("a.x.com", confidence=0.91)])
        tracker.ingest_findings("d2", [finding("a.x.com", confidence=0.99,
                                               size=50)])
        tracker.ingest_findings("d3", [])
        entry = tracker.entries()[0]
        assert entry.first_seen == "d1"
        assert entry.last_seen == "d2"
        assert entry.days_flagged == 2
        assert entry.max_confidence == 0.99
        assert entry.max_group_size == 50

    def test_contains(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("a.x.com", depth=4)])
        assert ("a.x.com", 4) in tracker
        assert ("a.x.com", 5) not in tracker


class TestAggregates:
    @pytest.fixture
    def tracker(self):
        tracker = ZoneTracker()
        tracker.ingest_findings("d1", [finding("t1.one.com"),
                                       finding("t2.one.com"),
                                       finding("t.two.org")])
        tracker.ingest_findings("d2", [finding("t1.one.com")])
        return tracker

    def test_total_2lds(self, tracker):
        # t1.one.com and t2.one.com share the 2LD one.com.
        assert tracker.total_zones() == 3
        assert tracker.total_2lds() == 2

    def test_persistent_and_wonders(self, tracker):
        persistent = {entry.zone for entry in tracker.persistent_zones()}
        wonders = {entry.zone for entry in tracker.one_day_wonders()}
        assert persistent == {"t1.one.com"}
        assert wonders == {"t2.one.com", "t.two.org"}

    def test_discovery_curve(self, tracker):
        assert tracker.discovery_curve() == [("d1", 3), ("d2", 3)]

    def test_days(self, tracker):
        assert tracker.days() == ["d1", "d2"]


class TestRetentionWindow:
    def test_invalid_retain_days_rejected(self):
        with pytest.raises(ValueError):
            ZoneTracker(retain_days=0)

    def test_stale_zone_evicted_after_window(self):
        tracker = ZoneTracker(retain_days=2)
        tracker.ingest_findings("d1", [finding("a.x.com")])
        tracker.ingest_findings("d2", [finding("b.y.com")])
        assert ("a.x.com", 4) in tracker
        tracker.ingest_findings("d3", [finding("b.y.com")])
        # a.x.com was last flagged 2 ingests ago — outside the window.
        assert ("a.x.com", 4) not in tracker
        assert ("b.y.com", 4) in tracker
        assert tracker.evicted_zones() == 1

    def test_reflagging_keeps_zone_resident(self):
        tracker = ZoneTracker(retain_days=2)
        for day in ("d1", "d2", "d3", "d4"):
            tracker.ingest_findings(day, [finding("a.x.com")])
        assert ("a.x.com", 4) in tracker
        assert tracker.evicted_zones() == 0

    def test_cumulative_totals_survive_eviction(self):
        tracker = ZoneTracker(retain_days=1)
        tracker.ingest_findings("d1", [finding("a.x.com")])
        tracker.ingest_findings("d2", [finding("b.y.com")])
        tracker.ingest_findings("d3", [finding("c.z.com")])
        assert len(tracker) == 1               # resident window
        assert tracker.total_zones() == 3      # cumulative
        assert tracker.total_2lds() == 3

    def test_returning_zone_counts_again(self):
        # Documented upper-bound semantics: a zone that leaves the
        # window and returns is rediscovered.
        tracker = ZoneTracker(retain_days=1)
        tracker.ingest_findings("d1", [finding("a.x.com")])
        tracker.ingest_findings("d2", [])
        assert tracker.ingest_findings("d3", [finding("a.x.com")]) == 1
        assert tracker.total_zones() == 2

    def test_day_log_bounded_and_curve_cumulative(self):
        tracker = ZoneTracker(retain_days=2)
        tracker.ingest_findings("d1", [finding("a.x.com")])
        tracker.ingest_findings("d2", [finding("b.y.com")])
        tracker.ingest_findings("d3", [finding("c.z.com")])
        assert tracker.days() == ["d2", "d3"]
        assert tracker.new_zones_per_day() == {"d2": 1, "d3": 1}
        # The curve starts from the pruned d1 contribution.
        assert tracker.discovery_curve() == [("d2", 2), ("d3", 3)]

    def test_shared_2ld_retired_only_when_empty(self):
        tracker = ZoneTracker(retain_days=2)
        tracker.ingest_findings("d1", [finding("t1.one.com")])
        tracker.ingest_findings("d2", [finding("t2.one.com")])
        tracker.ingest_findings("d3", [finding("t2.one.com")])
        # t1 evicted, but one.com still has t2 resident: not retired.
        assert tracker.evicted_zones() == 1
        assert tracker.total_2lds() == 1

    def test_windowed_matches_unbounded_when_window_covers_all(self):
        bounded = ZoneTracker(retain_days=10)
        exact = ZoneTracker()
        days = [("d1", [finding("a.x.com"), finding("b.y.com")]),
                ("d2", [finding("a.x.com")]),
                ("d3", [finding("c.z.com")])]
        for day, findings in days:
            bounded.ingest_findings(day, findings)
            exact.ingest_findings(day, findings)
        assert bounded.total_zones() == exact.total_zones()
        assert bounded.total_2lds() == exact.total_2lds()
        assert bounded.discovery_curve() == exact.discovery_curve()
        assert bounded.days() == exact.days()


class TestWithMiningResults:
    def test_ingest_daily_results(self, small_context):
        from repro.traffic.simulate import PAPER_DATES

        tracker = ZoneTracker()
        for date in PAPER_DATES:
            tracker.ingest(small_context.mining_result(date))
        assert tracker.total_zones() >= 15
        assert tracker.total_2lds() <= tracker.total_zones()
        # The big services persist across all six dates.
        assert len(tracker.persistent_zones(min_days=6)) >= 5
        curve = tracker.discovery_curve()
        # Cumulative discovery is non-decreasing.
        counts = [count for _, count in curve]
        assert counts == sorted(counts)
