"""Tests for cross-network disposable-zone comparison."""

import pytest

from repro.core.crossnetwork import compare_networks


GROUPS_A = {("avqs.mcafee.com", 12), ("zen.spamhaus.org", 7),
            ("akamai.net", 4)}
GROUPS_B = {("avqs.mcafee.com", 12), ("zen.spamhaus.org", 7),
            ("local-cdn.net", 4)}
GROUPS_C = {("avqs.mcafee.com", 12), ("zen.spamhaus.org", 7)}


class TestCompareNetworks:
    def test_unanimous_quorum(self):
        report = compare_networks(
            {"ispA": GROUPS_A, "ispB": GROUPS_B, "ispC": GROUPS_C})
        global_groups = report.global_groups()
        assert global_groups == {("avqs.mcafee.com", 12),
                                 ("zen.spamhaus.org", 7)}

    def test_local_zones_identified(self):
        report = compare_networks(
            {"ispA": GROUPS_A, "ispB": GROUPS_B, "ispC": GROUPS_C})
        local = {entry.group for entry in report.locally_disposable()}
        assert ("akamai.net", 4) in local
        assert ("local-cdn.net", 4) in local

    def test_majority_quorum(self):
        report = compare_networks(
            {"ispA": GROUPS_A, "ispB": GROUPS_B}, quorum=0.5)
        # Everything seen in at least one of two networks with q=0.5.
        assert ("akamai.net", 4) in report.global_groups()

    def test_support_values(self):
        report = compare_networks(
            {"ispA": GROUPS_A, "ispB": GROUPS_B, "ispC": GROUPS_C})
        assert report.support_of("avqs.mcafee.com", 12) == pytest.approx(1.0)
        assert report.support_of("akamai.net", 4) == pytest.approx(1 / 3)
        assert report.support_of("ghost.org", 3) == 0.0

    def test_networks_recorded(self):
        report = compare_networks({"ispA": GROUPS_A, "ispB": GROUPS_B})
        entry = next(e for e in report.consensus
                     if e.group == ("akamai.net", 4))
        assert entry.networks == ("ispA",)

    def test_single_network_everything_global(self):
        report = compare_networks({"only": GROUPS_A})
        assert report.global_groups() == GROUPS_A

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compare_networks({})

    def test_rejects_bad_quorum(self):
        with pytest.raises(ValueError):
            compare_networks({"a": GROUPS_A}, quorum=0.0)


class TestCrossNetworkOnSimulators:
    def test_two_vantage_points_agree_on_services(self):
        """Two ISPs with different client bases watching the same
        Internet: the real disposable services are flagged in both,
        so they survive the unanimity quorum."""
        from repro.core.classifier import LadTreeClassifier
        from repro.core.features import FeatureExtractor
        from repro.core.hitrate import compute_hit_rates
        from repro.core.labeling import build_training_set
        from repro.core.miner import MinerConfig
        from repro.core.ranking import (DisposableZoneRanker,
                                        build_tree_for_day)
        from repro.traffic.simulate import (MeasurementDate,
                                            PopulationConfig,
                                            SimulatorConfig,
                                            TraceSimulator, WorkloadConfig)

        def mine_network(workload_seed):
            config = SimulatorConfig(
                cache_capacity=3_000,
                population=PopulationConfig(n_popular_sites=40,
                                            n_longtail_sites=400,
                                            n_extra_disposable=6,
                                            cdn_objects=1_500),
                workload=WorkloadConfig(events_per_day=8_000, n_clients=80,
                                        seed=workload_seed))
            simulator = TraceSimulator(config)
            day = simulator.run_day(MeasurementDate("probe", 313, 0.9))
            hit_rates = compute_hit_rates(day)
            tree = build_tree_for_day(day)
            extractor = FeatureExtractor(tree, hit_rates)
            training = build_training_set(simulator.labeled_zones(), tree,
                                          extractor)
            classifier = LadTreeClassifier().fit(training.X, training.y)
            ranker = DisposableZoneRanker(classifier, MinerConfig())
            return ranker.run_day(day, hit_rates).groups

        report = compare_networks({"ispA": mine_network(1),
                                   "ispB": mine_network(2)})
        global_zones = {zone for zone, _ in report.global_groups()}
        assert any("mcafee" in zone for zone in global_zones)
        assert len(report.global_groups()) >= 5
