"""Tests for Algorithm 1 — the disposable zone miner."""

import numpy as np
import pytest

from repro.core.classifier.base import BinaryClassifier
from repro.core.features import FeatureExtractor
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.core.miner import DisposableZoneMiner, MinerConfig
from repro.core.tree import DomainNameTree
from repro.dns.message import RRType


class ChrOracle(BinaryClassifier):
    """Stand-in classifier: disposable iff the group's CHR-zero
    fraction (feature 7) is above 0.9 — lets miner tests avoid
    training noise."""

    def fit(self, X, y):
        return self

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return np.where(X[:, 7] > 0.9, 0.99, 0.01)


def make_world(disposable_names, popular_names):
    tree = DomainNameTree(list(disposable_names) + list(popular_names))
    rates = {}
    for name in disposable_names:
        key = (name, RRType.A, "1.1.1.1")
        rates[key] = RRHitRate(key, 1, 1)      # one-shot: DHR 0
    for name in popular_names:
        key = (name, RRType.A, "2.2.2.2")
        rates[key] = RRHitRate(key, 50, 2)     # hot: DHR 0.96
    table = HitRateTable(rates, day="t")
    return tree, FeatureExtractor(tree, table)


DISPOSABLE = [f"h{i}x9qz.avqs.mcafee.com" for i in range(8)]
POPULAR = [f"{label}.bank.com" for label in
           ("www", "mail", "api", "img", "login", "shop")]


class TestMining:
    def test_finds_disposable_group(self):
        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        assert any(f.zone in ("mcafee.com", "avqs.mcafee.com") and f.depth == 4
                   for f in findings)

    def test_popular_zone_not_flagged(self):
        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        assert not any(f.zone == "bank.com" for f in findings)

    def test_flagged_nodes_are_decolored(self):
        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        miner.mine(tree, extractor)
        for name in DISPOSABLE:
            assert not tree.is_black(name)
        for name in POPULAR:
            assert tree.is_black(name)

    def test_small_groups_skipped(self):
        few = DISPOSABLE[:3]
        tree, extractor = make_world(few, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        assert findings == []
        assert miner.groups_skipped_small > 0

    def test_threshold_blocks_low_confidence(self):
        class Lukewarm(ChrOracle):
            def predict_proba(self, X):
                X = np.asarray(X, dtype=float)
                return np.where(X[:, 7] > 0.9, 0.8, 0.01)

        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(Lukewarm(),
                                    MinerConfig(threshold=0.9,
                                                min_group_size=5))
        assert miner.mine(tree, extractor) == []

    def test_nested_disposable_zone_found_by_recursion(self):
        """A disposable group deep under a zone whose adjacent label at
        the 2LD level is constant — only the recursive descent sees it."""
        nested = [f"s{i}zk2w.x7telemetry.probe.esoft.com" for i in range(6)]
        tree, extractor = make_world(nested, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        assert any(f.depth == 5 for f in findings)

    def test_mixed_zone_groups_classified_independently(self):
        """One zone with a disposable depth group and a popular depth
        group: only the disposable one is flagged."""
        disposable = [f"q{i}w8z1.t.mixed.com" for i in range(6)]
        popular = [f"{label}.mixed.com" for label in
                   ("www", "mail", "api", "img", "login")]
        tree = DomainNameTree(disposable + popular)
        rates = {}
        for name in disposable:
            key = (name, RRType.A, "1.1.1.1")
            rates[key] = RRHitRate(key, 1, 1)
        for name in popular:
            key = (name, RRType.A, "2.2.2.2")
            rates[key] = RRHitRate(key, 40, 1)
        extractor = FeatureExtractor(tree, HitRateTable(rates, day="t"))
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        flagged = {(f.zone, f.depth) for f in findings}
        assert ("mixed.com", 4) in flagged
        assert ("mixed.com", 3) not in flagged

    def test_mine_zone_with_no_black_descendants(self):
        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(ChrOracle())
        assert miner.mine_zone("empty.org", tree, extractor) == []

    def test_findings_as_groups(self):
        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        groups = DisposableZoneMiner.findings_as_groups(findings)
        assert all(isinstance(zone, str) and isinstance(depth, int)
                   for zone, depth in groups)

    def test_confidence_recorded(self):
        tree, extractor = make_world(DISPOSABLE, POPULAR)
        miner = DisposableZoneMiner(ChrOracle(), MinerConfig(min_group_size=5))
        findings = miner.mine(tree, extractor)
        assert findings
        assert all(f.confidence >= 0.9 for f in findings)


class TestMinerConfig:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            MinerConfig(threshold=0.0)
        with pytest.raises(ValueError):
            MinerConfig(threshold=1.5)

    def test_rejects_bad_group_size(self):
        with pytest.raises(ValueError):
            MinerConfig(min_group_size=0)

    def test_defaults_match_paper(self):
        config = MinerConfig()
        assert config.threshold == 0.9  # Algorithm 1 line 5
