"""Tests for the shared content-addressed artifact store."""

import os

import pytest

from repro.core.artifact_store import (ArtifactStore, CorruptArtifact,
                                       directory_stats, prune_directory)


def decode_utf8(data):
    return data.decode("utf-8")


class TestStoreLoad:
    def test_roundtrip_and_counters(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        assert store.load("k", decode_utf8) is None
        assert (store.hits, store.misses) == (0, 1)
        store.store_bytes("k", b"payload")
        assert store.load("k", decode_utf8) == "payload"
        assert (store.hits, store.misses) == (1, 1)

    def test_creates_root(self, tmp_path):
        root = tmp_path / "a" / "b"
        ArtifactStore(root, ".blob")
        assert root.is_dir()

    def test_invalid_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, "")
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path, ".tmp")

    def test_zero_length_blob_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.path_for("k").write_bytes(b"")
        assert store.load("k", decode_utf8) is None
        assert store.misses == 1

    def test_decoder_exception_in_miss_on_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("k", b"\xff\xfe")

        def decode_strict(data):
            return data.decode("ascii")

        assert store.load("k", decode_strict,
                          miss_on=(UnicodeDecodeError,)) is None
        assert store.misses == 1

    def test_undeclared_decoder_exception_propagates(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("k", b"data")

        def decode_broken(data):
            raise RuntimeError("unrelated bug")

        with pytest.raises(RuntimeError):
            store.load("k", decode_broken)

    def test_corrupt_artifact_from_decoder_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("k", b"data")

        def decode_validating(data):
            raise CorruptArtifact("bad checksum")

        assert store.load("k", decode_validating) is None


class TestAtomicity:
    def test_no_temp_files_after_publish(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("k", b"payload")
        assert list(tmp_path.glob("*.tmp")) == []

    def test_temp_cleaned_up_on_write_failure(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        with pytest.raises(TypeError):
            store.store_bytes("k", "not bytes")  # write() rejects str
        assert list(tmp_path.glob("*.tmp")) == []
        assert store.load("k", decode_utf8) is None

    def test_overwrite_is_last_writer_wins(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("k", b"first")
        store.store_bytes("k", b"second")
        assert store.load("k", decode_utf8) == "second"
        assert len(store) == 1


class TestAccounting:
    def test_keys_and_len(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("b", b"1")
        store.store_bytes("a", b"22")
        assert store.keys() == ["a", "b"]
        assert len(store) == 2

    def test_total_bytes(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("a", b"123")
        store.store_bytes("b", b"4567")
        assert store.total_bytes() == 7

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        store.store_bytes("k", b"x")
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert len(store) == 0

    def test_suffix_scoped(self, tmp_path):
        """Two stores sharing a directory see only their own blobs."""
        blobs = ArtifactStore(tmp_path, ".blob")
        other = ArtifactStore(tmp_path, ".other")
        blobs.store_bytes("k", b"1")
        other.store_bytes("k", b"22")
        assert len(blobs) == 1 and len(other) == 1
        assert blobs.total_bytes() == 1
        assert other.load("k", decode_utf8) == "22"


class TestPrune:
    def _store_with_ages(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        for index, key in enumerate(["old", "mid", "new"]):
            store.store_bytes(key, b"x" * 10)
            os.utime(store.path_for(key), (index, index))
        return store

    def test_prune_removes_lru_first(self, tmp_path):
        store = self._store_with_ages(tmp_path)
        removed = store.prune(max_bytes=20)
        assert removed == ["old"]
        assert sorted(store.keys()) == ["mid", "new"]

    def test_prune_to_zero_clears_store(self, tmp_path):
        store = self._store_with_ages(tmp_path)
        removed = store.prune(max_bytes=0)
        assert sorted(removed) == ["mid", "new", "old"]
        assert len(store) == 0

    def test_prune_noop_when_under_budget(self, tmp_path):
        store = self._store_with_ages(tmp_path)
        assert store.prune(max_bytes=1000) == []
        assert len(store) == 3

    def test_negative_budget_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path, ".blob")
        with pytest.raises(ValueError):
            store.prune(max_bytes=-1)

    def test_load_refreshes_recency(self, tmp_path):
        store = self._store_with_ages(tmp_path)
        # Touch "old" via load: it becomes most-recently-used, so a
        # prune to a one-blob budget keeps it and drops the others.
        assert store.load("old", decode_utf8) == "x" * 10
        removed = store.prune(max_bytes=10)
        assert sorted(removed) == ["mid", "new"]
        assert store.keys() == ["old"]


class TestDirectoryTools:
    def test_directory_stats_groups_by_suffix(self, tmp_path):
        ArtifactStore(tmp_path, ".fpdns2").store_bytes("a", b"12345")
        ArtifactStore(tmp_path, ".mining.json").store_bytes("b", b"67")
        stats = directory_stats(tmp_path)
        assert stats.n_artifacts == 2
        assert stats.total_bytes == 7
        assert dict((s, (c, n)) for s, c, n in stats.by_suffix) == {
            ".fpdns2": (1, 5), ".mining.json": (1, 2)}
        rendered = stats.render()
        assert ".fpdns2" in rendered and "7 bytes" in rendered

    def test_directory_stats_skips_temp_files(self, tmp_path):
        (tmp_path / "k.abc123.tmp").write_bytes(b"half-written")
        assert directory_stats(tmp_path).n_artifacts == 0

    def test_prune_directory_spans_suffixes(self, tmp_path):
        fpdns = ArtifactStore(tmp_path, ".fpdns2")
        mining = ArtifactStore(tmp_path, ".mining.json")
        fpdns.store_bytes("day", b"x" * 10)
        mining.store_bytes("result", b"y" * 10)
        os.utime(fpdns.path_for("day"), (1, 1))
        os.utime(mining.path_for("result"), (2, 2))
        removed = prune_directory(tmp_path, max_bytes=10)
        assert removed == ["day.fpdns2"]
        assert mining.load("result", decode_utf8) == "y" * 10
