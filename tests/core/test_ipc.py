"""Tests for repro.core.ipc — the zero-copy column transport.

Three contracts: the packed buffer round-trips every column exactly
(and rejects corrupt buffers loudly); both transports (shared memory,
artifact spill) deliver byte-identical payloads; and no shared-memory
segment survives a run, even when a producer or consumer raises —
segment leaks outlive the process and eat ``/dev/shm``, so cleanup is
part of the API contract, not a courtesy.
"""

from pathlib import Path

import numpy as np
import pytest

from repro.core.artifact_store import CorruptArtifact
from repro.core.ipc import (IPC_SHM, IPC_SPILL, ColumnChannel, ColumnsRef,
                            pack_columns, packed_nbytes, resolve_ipc_mode,
                            shared_memory_available, unpack_columns)

needs_shm = pytest.mark.skipif(not shared_memory_available(),
                               reason="no POSIX shared memory")


def sample_columns():
    return {
        "timestamps": np.array([0.5, 1.25, 3.0], dtype=np.float64),
        "name_ids": np.array([0, 1, 0], dtype=np.int32),
        "rcodes": np.array([0, 3], dtype=np.int16),
        "blob": np.frombuffer(b"alpha\x00beta", dtype=np.uint8),
        "empty": np.array([], dtype=np.int64),
    }


def shm_segments():
    """Names of live shared-memory segments created by this suite."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux fallback
        return []
    return [path.name for path in root.iterdir()
            if path.name.startswith("repro-test-")]


class TestPackedFormat:
    def test_roundtrip_exact(self):
        columns = sample_columns()
        unpacked = unpack_columns(pack_columns(columns))
        assert sorted(unpacked) == sorted(columns)
        for key, array in columns.items():
            assert unpacked[key].dtype == array.dtype
            assert unpacked[key].shape == array.shape
            np.testing.assert_array_equal(unpacked[key], array)

    def test_roundtrip_multidimensional(self):
        columns = {"grid": np.arange(12, dtype=np.int64).reshape(3, 4)}
        unpacked = unpack_columns(pack_columns(columns))
        np.testing.assert_array_equal(unpacked["grid"], columns["grid"])

    def test_views_are_zero_copy(self):
        data = pack_columns(sample_columns())
        unpacked = unpack_columns(data)
        # A view's buffer is the packed bytes themselves, not a copy.
        assert not unpacked["timestamps"].flags.owndata

    def test_packed_nbytes_upper_bounds_actual(self):
        columns = sample_columns()
        assert packed_nbytes(columns) >= len(pack_columns(columns))

    def test_bad_magic_rejected(self):
        with pytest.raises(CorruptArtifact, match="not a packed"):
            unpack_columns(b"NOPE" + b"\x00" * 64)

    def test_truncated_payload_rejected(self):
        data = pack_columns(sample_columns())
        with pytest.raises(CorruptArtifact, match="truncated"):
            unpack_columns(data[:-8])

    def test_corrupt_header_rejected(self):
        data = bytearray(pack_columns({"a": np.array([1], dtype=np.int8)}))
        data[16] ^= 0xFF  # somewhere inside the JSON header
        with pytest.raises(CorruptArtifact):
            unpack_columns(bytes(data))


class TestResolveMode:
    def test_explicit_modes_pass_through(self):
        assert resolve_ipc_mode(IPC_SHM) == IPC_SHM
        assert resolve_ipc_mode(IPC_SPILL) == IPC_SPILL

    def test_auto_resolves_to_a_concrete_mode(self):
        assert resolve_ipc_mode("auto") in (IPC_SHM, IPC_SPILL)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_ipc_mode("carrier-pigeon")

    def test_spill_requires_root(self):
        with pytest.raises(ValueError, match="spill_root"):
            ColumnChannel(IPC_SPILL)


class TestSpillTransport:
    def test_publish_fetch_release(self, tmp_path):
        channel = ColumnChannel(IPC_SPILL, spill_root=str(tmp_path))
        ref = channel.publish("repro-test-day0", sample_columns())
        assert ref.kind == IPC_SPILL
        assert ref.nbytes > 0
        fetched = channel.fetch(ref)
        np.testing.assert_array_equal(fetched["timestamps"],
                                      sample_columns()["timestamps"])
        ref.release()
        assert list(tmp_path.glob("*.cols")) == []
        ref.release()  # idempotent

    def test_map_yields_views(self, tmp_path):
        channel = ColumnChannel(IPC_SPILL, spill_root=str(tmp_path))
        ref = channel.publish("repro-test-day0", sample_columns())
        with channel.map(ref) as columns:
            np.testing.assert_array_equal(columns["name_ids"],
                                          sample_columns()["name_ids"])
        channel.release_published()


@needs_shm
class TestShmTransport:
    def test_publish_fetch_release(self):
        channel = ColumnChannel(IPC_SHM)
        ref = channel.publish("repro-test-shm0", sample_columns())
        try:
            assert ref.kind == IPC_SHM
            assert "repro-test-shm0" in shm_segments()
            fetched = channel.fetch(ref)
            for key, array in sample_columns().items():
                np.testing.assert_array_equal(fetched[key], array)
            # fetch() returns owned copies: usable after release.
            ref.release()
            assert "repro-test-shm0" not in shm_segments()
            np.testing.assert_array_equal(
                fetched["timestamps"], sample_columns()["timestamps"])
        finally:
            ref.release()  # idempotent; covers assertion-failure paths

    def test_release_published_frees_every_segment(self):
        channel = ColumnChannel(IPC_SHM)
        for index in range(3):
            channel.publish(f"repro-test-multi{index}", sample_columns())
        assert len([n for n in shm_segments()
                    if n.startswith("repro-test-multi")]) == 3
        channel.release_published()
        assert [n for n in shm_segments()
                if n.startswith("repro-test-multi")] == []

    def test_release_of_unknown_segment_is_noop(self):
        ColumnsRef(kind=IPC_SHM, token="repro-test-never-created",
                   nbytes=0).release()
