"""Tests for repro.core.hitrate — DHR/CHR computation (Eq. 1-2)."""

import numpy as np
import pytest

from repro.core.hitrate import HitRateTable, RRHitRate, compute_hit_rates
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def _entry(ts, name, rdata, client=1, side_ttl=300):
    return FpDnsEntry(timestamp=ts, client_id=client, qname=name,
                      qtype=RRType.A, rcode=RCode.NOERROR, ttl=side_ttl,
                      rdata=rdata)


def make_dataset(below_counts, above_counts):
    """Build a dataset with given per-name (below, above) answer counts."""
    ds = FpDnsDataset(day="test")
    for name, count in below_counts.items():
        for i in range(count):
            ds.below.append(_entry(float(i), name, "1.2.3.4"))
    for name, count in above_counts.items():
        for i in range(count):
            ds.above.append(_entry(float(i), name, "1.2.3.4", client=None))
    return ds


class TestRRHitRate:
    def test_paper_example(self):
        # Section III-C2: 5 total queries, 2 misses -> DHR 0.6, and the
        # CHR samples are [0.6, 0.6].
        rate = RRHitRate(key=("a.com", RRType.A, "1.1.1.1"),
                         queries_below=5, misses_above=2)
        assert rate.domain_hit_rate == pytest.approx(0.6)
        assert rate.chr_samples() == pytest.approx([0.6, 0.6])

    def test_all_hits(self):
        rate = RRHitRate(("a.com", RRType.A, "x"), 10, 0)
        assert rate.domain_hit_rate == 1.0
        assert rate.chr_samples() == []

    def test_all_misses(self):
        rate = RRHitRate(("a.com", RRType.A, "x"), 3, 3)
        assert rate.domain_hit_rate == 0.0
        assert rate.chr_samples() == [0.0, 0.0, 0.0]

    def test_zero_queries(self):
        rate = RRHitRate(("a.com", RRType.A, "x"), 0, 1)
        assert rate.domain_hit_rate == 0.0
        assert rate.hits == 0

    def test_hits_never_negative(self):
        rate = RRHitRate(("a.com", RRType.A, "x"), 2, 5)
        assert rate.hits == 0


class TestComputeHitRates:
    def test_counts(self):
        ds = make_dataset({"a.com": 5}, {"a.com": 2})
        table = compute_hit_rates(ds)
        rate = table.get(("a.com", RRType.A, "1.2.3.4"))
        assert rate.queries_below == 5
        assert rate.misses_above == 2
        assert rate.domain_hit_rate == pytest.approx(0.6)

    def test_above_only_record_included(self):
        ds = make_dataset({}, {"pre.com": 1})
        table = compute_hit_rates(ds)
        rate = table.get(("pre.com", RRType.A, "1.2.3.4"))
        assert rate is not None
        assert rate.domain_hit_rate == 0.0

    def test_nxdomain_entries_excluded(self):
        ds = make_dataset({"a.com": 2}, {"a.com": 1})
        ds.below.append(FpDnsEntry(0.0, 1, "missing.com", RRType.A,
                                   RCode.NXDOMAIN))
        table = compute_hit_rates(ds)
        assert len(table) == 1

    def test_distinct_rdata_distinct_records(self):
        ds = FpDnsDataset(day="t")
        ds.below.append(_entry(0, "a.com", "1.1.1.1"))
        ds.below.append(_entry(1, "a.com", "2.2.2.2"))
        table = compute_hit_rates(ds)
        assert len(table) == 2


class TestHitRateTable:
    @pytest.fixture
    def table(self):
        ds = make_dataset({"hot.com": 10, "cold.com": 1, "warm.com": 4},
                          {"hot.com": 1, "cold.com": 1, "warm.com": 2})
        return compute_hit_rates(ds)

    def test_len_and_contains(self, table):
        assert len(table) == 3
        assert ("hot.com", RRType.A, "1.2.3.4") in table

    def test_dhr_values(self, table):
        values = sorted(table.dhr_values().tolist())
        assert values == pytest.approx([0.0, 0.5, 0.9])

    def test_chr_values_weighted_by_misses(self, table):
        values = sorted(table.chr_values().tolist())
        # hot: 1 miss at 0.9; cold: 1 miss at 0.0; warm: 2 misses at 0.5
        assert values == pytest.approx([0.0, 0.5, 0.5, 0.9])

    def test_zero_dhr_fraction(self, table):
        assert table.zero_dhr_fraction() == pytest.approx(1 / 3)

    def test_chr_median(self, table):
        assert table.chr_median() == pytest.approx(0.5)

    def test_chr_zero_fraction(self, table):
        assert table.chr_zero_fraction() == pytest.approx(0.25)

    def test_for_names(self, table):
        subset = table.for_names(["hot.com"])
        assert len(subset) == 1
        assert subset[0].queries_below == 10

    def test_filter(self, table):
        subset = table.filter(lambda key: key[0].startswith("w"))
        assert len(subset) == 1

    def test_lookup_counts(self, table):
        assert sorted(table.lookup_counts().tolist()) == [1, 4, 10]

    def test_empty_selections(self, table):
        assert table.chr_median([]) == 0.0
        assert table.chr_zero_fraction([]) == 1.0
        assert table.zero_dhr_fraction([]) == 0.0


class TestSimulatedDayConsistency:
    def test_above_never_exceeds_below_plus_prefetch(self, tiny_day):
        """In a live simulated day, per-RR misses should not exceed
        queries except for boundary effects (entries cached late in the
        previous day)."""
        table = compute_hit_rates(tiny_day)
        records = table.records()
        assert records
        bad = [r for r in records if r.misses_above > r.queries_below]
        # Boundary artifacts must stay rare.
        assert len(bad) <= max(2, int(0.01 * len(records)))

    def test_mostly_low_hit_rates(self, tiny_day):
        """The long-tail phenomenon: most RRs have zero DHR."""
        table = compute_hit_rates(tiny_day)
        assert table.zero_dhr_fraction() > 0.5
