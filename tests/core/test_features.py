"""Tests for repro.core.features — the two feature families."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, FeatureExtractor, GroupFeatures
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.core.tree import DomainNameTree
from repro.dns.message import RRType


def make_table(spec):
    """spec: {name: (queries_below, misses_above)}"""
    rates = {}
    for name, (below, above) in spec.items():
        key = (name, RRType.A, "1.1.1.1")
        rates[key] = RRHitRate(key, below, above)
    return HitRateTable(rates, day="t")


@pytest.fixture
def disposable_setup():
    """A disposable-looking zone: random labels, one query each."""
    names = [f"x{i}qz9k{i}w.avqs.mcafee.com" for i in range(6)]
    tree = DomainNameTree(names)
    table = make_table({name: (1, 1) for name in names})
    return tree, table, names


@pytest.fixture
def popular_setup():
    """A popular-looking zone: www/mail labels, good hit rates."""
    names = [f"{label}.bank.com" for label in
             ("www", "mail", "api", "img", "login", "news")]
    tree = DomainNameTree(names)
    table = make_table({name: (100, 2) for name in names})
    return tree, table, names


class TestFeatureVector:
    def test_vector_order_matches_names(self, disposable_setup):
        tree, table, names = disposable_setup
        extractor = FeatureExtractor(tree, table)
        features = extractor.features_for("avqs.mcafee.com", 4, names)
        vector = features.vector()
        assert vector.shape == (len(FEATURE_NAMES),)
        assert vector[0] == features.label_set_size
        assert vector[6] == features.chr_median
        assert vector[7] == features.chr_zero_fraction

    def test_disposable_group_features(self, disposable_setup):
        tree, table, names = disposable_setup
        extractor = FeatureExtractor(tree, table)
        features = extractor.features_for("avqs.mcafee.com", 4, names)
        assert features.group_size == 6
        assert features.label_set_size == 6  # all labels distinct
        assert features.entropy_mean > 2.0   # random-ish labels
        assert features.chr_median == 0.0
        assert features.chr_zero_fraction == 1.0

    def test_popular_group_features(self, popular_setup):
        tree, table, names = popular_setup
        extractor = FeatureExtractor(tree, table)
        features = extractor.features_for("bank.com", 3, names)
        assert features.chr_median == pytest.approx(0.98)
        assert features.chr_zero_fraction == 0.0
        assert features.entropy_mean < 2.5  # short human labels

    def test_classes_are_separable(self, disposable_setup, popular_setup):
        tree_d, table_d, names_d = disposable_setup
        tree_p, table_p, names_p = popular_setup
        f_d = FeatureExtractor(tree_d, table_d).features_for(
            "avqs.mcafee.com", 4, names_d)
        f_p = FeatureExtractor(tree_p, table_p).features_for(
            "bank.com", 3, names_p)
        assert f_d.chr_zero_fraction > f_p.chr_zero_fraction
        assert f_d.chr_median < f_p.chr_median
        assert f_d.entropy_mean > f_p.entropy_mean


class TestAdjacentLabelSemantics:
    def test_features_use_adjacent_not_leftmost_label(self):
        """Figure 6 (ii): the leftmost labels of McAfee names are the
        constant '0'/'4e' prefix; the signal is the hash label adjacent
        to the zone."""
        names = [f"0.0.0.4e.h{i}x7q9zw2m.avqs.mcafee.com" for i in range(5)]
        tree = DomainNameTree(names)
        table = make_table({name: (1, 1) for name in names})
        extractor = FeatureExtractor(tree, table)
        depth = 9
        features = extractor.features_for("avqs.mcafee.com", depth, names)
        # Five distinct hash labels adjacent to the zone.
        assert features.label_set_size == 5
        assert features.entropy_min > 2.0

    def test_single_shared_adjacent_label(self):
        names = [f"{i}.a.example.com" for i in range(4)]
        tree = DomainNameTree(names)
        table = make_table({name: (1, 1) for name in names})
        extractor = FeatureExtractor(tree, table)
        features = extractor.features_for("example.com", 4, names)
        assert features.label_set_size == 1
        assert features.entropy_variance == 0.0


class TestAllGroupFeatures:
    def test_one_per_depth(self):
        names = ["a.z.com", "b.z.com", "1.a.z.com", "2.a.z.com"]
        tree = DomainNameTree(names)
        table = make_table({name: (1, 1) for name in names})
        extractor = FeatureExtractor(tree, table)
        all_features = extractor.all_group_features("z.com")
        assert [f.depth for f in all_features] == [3, 4]
        assert all_features[0].group_size == 2
        assert all_features[1].group_size == 2

    def test_no_groups_for_leaf_zone(self):
        tree = DomainNameTree(["a.z.com"])
        table = make_table({"a.z.com": (1, 1)})
        extractor = FeatureExtractor(tree, table)
        assert extractor.all_group_features("a.z.com") == []

    def test_group_with_no_hit_rate_data(self):
        """Names in the tree but absent from the hit-rate table get
        the degenerate CHR features (median 0, zero-fraction 1)."""
        names = ["q1.z.com", "q2.z.com"]
        tree = DomainNameTree(names)
        table = make_table({})
        extractor = FeatureExtractor(tree, table)
        features = extractor.features_for("z.com", 3, names)
        assert features.chr_median == 0.0
        assert features.chr_zero_fraction == 1.0


class TestEntropyMemo:
    def test_memoised_entropy_equals_uncached(self):
        from repro.core.features import _label_entropy
        from repro.core.names import shannon_entropy

        labels = ["www", "x7qz9kw", "cdn-edge-1", "a", "",
                  "0123456789abcdef", "www"]
        for label in labels:
            assert _label_entropy(label) == shannon_entropy(label)

    def test_feature_vectors_equal_uncached_path(self, disposable_setup):
        """The memo is invisible: vectors are bit-identical to calling
        shannon_entropy directly on every label."""
        from repro.core.names import shannon_entropy

        tree, table, names = disposable_setup
        extractor = FeatureExtractor(tree, table)
        cached = extractor.features_for("avqs.mcafee.com", 4, names)

        # Recompute the five entropy stats from raw shannon_entropy
        # over the group's adjacent labels (4th label from the right).
        adjacent = sorted({name.split(".")[-4] for name in names})
        entropies = np.array([shannon_entropy(label)
                              for label in adjacent], dtype=float)
        assert cached.entropy_max == float(entropies.max())
        assert cached.entropy_min == float(entropies.min())
        assert cached.entropy_mean == float(entropies.mean())
        assert cached.entropy_median == float(np.median(entropies))
        assert cached.entropy_variance == float(entropies.var())

    def test_memo_is_bounded(self):
        from repro.core.features import _label_entropy

        assert _label_entropy.cache_info().maxsize == 65_536
