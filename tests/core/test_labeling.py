"""Tests for training-set construction from labeled zones."""

import numpy as np
import pytest

from repro.core.features import FEATURE_NAMES, FeatureExtractor
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.core.labeling import LabeledZone, build_training_set
from repro.core.tree import DomainNameTree
from repro.dns.message import RRType


@pytest.fixture
def world():
    disposable = [f"r{i}k2qz9.avqs.mcafee.com" for i in range(6)]
    popular = [f"{label}.bank.com" for label in
               ("www", "mail", "api", "img", "login", "shop")]
    tree = DomainNameTree(disposable + popular)
    rates = {}
    for name in disposable:
        key = (name, RRType.A, "1.1.1.1")
        rates[key] = RRHitRate(key, 1, 1)
    for name in popular:
        key = (name, RRType.A, "2.2.2.2")
        rates[key] = RRHitRate(key, 30, 1)
    extractor = FeatureExtractor(tree, HitRateTable(rates, day="t"))
    return tree, extractor


class TestBuildTrainingSet:
    def test_rows_and_labels(self, world):
        tree, extractor = world
        labels = [
            LabeledZone("avqs.mcafee.com", disposable=True, depth=4),
            LabeledZone("bank.com", disposable=False),
        ]
        training = build_training_set(labels, tree, extractor,
                                      min_group_size=5)
        assert len(training) == 2
        assert training.n_positive == 1
        assert training.n_negative == 1
        assert training.X.shape == (2, len(FEATURE_NAMES))

    def test_depth_restriction(self, world):
        tree, extractor = world
        labels = [LabeledZone("avqs.mcafee.com", disposable=True, depth=99)]
        with pytest.raises(ValueError):
            build_training_set(labels, tree, extractor, min_group_size=5)

    def test_none_depth_labels_all_groups(self, world):
        tree, extractor = world
        # bank.com has one qualifying depth group (depth 3).
        labels = [LabeledZone("bank.com", disposable=False, depth=None)]
        training = build_training_set(labels, tree, extractor,
                                      min_group_size=5)
        assert len(training) == 1
        assert training.provenance == [("bank.com", 3)]

    def test_min_group_size_filters(self, world):
        tree, extractor = world
        labels = [LabeledZone("bank.com", disposable=False)]
        with pytest.raises(ValueError):
            build_training_set(labels, tree, extractor, min_group_size=50)

    def test_absent_zone_contributes_nothing(self, world):
        tree, extractor = world
        labels = [
            LabeledZone("bank.com", disposable=False),
            LabeledZone("ghost.org", disposable=True, depth=3),
        ]
        training = build_training_set(labels, tree, extractor,
                                      min_group_size=5)
        assert len(training) == 1

    def test_provenance_matches_rows(self, world):
        tree, extractor = world
        labels = [
            LabeledZone("avqs.mcafee.com", disposable=True, depth=4),
            LabeledZone("bank.com", disposable=False),
        ]
        training = build_training_set(labels, tree, extractor,
                                      min_group_size=5)
        assert len(training.provenance) == len(training)
        zones = {zone for zone, _ in training.provenance}
        assert zones == {"avqs.mcafee.com", "bank.com"}


class TestSimulatedLabeling:
    def test_simulator_labels_produce_balanced_set(self, tiny_simulator,
                                                   tiny_day):
        from repro.core.hitrate import compute_hit_rates
        from repro.core.ranking import build_tree_for_day

        tree = build_tree_for_day(tiny_day)
        extractor = FeatureExtractor(tree, compute_hit_rates(tiny_day))
        training = build_training_set(tiny_simulator.labeled_zones(), tree,
                                      extractor)
        assert training.n_positive >= 10
        assert training.n_negative >= 10
