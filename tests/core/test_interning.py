"""Tests for repro.core.interning — the interned name table and the
columnar day digest.

The digest is only useful if it is *provably* the same day the legacy
per-entry scans see, so most tests here are equalities against the
:class:`repro.core.records.FpDnsDataset` oracle, on both hand-built
edge-case datasets and a simulated day.
"""

import numpy as np

from repro.core.hitrate import compute_hit_rates, hit_rates_from_digest
from repro.core.interning import DayDigest, NameTable, build_day_digest
from repro.core.names import is_subdomain
from repro.core.groups import name_matches_groups
from repro.core.ranking import build_tree_for_day
from repro.core.suffix import default_suffix_list
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def _entry(ts, name, rdata, client=1, ttl=300, qtype=RRType.A,
           rcode=RCode.NOERROR):
    return FpDnsEntry(timestamp=ts, client_id=client, qname=name,
                      qtype=qtype, rcode=rcode, ttl=ttl, rdata=rdata)


def _tiny_dataset():
    ds = FpDnsDataset(day="t")
    ds.below.append(_entry(0.0, "a.example.com", "1.1.1.1"))
    ds.below.append(_entry(1.0, "a.example.com", "1.1.1.1", client=2))
    ds.below.append(_entry(2.0, "b.example.com", "2.2.2.2", ttl=None))
    ds.below.append(_entry(3.0, "missing.example.com", None,
                           rcode=RCode.NXDOMAIN, ttl=None))
    ds.above.append(_entry(0.5, "a.example.com", "1.1.1.1", client=None,
                           ttl=600))
    ds.above.append(_entry(2.5, "pre.example.com", "3.3.3.3", client=None))
    return ds


class TestNameTable:
    def test_ids_are_dense_in_first_appearance_order(self):
        table = NameTable()
        assert table.intern("b.com") == 0
        assert table.intern("a.com") == 1
        assert table.intern("b.com") == 0  # idempotent
        assert len(table) == 2
        assert table.names == ["b.com", "a.com"]

    def test_lookup_roundtrip(self):
        table = NameTable()
        nid = table.intern("x.example.com")
        assert table.name(nid) == "x.example.com"
        assert table.id_of("x.example.com") == nid
        assert table.id_of("unknown.com") is None
        assert "x.example.com" in table
        assert "unknown.com" not in table

    def test_names_property_returns_copy(self):
        table = NameTable()
        table.intern("a.com")
        table.names.append("mutated")
        assert table.names == ["a.com"]

    def test_label_counts_match_and_are_memoised(self):
        table = NameTable()
        for name in ("com", "example.com", "a.b.example.com"):
            table.intern(name)
        counts = table.label_counts()
        assert counts.tolist() == [1, 2, 4]
        assert table.label_counts() is counts

    def test_effective_2ld_ids_match_suffix_list(self):
        suffixes = default_suffix_list()
        table = NameTable()
        names = ["a.example.com", "example.com", "b.example.com",
                 "x.other.org", "com"]
        for name in names:
            table.intern(name)
        ids, zones = table.effective_2ld_ids(suffixes)
        for nid, name in enumerate(names):
            expected = suffixes.effective_2ld(name)
            if expected is None:
                assert ids[nid] == -1
            else:
                assert zones[ids[nid]] == expected
        # Memoised for the same suffix-list object.
        again, _ = table.effective_2ld_ids(suffixes)
        assert again is ids

    def test_subdomain_mask_matches_is_subdomain(self):
        table = NameTable()
        names = ["a.example.com", "example.com", "examplexcom.net",
                 "deep.a.example.com", "other.org"]
        for name in names:
            table.intern(name)
        zones = ("example.com", "missing.net")
        mask = table.subdomain_mask(zones)
        expected = [any(is_subdomain(name, zone) for zone in zones)
                    for name in names]
        assert mask.tolist() == expected
        assert table.subdomain_mask(zones) is mask  # memoised per key

    def test_match_mask_matches_name_matches_groups(self):
        table = NameTable()
        names = ["x.cdn.example.com", "cdn.example.com", "y.example.com",
                 "x.cdn.other.org"]
        for name in names:
            table.intern(name)
        groups = {("cdn.example.com", 4), ("other.org", 4)}
        mask = table.match_mask(groups)
        expected = [name_matches_groups(name, groups) for name in names]
        assert mask.tolist() == expected
        assert table.match_mask(groups) is mask


class TestDigestEqualsDataset:
    """Every dataset-level aggregate the digest re-derives must equal
    the legacy per-entry scan, on a simulated day."""

    def test_volumes(self, tiny_day):
        digest = build_day_digest(tiny_day)
        assert digest.below_volume() == tiny_day.below_volume()
        assert digest.above_volume() == tiny_day.above_volume()
        assert digest.nxdomain_volume_below() == \
            tiny_day.nxdomain_volume_below()
        assert digest.nxdomain_volume_above() == \
            tiny_day.nxdomain_volume_above()

    def test_domain_populations(self, tiny_day):
        digest = build_day_digest(tiny_day)
        assert digest.queried_domains() == tiny_day.queried_domains()
        assert digest.resolved_domains() == tiny_day.resolved_domains()
        assert digest.distinct_rrs() == tiny_day.distinct_rrs()
        assert digest.distinct_rr_count() == len(tiny_day.distinct_rrs())
        assert set(digest.distinct_rr_keys_ordered()) == \
            tiny_day.distinct_rrs()

    def test_per_rr_aggregates(self, tiny_day):
        digest = build_day_digest(tiny_day)
        assert digest.below_counts_by_rr() == tiny_day.below_counts_by_rr()
        assert digest.above_counts_by_rr() == tiny_day.above_counts_by_rr()
        assert digest.ttls_by_rr() == tiny_day.ttls_by_rr()

    def test_hit_rate_table_identical(self, tiny_day):
        legacy = compute_hit_rates(tiny_day)
        columnar = hit_rates_from_digest(build_day_digest(tiny_day))
        assert len(columnar) == len(legacy)
        assert columnar.day == legacy.day
        for rate in legacy.records():
            other = columnar.get(rate.key)
            assert other is not None
            assert other.queries_below == rate.queries_below
            assert other.misses_above == rate.misses_above

    def test_resolved_names_ordered(self, tiny_day):
        digest = build_day_digest(tiny_day)
        ordered = digest.resolved_names_ordered()
        assert set(ordered) == tiny_day.resolved_domains()
        assert len(ordered) == len(set(ordered))
        # Deterministic: sorted by interned id (first-appearance order).
        ids = [digest.names.id_of(name) for name in ordered]
        assert ids == sorted(ids)

    def test_mining_roots_match_tree_effective_2lds(self, tiny_day):
        digest = build_day_digest(tiny_day)
        suffixes = default_suffix_list()
        tree = build_tree_for_day(tiny_day)
        assert digest.mining_roots(suffixes) == tree.effective_2lds(suffixes)

    def test_digest_is_deterministic(self, tiny_day):
        first = build_day_digest(tiny_day)
        second = build_day_digest(tiny_day)
        assert first.names.names == second.names.names
        assert first.rr_keys == second.rr_keys
        assert np.array_equal(first.below.name_ids, second.below.name_ids)
        assert np.array_equal(first.above.rr_ids, second.above.rr_ids)


class TestDigestEdgeCases:
    def test_tiny_dataset_aggregates(self):
        ds = _tiny_dataset()
        digest = build_day_digest(ds)
        assert digest.queried_domains() == ds.queried_domains()
        assert digest.resolved_domains() == ds.resolved_domains()
        assert digest.below_counts_by_rr() == ds.below_counts_by_rr()
        assert digest.above_counts_by_rr() == ds.above_counts_by_rr()
        assert digest.ttls_by_rr() == ds.ttls_by_rr()
        assert digest.nxdomain_volume_below() == 1

    def test_ttl_above_max_wins_over_below(self):
        ds = FpDnsDataset(day="t")
        key = ("a.com", RRType.A, "1.1.1.1")
        ds.below.append(_entry(0.0, "a.com", "1.1.1.1", ttl=50))
        ds.above.append(_entry(0.1, "a.com", "1.1.1.1", client=None, ttl=100))
        ds.above.append(_entry(0.2, "a.com", "1.1.1.1", client=None, ttl=300))
        digest = build_day_digest(ds)
        assert digest.ttls_by_rr()[key] == 300
        assert digest.ttls_by_rr() == ds.ttls_by_rr()

    def test_ttl_below_fallback_is_first_observation(self):
        # The legacy dict fills on first TTL-bearing sight below; later
        # (even larger) below TTLs must not override it.
        ds = FpDnsDataset(day="t")
        key = ("a.com", RRType.A, "1.1.1.1")
        ds.below.append(_entry(0.0, "a.com", "1.1.1.1", ttl=None))
        ds.below.append(_entry(1.0, "a.com", "1.1.1.1", ttl=70))
        ds.below.append(_entry(2.0, "a.com", "1.1.1.1", ttl=500))
        digest = build_day_digest(ds)
        assert digest.ttls_by_rr()[key] == 70
        assert digest.ttls_by_rr() == ds.ttls_by_rr()

    def test_ttl_absent_when_never_recorded(self):
        ds = FpDnsDataset(day="t")
        ds.below.append(_entry(0.0, "a.com", "1.1.1.1", ttl=None))
        digest = build_day_digest(ds)
        assert digest.ttls_by_rr() == {}
        assert digest.ttls_by_rr() == ds.ttls_by_rr()

    def test_empty_day(self):
        digest = build_day_digest(FpDnsDataset(day="empty"))
        assert isinstance(digest, DayDigest)
        assert digest.below_volume() == 0
        assert digest.queried_domains() == set()
        assert digest.distinct_rrs() == set()
        assert digest.ttls_by_rr() == {}
        assert digest.mining_roots(default_suffix_list()) == []

    def test_client_counts_by_name(self):
        ds = FpDnsDataset(day="t")
        ds.below.append(_entry(0.0, "a.com", "1.1.1.1", client=1))
        ds.below.append(_entry(1.0, "a.com", "1.1.1.1", client=1))
        ds.below.append(_entry(2.0, "a.com", "1.1.1.1", client=9))
        ds.below.append(_entry(3.0, "b.com", "2.2.2.2", client=4))
        ds.below.append(_entry(4.0, "c.com", None, client=5,
                               rcode=RCode.NXDOMAIN, ttl=None))
        digest = build_day_digest(ds)
        name_ids, counts = digest.client_counts_by_name()
        by_name = {digest.names.name(int(nid)): int(count)
                   for nid, count in zip(name_ids, counts)}
        assert by_name == {"a.com": 2, "b.com": 1}

    def test_match_counts_equal_legacy_sweeps(self, tiny_day):
        digest = build_day_digest(tiny_day)
        # Use a real zone from the day so the mask is non-trivial.
        some_name = sorted(tiny_day.resolved_domains())[0]
        zone = ".".join(some_name.split(".")[-2:])
        groups = {(zone, zone.count(".") + 2)}
        queried, resolved, rrs = digest.match_counts(groups)
        assert queried == sum(
            1 for name in tiny_day.queried_domains()
            if name_matches_groups(name, groups))
        assert resolved == sum(
            1 for name in tiny_day.resolved_domains()
            if name_matches_groups(name, groups))
        assert rrs == sum(
            1 for (name, _, _) in tiny_day.distinct_rrs()
            if name_matches_groups(name, groups))
