"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.core.classifier.cart import DecisionTreeClassifier


def xor_data(n=200, seed=0):
    """XOR — requires depth >= 2, separating CART from a single stump."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFitting:
    def test_solves_xor(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        accuracy = float(np.mean(model.predict(X) == y))
        assert accuracy > 0.95

    def test_depth_limit_respected(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert model.depth() <= 2

    def test_depth_one_cannot_solve_xor(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        accuracy = float(np.mean(model.predict(X) == y))
        assert accuracy < 0.8

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1, 1])
        model = DecisionTreeClassifier().fit(X, y)
        assert model.depth() == 0
        assert model.predict_proba(X).min() > 0.5

    def test_min_samples_leaf(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0] * 9 + [1])
        model = DecisionTreeClassifier(min_samples_leaf=3).fit(X, y)
        # Splitting off the single positive would violate the leaf
        # minimum; the isolated split must not exist.
        def leaves_ok(node):
            if node.is_leaf:
                return True
            return leaves_ok(node.left) and leaves_ok(node.right)
        assert leaves_ok(model._root)

    def test_probabilities_smoothed(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probabilities = model.predict_proba(X)
        assert probabilities.min() > 0.0
        assert probabilities.max() < 1.0

    def test_n_leaves_positive(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert model.n_leaves() >= 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict_proba(np.zeros((1, 2)))


class TestOnMinerFeatures:
    def test_separates_disposable_features(self, small_context):
        training = small_context.training_set()
        model = DecisionTreeClassifier(max_depth=5).fit(training.X,
                                                        training.y)
        from repro.core.classifier import roc_curve
        scores = model.predict_proba(training.X)
        assert roc_curve(training.y, scores).auc() > 0.95
