"""Tests for the weighted regression stump."""

import numpy as np
import pytest

from repro.core.classifier.stump import RegressionStump


class TestFit:
    def test_perfect_split(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        z = np.array([-1.0, -1.0, 1.0, 1.0])
        stump = RegressionStump().fit(X, z)
        assert 1.0 < stump.threshold < 10.0
        assert stump.left_value == pytest.approx(-1.0)
        assert stump.right_value == pytest.approx(1.0)

    def test_picks_informative_feature(self):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=100)
        signal = np.concatenate([np.zeros(50), np.ones(50)])
        X = np.column_stack([noise, signal])
        z = np.concatenate([-np.ones(50), np.ones(50)])
        stump = RegressionStump().fit(X, z)
        assert stump.feature == 1

    def test_weighted_fit_respects_weights(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        z = np.array([0.0, 0.0, 1.0, 5.0])
        # Heavy weight on the last point pulls the right mean up.
        w = np.array([1.0, 1.0, 1.0, 100.0])
        stump = RegressionStump().fit(X, z, w)
        assert stump.right_value > 3.0

    def test_constant_feature_predicts_mean(self):
        X = np.ones((5, 1))
        z = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        stump = RegressionStump().fit(X, z)
        assert stump.predict(X) == pytest.approx(np.full(5, 3.0))

    def test_rejects_zero_weights(self):
        X = np.ones((3, 1))
        z = np.zeros(3)
        with pytest.raises(ValueError):
            RegressionStump().fit(X, z, np.zeros(3))

    def test_max_candidates_subsampling_still_reasonable(self):
        rng = np.random.default_rng(1)
        X = rng.random((500, 1))
        z = (X[:, 0] > 0.5).astype(float)
        stump = RegressionStump().fit(X, z, max_candidates=8)
        assert 0.3 < stump.threshold < 0.7


class TestPredict:
    def test_threshold_boundary_goes_left(self):
        stump = RegressionStump(feature=0, threshold=1.0,
                                left_value=-1.0, right_value=1.0)
        X = np.array([[1.0], [1.0001]])
        assert stump.predict(X) == pytest.approx([-1.0, 1.0])

    def test_prediction_reduces_sse(self):
        rng = np.random.default_rng(2)
        X = rng.random((200, 3))
        z = np.where(X[:, 2] > 0.6, 2.0, -1.0) + rng.normal(0, 0.1, 200)
        stump = RegressionStump().fit(X, z)
        baseline = np.sum((z - z.mean()) ** 2)
        fitted = np.sum((z - stump.predict(X)) ** 2)
        assert fitted < baseline * 0.5
