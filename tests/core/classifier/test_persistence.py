"""Tests for LAD-tree persistence."""

import json

import numpy as np
import pytest

from repro.core.classifier import LadTreeClassifier
from repro.core.classifier.compiled import compile_lad_tree
from repro.core.classifier.persistence import (ModelFormatError,
                                               compiled_from_dict,
                                               compiled_to_dict,
                                               lad_tree_from_dict,
                                               lad_tree_to_dict,
                                               load_compiled_lad_tree,
                                               load_lad_tree,
                                               save_compiled_lad_tree,
                                               save_lad_tree)


@pytest.fixture
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(0, 0.4, (40, 3)),
                   rng.normal(2.5, 0.4, (40, 3))])
    y = np.array([0] * 40 + [1] * 40)
    return LadTreeClassifier(n_rounds=12).fit(X, y), X


class TestRoundTrip:
    def test_file_roundtrip_identical_predictions(self, fitted, tmp_path):
        model, X = fitted
        path = tmp_path / "model.json"
        save_lad_tree(model, path)
        loaded = load_lad_tree(path)
        assert loaded.predict_proba(X) == pytest.approx(
            model.predict_proba(X))
        assert loaded.decision_function(X) == pytest.approx(
            model.decision_function(X))

    def test_dict_roundtrip(self, fitted):
        model, X = fitted
        clone = lad_tree_from_dict(lad_tree_to_dict(model))
        assert clone.predict_proba(X) == pytest.approx(
            model.predict_proba(X))

    def test_hyperparameters_preserved(self, fitted, tmp_path):
        model, _ = fitted
        path = tmp_path / "model.json"
        save_lad_tree(model, path)
        loaded = load_lad_tree(path)
        assert loaded.n_rounds == model.n_rounds
        assert loaded.z_clip == model.z_clip
        assert len(loaded.stumps_) == len(model.stumps_)

    def test_document_is_plain_json(self, fitted, tmp_path):
        model, _ = fitted
        path = tmp_path / "model.json"
        save_lad_tree(model, path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro-lad-tree-v1"
        assert len(document["stumps"]) == 12


class TestCompiledRoundTrip:
    def test_file_roundtrip_bit_identical_scores(self, fitted, tmp_path):
        model, X = fitted
        compiled = compile_lad_tree(model)
        path = tmp_path / "compiled.json"
        save_compiled_lad_tree(compiled, path)
        loaded = load_compiled_lad_tree(path)
        assert np.array_equal(loaded.decision_function(X),
                              compiled.decision_function(X))
        assert loaded.prior_f == compiled.prior_f
        assert np.array_equal(loaded.features, compiled.features)

    def test_dict_roundtrip(self, fitted):
        model, X = fitted
        compiled = compile_lad_tree(model)
        clone = compiled_from_dict(compiled_to_dict(compiled))
        assert np.array_equal(clone.decision_function(X),
                              compiled.decision_function(X))

    def test_document_format_versioned(self, fitted, tmp_path):
        model, _ = fitted
        path = tmp_path / "compiled.json"
        save_compiled_lad_tree(compile_lad_tree(model), path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro-lad-tree-compiled-v1"
        assert len(document["features"]) == 12

    def test_load_compiled_accepts_stump_form(self, fitted, tmp_path):
        """``repro serve --model`` takes whichever artifact the
        training job produced; a stump document compiles on load."""
        model, X = fitted
        path = tmp_path / "stumps.json"
        save_lad_tree(model, path)
        loaded = load_compiled_lad_tree(path)
        assert np.array_equal(loaded.decision_function(X),
                              model.decision_function(X))


class TestCompiledErrors:
    def test_corrupt_file_names_path(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"format": "repro-lad-tree-compiled-v1", ')
        with pytest.raises(ModelFormatError, match="corrupt.json"):
            load_compiled_lad_tree(path)

    def test_unknown_format_names_path(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ModelFormatError, match="other.json"):
            load_compiled_lad_tree(path)

    def test_non_mapping_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ModelFormatError, match="not a mapping"):
            load_compiled_lad_tree(path)

    def test_wrong_format_dict_rejected(self):
        with pytest.raises(ModelFormatError):
            compiled_from_dict({"format": "repro-lad-tree-v1"})

    def test_malformed_arrays_rejected(self):
        with pytest.raises(ModelFormatError):
            compiled_from_dict({"format": "repro-lad-tree-compiled-v1",
                                "prior_f": 0.0,
                                "features": [0],
                                "thresholds": ["not-a-number"],
                                "left": [1.0], "right": [-1.0]})

    def test_truncated_arrays_rejected(self):
        with pytest.raises(ModelFormatError):
            compiled_from_dict({"format": "repro-lad-tree-compiled-v1",
                                "prior_f": 0.0,
                                "features": [0, 1],
                                "thresholds": [0.5],
                                "left": [1.0, 2.0], "right": [-1.0, -2.0]})


class TestErrors:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ModelFormatError):
            lad_tree_to_dict(LadTreeClassifier())

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelFormatError):
            lad_tree_from_dict({"format": "something-else"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ModelFormatError):
            lad_tree_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_malformed_stumps_rejected(self):
        with pytest.raises(ModelFormatError):
            lad_tree_from_dict({"format": "repro-lad-tree-v1",
                                "n_rounds": 2, "z_clip": 4.0,
                                "weight_floor": 1e-6, "prior_f": 0.0,
                                "stumps": [{"feature": 0}]})

    def test_empty_stumps_rejected(self):
        with pytest.raises(ModelFormatError):
            lad_tree_from_dict({"format": "repro-lad-tree-v1",
                                "n_rounds": 2, "z_clip": 4.0,
                                "weight_floor": 1e-6, "prior_f": 0.0,
                                "stumps": []})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(ModelFormatError):
            load_lad_tree(path)


class TestDeploymentFlow:
    def test_train_save_deploy_mine(self, small_context, tmp_path):
        """Train on the labeling day, persist, reload in a 'daily job'
        and verify the mining output matches the in-memory model."""
        from repro.core.miner import MinerConfig
        from repro.core.ranking import DisposableZoneRanker
        from repro.traffic.simulate import PAPER_DATES

        path = tmp_path / "deployed.json"
        save_lad_tree(small_context.classifier(), path)
        deployed = load_lad_tree(path)

        date = PAPER_DATES[1]
        ranker = DisposableZoneRanker(deployed, MinerConfig())
        result = ranker.run_day(small_context.dataset(date),
                                small_context.hit_rates(date))
        assert result.groups == small_context.mining_result(date).groups
