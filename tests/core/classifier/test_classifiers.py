"""Behavioural tests for all five classifiers behind one interface."""

import numpy as np
import pytest

from repro.core.classifier import (GaussianNaiveBayes, KNearestNeighbors,
                                   LadTreeClassifier,
                                   LogisticRegressionClassifier,
                                   NeuralNetworkClassifier)

ALL_CLASSIFIERS = [
    ("lad-tree", lambda: LadTreeClassifier(n_rounds=20)),
    ("naive-bayes", lambda: GaussianNaiveBayes()),
    ("knn", lambda: KNearestNeighbors(k=3)),
    ("logistic", lambda: LogisticRegressionClassifier(n_iterations=300)),
    ("mlp", lambda: NeuralNetworkClassifier(n_iterations=300)),
]


def separable_data(n=60, seed=0):
    rng = np.random.default_rng(seed)
    neg = rng.normal(loc=[0.0, 0.0], scale=0.4, size=(n // 2, 2))
    pos = rng.normal(loc=[3.0, 3.0], scale=0.4, size=(n // 2, 2))
    X = np.vstack([neg, pos])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


@pytest.mark.parametrize("name,factory", ALL_CLASSIFIERS)
class TestCommonBehaviour:
    def test_separable_problem_solved(self, name, factory):
        X, y = separable_data()
        model = factory().fit(X, y)
        predictions = model.predict(X)
        accuracy = float(np.mean(predictions == y))
        assert accuracy >= 0.95, f"{name} accuracy {accuracy}"

    def test_proba_in_unit_interval(self, name, factory):
        X, y = separable_data(seed=1)
        model = factory().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_unseen_points_follow_clusters(self, name, factory):
        X, y = separable_data(seed=2)
        model = factory().fit(X, y)
        probe = np.array([[0.1, -0.1], [3.2, 2.9]])
        probabilities = model.predict_proba(probe)
        assert probabilities[0] < 0.5 < probabilities[1]

    def test_classify_returns_confidence_and_class(self, name, factory):
        X, y = separable_data(seed=3)
        model = factory().fit(X, y)
        confidence, label = model.classify(np.array([3.0, 3.0]))
        assert label == "disposable"
        assert confidence >= 0.5
        confidence, label = model.classify(np.array([0.0, 0.0]))
        assert label == "non-disposable"
        assert confidence >= 0.5

    def test_predict_before_fit_raises(self, name, factory):
        model = factory()
        with pytest.raises(RuntimeError):
            model.predict_proba(np.zeros((1, 2)))

    def test_rejects_bad_labels(self, name, factory):
        X = np.zeros((4, 2))
        y = np.array([0, 1, 2, 1])
        with pytest.raises(ValueError):
            factory().fit(X, y)

    def test_rejects_mismatched_shapes(self, name, factory):
        X = np.zeros((4, 2))
        y = np.array([0, 1, 1])
        with pytest.raises(ValueError):
            factory().fit(X, y)


class TestLadTreeSpecifics:
    def test_decision_function_monotone_with_proba(self):
        X, y = separable_data(seed=4)
        model = LadTreeClassifier(n_rounds=15).fit(X, y)
        scores = model.decision_function(X)
        probabilities = model.predict_proba(X)
        order_s = np.argsort(scores)
        order_p = np.argsort(probabilities)
        assert np.array_equal(order_s, order_p)

    def test_more_rounds_do_not_hurt_training_fit(self):
        X, y = separable_data(seed=5)
        few = LadTreeClassifier(n_rounds=2).fit(X, y)
        many = LadTreeClassifier(n_rounds=40).fit(X, y)
        acc_few = np.mean(few.predict(X) == y)
        acc_many = np.mean(many.predict(X) == y)
        assert acc_many >= acc_few

    def test_rejects_bad_rounds(self):
        with pytest.raises(ValueError):
            LadTreeClassifier(n_rounds=0)

    def test_prior_only_prediction_matches_base_rate_side(self):
        """With one boosting round on uninformative features, the
        predicted probability should lean toward the majority class."""
        rng = np.random.default_rng(6)
        X = rng.normal(size=(100, 2))
        y = np.array([1] * 80 + [0] * 20)
        model = LadTreeClassifier(n_rounds=1).fit(X, y)
        assert model.predict_proba(X).mean() > 0.5


class TestKnnSpecifics:
    def test_k_capped_at_train_size(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        model = KNearestNeighbors(k=10).fit(X, y)
        assert model.predict_proba(np.array([[0.0]]))[0] < 0.5

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KNearestNeighbors(k=0)

    def test_nearest_neighbor_dominates(self):
        X = np.array([[0.0], [10.0]])
        y = np.array([0, 1])
        model = KNearestNeighbors(k=2).fit(X, y)
        assert model.predict_proba(np.array([[9.9]]))[0] > 0.5


class TestNaiveBayesSpecifics:
    def test_handles_constant_feature(self):
        X = np.array([[1.0, 0.0], [1.0, 1.0], [1.0, 5.0], [1.0, 6.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNaiveBayes().fit(X, y)
        probabilities = model.predict_proba(X)
        assert np.isfinite(probabilities).all()
        assert probabilities[0] < 0.5 < probabilities[-1]

    def test_prior_reflected_when_features_uninformative(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(100, 1))
        y = np.array([1] * 90 + [0] * 10)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.predict_proba(np.array([[0.0]]))[0] > 0.5


class TestMlpSpecifics:
    def test_deterministic_given_seed(self):
        X, y = separable_data(seed=8)
        a = NeuralNetworkClassifier(seed=3, n_iterations=100).fit(X, y)
        b = NeuralNetworkClassifier(seed=3, n_iterations=100).fit(X, y)
        assert a.predict_proba(X) == pytest.approx(b.predict_proba(X))

    def test_rejects_bad_hidden_units(self):
        with pytest.raises(ValueError):
            NeuralNetworkClassifier(hidden_units=0)
