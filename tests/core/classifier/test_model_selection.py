"""Tests for cross-validation, ROC and model-selection utilities."""

import numpy as np
import pytest

from repro.core.classifier import (GaussianNaiveBayes, LadTreeClassifier,
                                   confusion_at, cross_validate,
                                   evaluate_classifiers, roc_curve,
                                   stratified_kfold_indices)


class TestConfusion:
    def test_counts(self):
        y = np.array([1, 1, 0, 0])
        s = np.array([0.9, 0.2, 0.8, 0.1])
        c = confusion_at(y, s, 0.5)
        assert (c.tp, c.fn, c.fp, c.tn) == (1, 1, 1, 1)
        assert c.true_positive_rate == 0.5
        assert c.false_positive_rate == 0.5
        assert c.accuracy == 0.5
        assert c.precision == 0.5

    def test_threshold_inclusive(self):
        y = np.array([1])
        s = np.array([0.5])
        assert confusion_at(y, s, 0.5).tp == 1

    def test_degenerate_empty_classes(self):
        c = confusion_at(np.array([1, 1]), np.array([0.9, 0.8]), 0.5)
        assert c.false_positive_rate == 0.0  # no negatives present


class TestStratifiedKFold:
    def test_partition_is_complete_and_disjoint(self):
        y = np.array([0] * 17 + [1] * 13)
        folds = stratified_kfold_indices(y, 5, seed=1)
        all_indices = np.concatenate(folds)
        assert sorted(all_indices.tolist()) == list(range(30))

    def test_class_balance_per_fold(self):
        y = np.array([0] * 50 + [1] * 50)
        folds = stratified_kfold_indices(y, 10, seed=2)
        for fold in folds:
            positives = int(y[fold].sum())
            assert positives == 5

    def test_rejects_one_fold(self):
        with pytest.raises(ValueError):
            stratified_kfold_indices(np.array([0, 1]), 1)

    def test_deterministic_given_seed(self):
        y = np.array([0, 1] * 20)
        a = stratified_kfold_indices(y, 4, seed=9)
        b = stratified_kfold_indices(y, 4, seed=9)
        for fa, fb in zip(a, b):
            assert np.array_equal(fa, fb)


class TestRocCurve:
    def test_perfect_classifier_auc_one(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_curve(y, s).auc() == pytest.approx(1.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        s = rng.random(2000)
        assert roc_curve(y, s).auc() == pytest.approx(0.5, abs=0.05)

    def test_inverted_classifier_auc_near_zero(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_curve(y, s).auc() == pytest.approx(0.0)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, 200)
        s = rng.random(200)
        curve = roc_curve(y, s)
        assert np.all(np.diff(curve.tpr) >= 0)
        assert np.all(np.diff(curve.fpr) >= 0)

    def test_starts_at_origin_ends_at_one_one(self):
        y = np.array([0, 1, 0, 1])
        s = np.array([0.3, 0.6, 0.2, 0.9])
        curve = roc_curve(y, s)
        assert curve.tpr[0] == 0.0 and curve.fpr[0] == 0.0
        assert curve.tpr[-1] == 1.0 and curve.fpr[-1] == 1.0

    def test_operating_point(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.6, 0.7, 0.9])
        tpr, fpr = roc_curve(y, s).operating_point(0.65)
        assert tpr == pytest.approx(1.0)
        assert fpr == pytest.approx(0.0)


class TestCrossValidate:
    def test_every_sample_scored_once(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 2))
        X[:20] += 3
        y = np.array([1] * 20 + [0] * 20)
        result = cross_validate(lambda: GaussianNaiveBayes(), X, y,
                                n_folds=5, seed=4)
        assert result.y_score.shape == (40,)
        assert len(np.unique(result.fold_ids)) == 5

    def test_good_model_scores_well_out_of_fold(self):
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(0, 0.3, (30, 2)),
                       rng.normal(3, 0.3, (30, 2))])
        y = np.array([0] * 30 + [1] * 30)
        result = cross_validate(lambda: LadTreeClassifier(n_rounds=10),
                                X, y, n_folds=5, seed=6)
        assert result.auc() > 0.95
        assert result.confusion_at(0.5).accuracy > 0.9


class TestEvaluateClassifiers:
    def test_summary_keys(self):
        rng = np.random.default_rng(7)
        X = np.vstack([rng.normal(0, 0.3, (20, 2)),
                       rng.normal(3, 0.3, (20, 2))])
        y = np.array([0] * 20 + [1] * 20)
        summary = evaluate_classifiers(
            {"nb": lambda: GaussianNaiveBayes(),
             "lad": lambda: LadTreeClassifier(n_rounds=5)},
            X, y, n_folds=4, seed=8)
        assert set(summary) == {"nb", "lad"}
        for metrics in summary.values():
            assert {"auc", "tpr@0.5", "fpr@0.5", "tpr@0.9", "fpr@0.9",
                    "accuracy@0.5"} <= set(metrics)
            assert metrics["auc"] > 0.9
