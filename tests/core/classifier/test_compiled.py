"""The compiled LAD tree against its interpreted source model."""

import numpy as np
import pytest

from repro.core.classifier import LadTreeClassifier
from repro.core.classifier.compiled import CompiledLadTree, compile_lad_tree


@pytest.fixture
def fitted():
    rng = np.random.default_rng(7)
    X = np.vstack([rng.normal(0, 0.5, (60, 4)),
                   rng.normal(2.0, 0.5, (60, 4))])
    y = np.array([0] * 60 + [1] * 60)
    return LadTreeClassifier(n_rounds=15).fit(X, y), X


class TestEquivalence:
    def test_scores_bit_identical_to_interpreted(self, fitted):
        model, X = fitted
        compiled = compile_lad_tree(model)
        assert np.array_equal(compiled.decision_function(X),
                              model.decision_function(X))

    def test_probabilities_bit_identical(self, fitted):
        model, X = fitted
        compiled = compile_lad_tree(model)
        assert np.array_equal(compiled.predict_proba(X),
                              model.predict_proba(X))

    def test_batch_size_independent(self, fitted):
        """The determinism contract the serving engine rests on: a row
        scores the same alone as inside any batch."""
        model, X = fitted
        compiled = compile_lad_tree(model)
        whole = compiled.decision_function(X)
        one_by_one = np.array([
            compiled.decision_function(row.reshape(1, -1))[0]
            for row in X])
        assert np.array_equal(whole, one_by_one)

    def test_stump_arrays_mirror_model(self, fitted):
        model, _ = fitted
        compiled = compile_lad_tree(model)
        assert compiled.n_stumps == len(model.stumps_)
        assert compiled.prior_f == model.prior_f_
        for index, stump in enumerate(model.stumps_):
            assert compiled.features[index] == stump.feature
            assert compiled.thresholds[index] == stump.threshold


class TestValidation:
    def test_unfitted_model_rejected(self):
        with pytest.raises(ValueError, match="unfitted"):
            compile_lad_tree(LadTreeClassifier())

    def test_mismatched_array_lengths_rejected(self):
        with pytest.raises(ValueError, match="parallel"):
            CompiledLadTree(features=np.array([0, 1], dtype=np.int64),
                            thresholds=np.array([0.5]),
                            left_values=np.array([1.0, -1.0]),
                            right_values=np.array([-1.0, 1.0]),
                            prior_f=0.0)

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError, match="no stumps"):
            CompiledLadTree(features=np.array([], dtype=np.int64),
                            thresholds=np.array([]),
                            left_values=np.array([]),
                            right_values=np.array([]),
                            prior_f=0.0)

    def test_negative_feature_index_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            CompiledLadTree(features=np.array([-1], dtype=np.int64),
                            thresholds=np.array([0.5]),
                            left_values=np.array([1.0]),
                            right_values=np.array([-1.0]),
                            prior_f=0.0)

    def test_wrong_matrix_rank_rejected(self, fitted):
        model, X = fitted
        compiled = compile_lad_tree(model)
        with pytest.raises(ValueError, match="2-d"):
            compiled.decision_function(X[0])

    def test_too_few_columns_rejected(self, fitted):
        model, X = fitted
        compiled = compile_lad_tree(model)
        needed = int(compiled.features.max())
        with pytest.raises(ValueError, match="columns"):
            compiled.decision_function(X[:, :needed])
