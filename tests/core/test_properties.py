"""Property-based tests (hypothesis) on core data structures.

Invariants covered: name normalisation/NLD algebra, entropy bounds,
tree structure vs. insertion set, decoloring conservation, cache LRU
invariants, hit-rate algebra, CDF monotonicity, and ROC monotonicity.
"""

import math
import string

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.cdf import EmpiricalCdf
from repro.core.classifier.model_selection import roc_curve
from repro.core.hitrate import RRHitRate
from repro.core.names import (is_subdomain, label_count, labels, nld,
                              normalize, parent, shannon_entropy)
from repro.core.tree import DomainNameTree
from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType

# -- strategies ----------------------------------------------------------

label_st = st.text(alphabet=string.ascii_lowercase + string.digits,
                   min_size=1, max_size=12)
domain_st = st.lists(label_st, min_size=1, max_size=6).map(".".join)
domain_set_st = st.sets(domain_st, min_size=1, max_size=30)


class TestNameProperties:
    @given(domain_st)
    def test_normalize_idempotent(self, name):
        assert normalize(normalize(name)) == normalize(name)

    @given(domain_st)
    def test_labels_roundtrip(self, name):
        assert ".".join(labels(name)) == normalize(name)

    @given(domain_st, st.integers(min_value=1, max_value=8))
    def test_nld_is_suffix(self, name, n):
        suffix = nld(name, n)
        assert normalize(name).endswith(suffix)
        assert label_count(suffix) == min(n, label_count(name))

    @given(domain_st)
    def test_parent_chain_terminates_at_tld(self, name):
        current = normalize(name)
        for _ in range(label_count(name) - 1):
            current = parent(current)
            assert current is not None
        assert parent(current) is None

    @given(domain_st)
    def test_every_name_subdomain_of_all_its_suffixes(self, name):
        for n in range(1, label_count(name) + 1):
            assert is_subdomain(name, nld(name, n))

    @given(label_st)
    def test_entropy_bounds(self, label):
        entropy = shannon_entropy(label)
        assert 0.0 <= entropy <= math.log2(max(len(set(label)), 1)) + 1e-9

    @given(label_st, st.integers(min_value=2, max_value=5))
    def test_entropy_invariant_under_repetition(self, label, k):
        # Character distribution unchanged by repeating the string.
        assert shannon_entropy(label * k) == \
            __import__("pytest").approx(shannon_entropy(label))


class TestTreeProperties:
    @given(domain_set_st)
    def test_black_count_equals_insertions(self, names):
        tree = DomainNameTree(names)
        assert tree.black_count == len({normalize(n) for n in names})
        for name in names:
            assert tree.is_black(name)

    @given(domain_set_st)
    def test_depth_groups_partition_black_descendants(self, names):
        tree = DomainNameTree(names)
        for zone in list(names)[:5]:
            groups = tree.depth_groups(zone)
            flattened = [n for group in groups.values() for n in group]
            assert len(flattened) == len(set(flattened))
            for depth, group in groups.items():
                for member in group:
                    assert label_count(member) == depth
                    assert is_subdomain(member, zone)
                    assert normalize(member) != normalize(zone)

    @given(domain_set_st)
    def test_decolor_all_empties_tree(self, names):
        tree = DomainNameTree(names)
        changed = tree.decolor_group(list(names))
        assert changed == tree.black_count + changed  # black_count now 0
        assert tree.black_count == 0

    @given(domain_set_st)
    def test_adjacent_labels_are_real_labels(self, names):
        tree = DomainNameTree(names)
        for zone in list(names)[:3]:
            groups = tree.depth_groups(zone)
            for depth, group in groups.items():
                for adjacent, member in zip(
                        tree.adjacent_labels(zone, group), group):
                    assert adjacent in labels(member)


class TestCacheProperties:
    @given(st.lists(st.tuples(domain_st,
                              st.integers(min_value=1, max_value=600)),
                    min_size=1, max_size=60),
           st.integers(min_value=1, max_value=16))
    def test_capacity_never_exceeded(self, inserts, capacity):
        cache = LruDnsCache(capacity)
        for i, (name, ttl) in enumerate(inserts):
            response = Response(
                Question(name), RCode.NOERROR,
                [ResourceRecord(name, RRType.A, ttl, "1.1.1.1")])
            cache.insert(response, float(i))
            assert len(cache) <= capacity

    @given(st.lists(domain_st, min_size=1, max_size=40))
    def test_lookup_after_insert_within_ttl_hits(self, names):
        cache = LruDnsCache(1000)
        for i, name in enumerate(names):
            response = Response(
                Question(name), RCode.NOERROR,
                [ResourceRecord(name, RRType.A, 10_000, "1.1.1.1")])
            cache.insert(response, float(i))
        # The most recent insert is always still cached.
        last = names[-1]
        assert cache.lookup(Question(last), float(len(names))) is not None

    @given(st.integers(min_value=1, max_value=1000),
           st.integers(min_value=0, max_value=2000))
    def test_ttl_expiry_boundary(self, ttl, elapsed):
        cache = LruDnsCache(10)
        response = Response(
            Question("a.com"), RCode.NOERROR,
            [ResourceRecord("a.com", RRType.A, ttl, "1.1.1.1")])
        cache.insert(response, 0.0)
        hit = cache.lookup(Question("a.com"), float(elapsed)) is not None
        assert hit == (elapsed < ttl)


class TestHitRateProperties:
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_dhr_in_unit_interval(self, below, above):
        rate = RRHitRate(("a.com", RRType.A, "x"), below, above)
        assert 0.0 <= rate.domain_hit_rate <= 1.0
        assert rate.hits + min(above, below) == below or below == 0

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_chr_samples_count_equals_misses(self, below, above):
        rate = RRHitRate(("a.com", RRType.A, "x"), below, above)
        assert len(rate.chr_samples()) == above


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
                    min_size=1, max_size=200))
    def test_cdf_monotone_and_bounded(self, samples):
        cdf = EmpiricalCdf.from_samples(samples)
        xs = np.linspace(-0.5, 1.5, 41)
        values = cdf.evaluate(xs)
        assert np.all(np.diff(values) >= 0)
        assert values[0] == 0.0
        assert values[-1] == 1.0

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False),
                    min_size=1, max_size=100))
    def test_at_max_is_one(self, samples):
        cdf = EmpiricalCdf.from_samples(samples)
        assert cdf.at(max(samples)) == 1.0


class TestRocProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1),
                              st.floats(min_value=0.0, max_value=1.0,
                                        allow_nan=False)),
                    min_size=4, max_size=200))
    def test_roc_monotone_and_auc_bounded(self, pairs):
        y = np.array([label for label, _ in pairs])
        s = np.array([score for _, score in pairs])
        assume(y.sum() > 0 and (1 - y).sum() > 0)
        curve = roc_curve(y, s)
        assert np.all(np.diff(curve.tpr) >= -1e-12)
        assert np.all(np.diff(curve.fpr) >= -1e-12)
        assert -0.01 <= curve.auc() <= 1.01
