"""Tests for repro.core.names — domain-name utilities."""

import math

import pytest

from repro.core.names import (InvalidDomainError, is_subdomain, label_count,
                              labels, nld, normalize, parent, shannon_entropy)


class TestNormalize:
    def test_lowercases(self):
        assert normalize("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert normalize("  example.com ") == "example.com"

    def test_single_label(self):
        assert normalize("com") == "com"

    def test_rejects_empty(self):
        with pytest.raises(InvalidDomainError):
            normalize("")

    def test_rejects_bare_root(self):
        with pytest.raises(InvalidDomainError):
            normalize(".")

    def test_rejects_empty_interior_label(self):
        with pytest.raises(InvalidDomainError):
            normalize("a..example.com")

    def test_rejects_leading_dot(self):
        with pytest.raises(InvalidDomainError):
            normalize(".example.com")

    def test_rejects_non_string(self):
        with pytest.raises(InvalidDomainError):
            normalize(42)  # type: ignore[arg-type]


class TestLabels:
    def test_splits(self):
        assert labels("a.example.com") == ["a", "example", "com"]

    def test_single(self):
        assert labels("com") == ["com"]

    def test_count(self):
        assert label_count("www.example.com") == 3
        assert label_count("com") == 1


class TestNld:
    def test_paper_example(self):
        # Section III-B: d = a.example.com
        d = "a.example.com"
        assert nld(d, 1) == "com"
        assert nld(d, 2) == "example.com"
        assert nld(d, 3) == "a.example.com"

    def test_n_larger_than_labels_returns_whole(self):
        assert nld("example.com", 5) == "example.com"

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            nld("example.com", 0)

    def test_normalizes(self):
        assert nld("WWW.Example.COM.", 2) == "example.com"


class TestParent:
    def test_simple(self):
        assert parent("a.example.com") == "example.com"

    def test_tld_has_no_parent(self):
        assert parent("com") is None

    def test_two_labels(self):
        assert parent("example.com") == "com"


class TestIsSubdomain:
    def test_self(self):
        assert is_subdomain("example.com", "example.com")

    def test_child(self):
        assert is_subdomain("a.example.com", "example.com")

    def test_deep_descendant(self):
        assert is_subdomain("x.y.z.example.com", "example.com")

    def test_sibling_is_not(self):
        assert not is_subdomain("other.com", "example.com")

    def test_suffix_string_but_not_label_boundary(self):
        # notexample.com ends with "example.com" as a string but is
        # NOT a subdomain — the label boundary matters.
        assert not is_subdomain("notexample.com", "example.com")

    def test_parent_is_not_subdomain_of_child(self):
        assert not is_subdomain("example.com", "a.example.com")


class TestShannonEntropy:
    def test_empty_is_zero(self):
        assert shannon_entropy("") == 0.0

    def test_single_char_class_is_zero(self):
        assert shannon_entropy("aaaa") == 0.0

    def test_two_equal_classes_is_one_bit(self):
        assert shannon_entropy("abab") == pytest.approx(1.0)

    def test_uniform_four_classes(self):
        assert shannon_entropy("abcd") == pytest.approx(2.0)

    def test_monotone_with_diversity(self):
        # More character diversity -> higher entropy.
        assert shannon_entropy("aab") < shannon_entropy("abc")

    def test_random_looking_label_beats_www(self):
        assert shannon_entropy("13cfus2drmdq3j8cafidezr8l6") > shannon_entropy("www")

    def test_bounded_by_log_alphabet(self):
        label = "0a1b2c3d4e"
        assert shannon_entropy(label) <= math.log2(len(set(label))) + 1e-9
