"""Tests for the daily ranking pipeline (Figure 10)."""

import numpy as np
import pytest

from repro.core.classifier.base import BinaryClassifier
from repro.core.hitrate import compute_hit_rates
from repro.core.miner import MinerConfig
from repro.core.ranking import (DisposableZoneRanker, build_tree_for_day,
                                name_matches_groups)
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


class ChrOracle(BinaryClassifier):
    def fit(self, X, y):
        return self

    def predict_proba(self, X):
        X = np.asarray(X, dtype=float)
        return np.where(X[:, 7] > 0.9, 0.99, 0.01)


class TestNameMatchesGroups:
    def test_exact_depth_under_zone(self):
        groups = {("mcafee.com", 4)}
        assert name_matches_groups("x.avqs.mcafee.com", groups)

    def test_wrong_depth(self):
        groups = {("mcafee.com", 4)}
        assert not name_matches_groups("deep.x.avqs.mcafee.com", groups)

    def test_unrelated_zone(self):
        groups = {("mcafee.com", 4)}
        assert not name_matches_groups("x.y.other.com", groups)

    def test_deeper_zone_key(self):
        groups = {("avqs.mcafee.com", 4)}
        assert name_matches_groups("h4sh.avqs.mcafee.com", groups)

    def test_tld_never_matches(self):
        assert not name_matches_groups("com", {("mcafee.com", 4)})


class TestBuildTreeForDay:
    def test_only_resolved_names_are_black(self):
        ds = FpDnsDataset(day="t")
        ds.below.append(FpDnsEntry(0.0, 1, "ok.site.com", RRType.A,
                                   RCode.NOERROR, 300, "1.1.1.1"))
        ds.below.append(FpDnsEntry(1.0, 1, "missing.site.com", RRType.A,
                                   RCode.NXDOMAIN))
        tree = build_tree_for_day(ds)
        assert tree.is_black("ok.site.com")
        assert not tree.is_black("missing.site.com")


class TestRankerOnSimulatedDay:
    @pytest.fixture(scope="class")
    def result(self, tiny_day):
        ranker = DisposableZoneRanker(ChrOracle(),
                                      MinerConfig(min_group_size=5))
        return ranker.run_day(tiny_day)

    def test_counts_consistent(self, result, tiny_day):
        assert result.queried_domains == len(tiny_day.queried_domains())
        assert result.resolved_domains == len(tiny_day.resolved_domains())
        assert result.distinct_rrs == len(tiny_day.distinct_rrs())
        assert 0 <= result.disposable_resolved <= result.resolved_domains
        assert 0 <= result.disposable_queried <= result.queried_domains

    def test_finds_simulated_disposable_zones(self, result):
        zones = {finding.zone for finding in result.findings}
        # The big named services should surface via their 2LD or apex.
        assert any("mcafee" in zone for zone in zones)

    def test_fractions_in_unit_interval(self, result):
        for value in (result.queried_fraction, result.resolved_fraction,
                      result.rr_fraction):
            assert 0.0 <= value <= 1.0

    def test_resolved_fraction_at_least_queried(self, result):
        """Queried includes NXDOMAIN names that are never disposable,
        so the disposable share of resolved names is >= of queried."""
        assert result.resolved_fraction >= result.queried_fraction - 1e-9

    def test_ranked_findings_sorted(self, result):
        ranked = result.ranked_findings()
        confidences = [finding.confidence for finding in ranked]
        assert confidences == sorted(confidences, reverse=True)

    def test_disposable_2lds_subset_of_findings(self, result):
        assert len(result.disposable_2lds) <= max(len(result.findings), 1)

    def test_reuses_precomputed_hit_rates(self, tiny_day):
        ranker = DisposableZoneRanker(ChrOracle(),
                                      MinerConfig(min_group_size=5))
        hit_rates = compute_hit_rates(tiny_day)
        a = ranker.run_day(tiny_day, hit_rates)
        b = ranker.run_day(tiny_day)
        assert a.groups == b.groups
