"""Tests for repro.core.tree — the domain name tree of Section V-A1."""

import pytest

from repro.core.suffix import default_suffix_list
from repro.core.tree import DomainNameTree

# The paper's Figure 8 example.
FIG8_NAMES = [
    "a.example.com",
    "i.1.a.example.com",
    "2.a.example.com",
    "3.a.example.com",
    "4.b.example.com",
    "c.example.com",
]


@pytest.fixture
def fig8_tree():
    return DomainNameTree(FIG8_NAMES)


class TestConstruction:
    def test_black_count(self, fig8_tree):
        assert fig8_tree.black_count == len(FIG8_NAMES)

    def test_inserted_names_are_black(self, fig8_tree):
        for name in FIG8_NAMES:
            assert fig8_tree.is_black(name)

    def test_intermediate_nodes_are_white(self, fig8_tree):
        # b.example.com exists only as an ancestor of 4.b.example.com.
        assert fig8_tree.find("b.example.com") is not None
        assert not fig8_tree.is_black("b.example.com")
        assert not fig8_tree.is_black("example.com")
        assert not fig8_tree.is_black("1.a.example.com")

    def test_duplicate_insert_is_idempotent(self, fig8_tree):
        fig8_tree.add_domain("a.example.com")
        assert fig8_tree.black_count == len(FIG8_NAMES)

    def test_depth_matches_label_count(self, fig8_tree):
        assert fig8_tree.find("com").depth == 1
        assert fig8_tree.find("example.com").depth == 2
        assert fig8_tree.find("i.1.a.example.com").depth == 5

    def test_find_missing(self, fig8_tree):
        assert fig8_tree.find("missing.org") is None

    def test_contains(self, fig8_tree):
        assert "a.example.com" in fig8_tree
        assert "nope.example.com" not in fig8_tree

    def test_len_counts_all_nodes(self, fig8_tree):
        # com, example.com, a, b, c, 1, 2, 3, 4, i == 10 nodes.
        assert len(fig8_tree) == 10


class TestDepthGroups:
    def test_fig8_groups(self, fig8_tree):
        # Paper: G3={a,c}, G4={2.a, 3.a, 4.b}, G5={i.1.a}.
        groups = fig8_tree.depth_groups("example.com")
        assert sorted(groups[3]) == ["a.example.com", "c.example.com"]
        assert sorted(groups[4]) == ["2.a.example.com", "3.a.example.com",
                                     "4.b.example.com"]
        assert groups[5] == ["i.1.a.example.com"]

    def test_groups_of_missing_zone(self, fig8_tree):
        assert fig8_tree.depth_groups("other.com") == {}

    def test_groups_exclude_zone_itself(self):
        tree = DomainNameTree(["example.com", "a.example.com"])
        groups = tree.depth_groups("example.com")
        assert 2 not in groups
        assert groups[3] == ["a.example.com"]

    def test_groups_after_decolor(self, fig8_tree):
        # Figure 9: decoloring a and c removes G3.
        fig8_tree.decolor_group(["a.example.com", "c.example.com"])
        groups = fig8_tree.depth_groups("example.com")
        assert 3 not in groups
        assert len(groups[4]) == 3


class TestAdjacentLabels:
    def test_paper_l_sets(self, fig8_tree):
        # Paper: L3 = {a, c}, L4 = {a, b}, L5 = {a}.
        groups = fig8_tree.depth_groups("example.com")
        assert sorted(set(fig8_tree.adjacent_labels(
            "example.com", groups[3]))) == ["a", "c"]
        assert sorted(set(fig8_tree.adjacent_labels(
            "example.com", groups[4]))) == ["a", "b"]
        assert sorted(set(fig8_tree.adjacent_labels(
            "example.com", groups[5]))) == ["a"]

    def test_preserves_duplicates(self, fig8_tree):
        groups = fig8_tree.depth_groups("example.com")
        labels = fig8_tree.adjacent_labels("example.com", groups[4])
        assert sorted(labels) == ["a", "a", "b"]

    def test_rejects_non_descendant(self, fig8_tree):
        with pytest.raises(ValueError):
            fig8_tree.adjacent_labels("example.com", ["x.other.com"])

    def test_rejects_zone_itself(self, fig8_tree):
        with pytest.raises(ValueError):
            fig8_tree.adjacent_labels("example.com", ["example.com"])


class TestDecolor:
    def test_decolor_black(self, fig8_tree):
        assert fig8_tree.decolor("a.example.com")
        assert not fig8_tree.is_black("a.example.com")
        assert fig8_tree.black_count == len(FIG8_NAMES) - 1

    def test_decolor_white_returns_false(self, fig8_tree):
        assert not fig8_tree.decolor("b.example.com")

    def test_decolor_missing_returns_false(self, fig8_tree):
        assert not fig8_tree.decolor("zzz.example.com")

    def test_decolor_keeps_node_in_tree(self, fig8_tree):
        fig8_tree.decolor("a.example.com")
        assert fig8_tree.find("a.example.com") is not None

    def test_decolor_group_count(self, fig8_tree):
        changed = fig8_tree.decolor_group(
            ["a.example.com", "b.example.com", "c.example.com"])
        assert changed == 2  # b was already white


class TestZoneQueries:
    def test_children_of(self, fig8_tree):
        children = set(fig8_tree.children_of("example.com"))
        assert children == {"a.example.com", "b.example.com",
                            "c.example.com"}

    def test_children_of_missing(self, fig8_tree):
        assert fig8_tree.children_of("zzz.org") == []

    def test_effective_2lds(self, fig8_tree):
        suffixes = default_suffix_list()
        assert fig8_tree.effective_2lds(suffixes) == ["example.com"]

    def test_effective_2lds_multiple(self):
        tree = DomainNameTree(["a.foo.com", "b.bar.co.uk"])
        suffixes = default_suffix_list()
        assert tree.effective_2lds(suffixes) == ["bar.co.uk", "foo.com"]

    def test_black_names(self, fig8_tree):
        assert sorted(fig8_tree.black_names()) == sorted(FIG8_NAMES)


class TestSubtreeCounters:
    """The maintained ``subtree_black`` counters behind the O(1)
    ``has_black_descendant`` and the pruned traversals."""

    def _counter_invariant(self, node):
        expected = (1 if node.black else 0) + sum(
            self._counter_invariant(child)
            for child in node.children.values())
        assert node.subtree_black == expected
        return expected

    def test_counters_after_construction(self, fig8_tree):
        assert self._counter_invariant(fig8_tree.root) == len(FIG8_NAMES)

    def test_counters_after_decolor(self, fig8_tree):
        fig8_tree.decolor("2.a.example.com")
        fig8_tree.decolor("c.example.com")
        self._counter_invariant(fig8_tree.root)
        assert fig8_tree.root.subtree_black == len(FIG8_NAMES) - 2

    def test_duplicate_insert_does_not_inflate(self, fig8_tree):
        before = fig8_tree.root.subtree_black
        fig8_tree.add_domain("a.example.com")
        assert fig8_tree.root.subtree_black == before

    def test_decolor_white_does_not_deflate(self, fig8_tree):
        before = fig8_tree.root.subtree_black
        fig8_tree.decolor("b.example.com")  # white intermediate node
        assert fig8_tree.root.subtree_black == before

    def test_has_black_descendant(self, fig8_tree):
        assert fig8_tree.find("a.example.com").has_black_descendant()
        # Leaf: black itself but nothing below.
        assert not fig8_tree.find("c.example.com").has_black_descendant()
        # White node over black descendants.
        assert fig8_tree.find("b.example.com").has_black_descendant()

    def test_has_black_descendant_tracks_decolor(self, fig8_tree):
        node = fig8_tree.find("b.example.com")
        assert node.has_black_descendant()
        fig8_tree.decolor("4.b.example.com")
        assert not node.has_black_descendant()

    def test_children_with_black_filters(self, fig8_tree):
        fig8_tree.decolor("4.b.example.com")
        children = fig8_tree.children_with_black("example.com")
        # b.example.com's subtree went all-white: pruned.
        assert set(children) == {"a.example.com", "c.example.com"}
        assert set(children) <= set(fig8_tree.children_of("example.com"))

    def test_iter_black_descendants_matches_filtered_walk(self, fig8_tree):
        fig8_tree.decolor("3.a.example.com")
        node = fig8_tree.find("a.example.com")
        pruned = [n.name for n in node.iter_black_descendants()]
        unpruned = [n.name for n in node.iter_descendants() if n.black]
        assert pruned == unpruned

    def test_depth_groups_after_full_decolor(self, fig8_tree):
        for name in FIG8_NAMES:
            fig8_tree.decolor(name)
        assert fig8_tree.depth_groups("example.com") == {}
        assert fig8_tree.children_with_black("example.com") == []
