"""Tests for repro.core.mining_pipeline — parallel calendar mining and
the on-disk miner-result cache.

The contract under test is *provable equivalence*: the digest pipeline
(`mine_day`), the calendar miner at every worker count, and a
cache-warm replay must all produce the legacy ``run_day`` result,
day for day.
"""

import json

import pytest

from repro.core.classifier import LadTreeClassifier
from repro.core.features import FeatureExtractor
from repro.core.hitrate import hit_rates_from_digest
from repro.core.interning import build_day_digest
from repro.core.labeling import build_training_set
from repro.core.miner import MinerConfig
from repro.core.mining_pipeline import (CalendarMiner, MinerResultCache,
                                        mine_day, miner_result_key)
from repro.core.ranking import DisposableZoneRanker, build_tree_from_digest
from repro.traffic.simulate import (PAPER_DATES, TraceSimulator)

from tests.conftest import TINY_DATE, tiny_simulator_config


@pytest.fixture(scope="module")
def calendar():
    """Three simulated days plus a classifier trained on a fourth."""
    dates = sorted([*PAPER_DATES[:3], TINY_DATE], key=lambda d: d.day_index)
    simulator = TraceSimulator(tiny_simulator_config())
    days = dict(zip([date.label for date in dates],
                    simulator.run_days(dates)))
    digest = build_day_digest(days[TINY_DATE.label])
    tree = build_tree_from_digest(digest)
    extractor = FeatureExtractor(tree, hit_rates_from_digest(digest))
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)
    datasets = [days[date.label] for date in PAPER_DATES[:3]]
    return datasets, classifier


@pytest.fixture(scope="module")
def oracle(calendar):
    """The legacy per-entry pipeline, day by day."""
    datasets, classifier = calendar
    ranker = DisposableZoneRanker(classifier, MinerConfig())
    return [ranker.run_day(dataset) for dataset in datasets]


def _assert_results_equal(reference, candidate):
    assert candidate.day == reference.day
    # Findings compared as sets: the legacy path orders them by `set`
    # iteration, the digest path by deterministic traversal order.
    assert set(candidate.findings) == set(reference.findings)
    assert candidate.queried_domains == reference.queried_domains
    assert candidate.resolved_domains == reference.resolved_domains
    assert candidate.distinct_rrs == reference.distinct_rrs
    assert candidate.disposable_queried == reference.disposable_queried
    assert candidate.disposable_resolved == reference.disposable_resolved
    assert candidate.disposable_rrs == reference.disposable_rrs


class TestMineDay:
    def test_equals_legacy_run_day(self, calendar, oracle):
        datasets, classifier = calendar
        for dataset, reference in zip(datasets, oracle):
            _assert_results_equal(reference, mine_day(dataset, classifier))

    def test_findings_nonempty_somewhere(self, calendar):
        # The simulated calendar plants disposable zones; the pipeline
        # equivalence tests above would pass vacuously if nothing were
        # ever mined.
        datasets, classifier = calendar
        assert any(mine_day(dataset, classifier).findings
                   for dataset in datasets)


class TestCalendarMiner:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_equals_oracle_at_every_worker_count(self, calendar, oracle,
                                                 n_workers):
        datasets, classifier = calendar
        miner = CalendarMiner(classifier, MinerConfig(), n_workers=n_workers)
        mined = miner.mine_calendar(datasets)
        assert len(mined) == len(oracle)
        for reference, candidate in zip(oracle, mined):
            _assert_results_equal(reference, candidate)

    def test_worker_counts_agree_exactly(self, calendar):
        datasets, classifier = calendar
        serial = CalendarMiner(classifier, MinerConfig(),
                               n_workers=1).mine_calendar(datasets)
        parallel = CalendarMiner(classifier, MinerConfig(),
                                 n_workers=2).mine_calendar(datasets)
        # Not just set-equal: identical lists, findings order included —
        # the digest pipeline is deterministic across processes.
        assert parallel == serial

    def test_rejects_bad_worker_count(self, calendar):
        _, classifier = calendar
        with pytest.raises(ValueError):
            CalendarMiner(classifier, n_workers=0)

    def test_rejects_bad_ipc_mode(self, calendar):
        _, classifier = calendar
        with pytest.raises(ValueError):
            CalendarMiner(classifier, ipc="telegraph")

    def test_empty_calendar(self, calendar):
        _, classifier = calendar
        assert CalendarMiner(classifier).mine_calendar([]) == []


class TestDigestDispatch:
    """The parallel miner ships digest columns, not datasets: every
    transport produces the serial result, and the dispatch reports the
    (column-sized) payload that actually crossed the pool."""

    def test_spill_transport_equals_serial(self, calendar, oracle):
        datasets, classifier = calendar
        miner = CalendarMiner(classifier, MinerConfig(), n_workers=2,
                              ipc="spill")
        mined = miner.mine_calendar(datasets)
        for reference, candidate in zip(oracle, mined):
            _assert_results_equal(reference, candidate)
        assert miner.last_ipc is not None
        assert miner.last_ipc.mode == "spill"
        assert miner.last_ipc.segments == len(datasets)
        assert miner.last_ipc.payload_bytes > 0

    def test_parallel_run_reports_ipc_payload(self, calendar):
        datasets, classifier = calendar
        miner = CalendarMiner(classifier, MinerConfig(), n_workers=2)
        miner.mine_calendar(datasets)
        assert miner.last_ipc is not None
        assert miner.last_ipc.mode in ("shm", "spill")
        assert miner.last_ipc.payload_bytes > 0

    def test_serial_run_reports_inline(self, calendar):
        datasets, classifier = calendar
        miner = CalendarMiner(classifier, MinerConfig(), n_workers=1)
        miner.mine_calendar(datasets)
        assert miner.last_ipc is not None
        assert miner.last_ipc.mode == "inline"
        assert miner.last_ipc.payload_bytes == 0


class TestWarmKeyFastPath:
    """Keying a warm columnar day must not materialise its entries —
    the whole point of carrying content keys in the fpDNS-v2 header."""

    def test_miner_result_key_skips_entry_materialisation(self, calendar):
        from repro.pdns.columnar import dumps_fpdns2, loads_fpdns2
        datasets, classifier = calendar
        warm = loads_fpdns2(dumps_fpdns2(datasets[0]))
        key = miner_result_key(warm, classifier, MinerConfig())
        assert key == miner_result_key(datasets[0], classifier,
                                       MinerConfig())
        # The lazy entry views were never touched.
        assert warm._below_entries is None
        assert warm._above_entries is None


class TestMinerResultCache:
    def test_cold_then_warm_replay(self, calendar, oracle, tmp_path):
        datasets, classifier = calendar
        cold_cache = MinerResultCache(tmp_path)
        cold = CalendarMiner(classifier, MinerConfig(),
                             cache=cold_cache).mine_calendar(datasets)
        assert cold_cache.misses == len(datasets)
        assert cold_cache.hits == 0
        assert len(cold_cache) == len(datasets)

        warm_cache = MinerResultCache(tmp_path)
        warm = CalendarMiner(classifier, MinerConfig(),
                             cache=warm_cache).mine_calendar(datasets)
        assert warm_cache.hits == len(datasets)
        assert warm_cache.misses == 0
        assert warm == cold
        for reference, candidate in zip(oracle, warm):
            _assert_results_equal(reference, candidate)

    def test_key_sensitivity(self, calendar):
        datasets, classifier = calendar
        key = miner_result_key(datasets[0], classifier, MinerConfig())
        assert key == miner_result_key(datasets[0], classifier, MinerConfig())
        assert key != miner_result_key(datasets[1], classifier, MinerConfig())
        assert key != miner_result_key(datasets[0], classifier,
                                       MinerConfig(threshold=0.8))

    def test_corrupt_entry_is_a_miss(self, calendar, tmp_path):
        datasets, classifier = calendar
        cache = MinerResultCache(tmp_path)
        result = mine_day(datasets[0], classifier)
        key = miner_result_key(datasets[0], classifier, MinerConfig())
        path = cache.store(key, result)
        path.write_text("{ not json")
        assert cache.load(key) is None
        assert cache.misses == 1

    def test_truncated_payload_is_a_miss(self, calendar, tmp_path):
        datasets, classifier = calendar
        cache = MinerResultCache(tmp_path)
        result = mine_day(datasets[0], classifier)
        key = miner_result_key(datasets[0], classifier, MinerConfig())
        path = cache.store(key, result)
        payload = json.loads(path.read_text())
        del payload["findings"]
        path.write_text(json.dumps(payload))
        assert cache.load(key) is None

    def test_roundtrip_preserves_result_exactly(self, calendar, tmp_path):
        datasets, classifier = calendar
        cache = MinerResultCache(tmp_path)
        result = mine_day(datasets[0], classifier)
        key = miner_result_key(datasets[0], classifier, MinerConfig())
        cache.store(key, result)
        replayed = cache.load(key)
        # Dataclass equality: float confidences round-trip exactly
        # through JSON's shortest-repr encoding.
        assert replayed == result
