"""Tests for repro.core.suffix — effective-TLD matching."""

import pytest

from repro.core.suffix import SuffixList, default_suffix_list


@pytest.fixture(scope="module")
def suffixes():
    return default_suffix_list()


class TestEffectiveTld:
    def test_generic_tld(self, suffixes):
        assert suffixes.effective_tld("www.example.com") == "com"

    def test_multi_label_suffix(self, suffixes):
        # Section III-B: co.uk is an effective TLD.
        assert suffixes.effective_tld("www.example.co.uk") == "co.uk"

    def test_com_cn(self, suffixes):
        assert suffixes.effective_tld("shop.foo.com.cn") == "com.cn"

    def test_unknown_tld_falls_back_to_rightmost(self, suffixes):
        assert suffixes.effective_tld("foo.zz") == "zz"

    def test_dyndns_zone_is_effective_tld(self, suffixes):
        # The paper's definition "corrects the omission of dynamic DNS
        # zones".
        assert suffixes.effective_tld("myhost.dyndns.org") == "dyndns.org"

    def test_wildcard_rule(self, suffixes):
        assert suffixes.effective_tld("foo.bar.ck") == "bar.ck"

    def test_wildcard_exception(self, suffixes):
        assert suffixes.effective_tld("foo.www.ck") == "ck"

    def test_name_that_is_a_tld(self, suffixes):
        assert suffixes.effective_tld("com") == "com"
        assert suffixes.is_effective_tld("co.uk")

    def test_contains_protocol(self, suffixes):
        assert "com" in suffixes
        assert "example.com" not in suffixes


class TestEffective2ld:
    def test_generic(self, suffixes):
        assert suffixes.effective_2ld("www.example.com") == "example.com"

    def test_multi_label(self, suffixes):
        assert suffixes.effective_2ld("a.b.example.co.uk") == "example.co.uk"

    def test_tld_itself_has_none(self, suffixes):
        assert suffixes.effective_2ld("com") is None
        assert suffixes.effective_2ld("co.uk") is None

    def test_exact_2ld(self, suffixes):
        assert suffixes.effective_2ld("example.com") == "example.com"

    def test_dyndns_2ld(self, suffixes):
        assert suffixes.effective_2ld("a.myhost.dyndns.org") == "myhost.dyndns.org"


class TestEffectiveNld:
    def test_nld_2(self, suffixes):
        assert suffixes.effective_nld("a.b.example.co.uk", 2) == "example.co.uk"

    def test_nld_3(self, suffixes):
        assert suffixes.effective_nld("a.b.example.com", 3) == "b.example.com"

    def test_nld_1_is_tld(self, suffixes):
        assert suffixes.effective_nld("www.example.com", 1) == "com"

    def test_too_short_returns_none(self, suffixes):
        assert suffixes.effective_nld("example.com", 3) is None

    def test_rejects_bad_n(self, suffixes):
        with pytest.raises(ValueError):
            suffixes.effective_nld("example.com", 0)


class TestCustomRules:
    def test_custom_list(self):
        custom = SuffixList(["com", "internal.corp"])
        assert custom.effective_tld("db.internal.corp") == "internal.corp"
        assert custom.effective_2ld("db.internal.corp") == "db.internal.corp"

    def test_extended(self, suffixes):
        extended = suffixes.extended(["fbcdn.net"])
        assert extended.effective_tld("x.dns.fbcdn.net") == "fbcdn.net"
        # Base list unchanged.
        assert suffixes.effective_tld("x.dns.fbcdn.net") == "net"

    def test_blank_rules_ignored(self):
        custom = SuffixList(["com", "", "  "])
        assert custom.effective_tld("a.com") == "com"

    def test_exception_rule_form(self):
        custom = SuffixList(["com", "*.kawasaki.jp", "!city.kawasaki.jp"])
        assert custom.effective_tld("foo.kawasaki.jp") == "foo.kawasaki.jp"
        assert custom.effective_tld("x.city.kawasaki.jp") == "kawasaki.jp"
