"""Tests for the zone profiler and LAD-tree attribution."""

import numpy as np
import pytest

from repro.core.classifier import LadTreeClassifier
from repro.core.features import FEATURE_NAMES
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.core.profile import ZoneProfiler, lad_tree_attribution
from repro.core.tree import DomainNameTree
from repro.dns.message import RRType


def make_world():
    disposable = [f"q{i}w8xz2.avqs.mcafee.com" for i in range(8)]
    popular = [f"{label}.bank.com" for label in
               ("www", "mail", "api", "img", "login", "shop")]
    tree = DomainNameTree(disposable + popular)
    rates = {}
    for name in disposable:
        key = (name, RRType.A, "1.1.1.1")
        rates[key] = RRHitRate(key, 1, 1)
    for name in popular:
        key = (name, RRType.A, "2.2.2.2")
        rates[key] = RRHitRate(key, 50, 2)
    return tree, HitRateTable(rates, day="t"), disposable, popular


def trained_classifier(tree, table, disposable_zone, popular_zone):
    from repro.core.features import FeatureExtractor
    extractor = FeatureExtractor(tree, table)
    d_groups = tree.depth_groups(disposable_zone)
    p_groups = tree.depth_groups(popular_zone)
    rows, labels = [], []
    for depth, group in d_groups.items():
        rows.append(extractor.features_for(disposable_zone, depth,
                                           group).vector())
        labels.append(1)
    for depth, group in p_groups.items():
        rows.append(extractor.features_for(popular_zone, depth,
                                           group).vector())
        labels.append(0)
    # Tiny training set: replicate rows with jitter for stability.
    X = np.vstack(rows * 10)
    y = np.array(labels * 10)
    rng = np.random.default_rng(0)
    X = X + rng.normal(0, 0.01, X.shape)
    return LadTreeClassifier(n_rounds=10).fit(X, y)


class TestAttribution:
    def test_contributions_sum_to_score(self):
        tree, table, disposable, popular = make_world()
        model = trained_classifier(tree, table, "avqs.mcafee.com",
                                   "bank.com")
        x = np.ones(len(FEATURE_NAMES))
        contributions = lad_tree_attribution(model, x)
        total = sum(contributions.values())
        score = float(model.decision_function(x.reshape(1, -1))[0])
        assert total == pytest.approx(score, abs=1e-9)

    def test_prior_always_present(self):
        tree, table, disposable, popular = make_world()
        model = trained_classifier(tree, table, "avqs.mcafee.com",
                                   "bank.com")
        contributions = lad_tree_attribution(model,
                                             np.zeros(len(FEATURE_NAMES)))
        assert "<prior>" in contributions

    def test_feature_names_used(self):
        tree, table, disposable, popular = make_world()
        model = trained_classifier(tree, table, "avqs.mcafee.com",
                                   "bank.com")
        contributions = lad_tree_attribution(model,
                                             np.zeros(len(FEATURE_NAMES)))
        known = set(FEATURE_NAMES) | {"<prior>"}
        assert set(contributions) <= known


class TestZoneProfiler:
    @pytest.fixture
    def profiler(self):
        tree, table, disposable, popular = make_world()
        model = trained_classifier(tree, table, "avqs.mcafee.com",
                                   "bank.com")
        return ZoneProfiler(tree, table, model)

    def test_disposable_zone_profiled_disposable(self, profiler):
        profile = profiler.profile("avqs.mcafee.com")
        assert len(profile.groups) == 1
        assert profile.groups[0].is_disposable
        assert profile.disposable_depths(threshold=0.5) == [4]

    def test_popular_zone_profiled_clean(self, profiler):
        profile = profiler.profile("bank.com")
        assert not profile.groups[0].is_disposable
        assert profile.disposable_depths() == []

    def test_sample_names_capped(self, profiler):
        profile = profiler.profile("avqs.mcafee.com", max_samples=2)
        assert len(profile.sample_names[4]) == 2

    def test_top_drivers_nonempty_for_lad(self, profiler):
        profile = profiler.profile("avqs.mcafee.com")
        drivers = profile.groups[0].top_drivers()
        assert drivers
        assert all(name != "<prior>" for name, _ in drivers)

    def test_render(self, profiler):
        text = profiler.profile("avqs.mcafee.com").render()
        assert "Zone profile" in text
        assert "disposable" in text
        assert "sample names" in text

    def test_empty_zone(self, profiler):
        profile = profiler.profile("nothing.org")
        assert profile.groups == []

    def test_non_lad_classifier_no_attribution(self):
        from repro.core.classifier import GaussianNaiveBayes
        tree, table, disposable, popular = make_world()
        from repro.core.features import FeatureExtractor
        extractor = FeatureExtractor(tree, table)
        groups = tree.depth_groups("avqs.mcafee.com")
        X = np.vstack([extractor.features_for("avqs.mcafee.com", d,
                                              g).vector()
                       for d, g in groups.items()] * 4)
        y = np.array([1] * len(X))
        y[: len(X) // 2] = 0  # arbitrary split just to fit
        model = GaussianNaiveBayes().fit(X, y)
        profiler = ZoneProfiler(tree, table, model)
        profile = profiler.profile("avqs.mcafee.com")
        assert profile.groups[0].attribution is None
        assert profile.groups[0].top_drivers() == []
