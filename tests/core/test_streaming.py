"""Tests for the streaming pipeline — must match the batch path."""

import numpy as np
import pytest

from repro.core.hitrate import compute_hit_rates
from repro.core.miner import MinerConfig
from repro.core.ranking import build_tree_for_day
from repro.core.streaming import StreamingDayBuilder, mine_stream
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def stream_of(dataset):
    for entry in dataset.below:
        yield "B", entry
    for entry in dataset.above:
        yield "A", entry


class TestEquivalenceWithBatch:
    def test_hit_rates_match(self, tiny_day):
        builder = StreamingDayBuilder(day=tiny_day.day)
        builder.observe_many(stream_of(tiny_day))
        _, streamed = builder.finish()
        batch = compute_hit_rates(tiny_day)
        assert len(streamed) == len(batch)
        for record in batch.records():
            other = streamed.get(record.key)
            assert other is not None
            assert other.queries_below == record.queries_below
            assert other.misses_above == record.misses_above

    def test_tree_matches(self, tiny_day):
        builder = StreamingDayBuilder()
        builder.observe_many(stream_of(tiny_day))
        tree, _ = builder.finish()
        batch_tree = build_tree_for_day(tiny_day)
        assert sorted(tree.black_names()) == sorted(batch_tree.black_names())

    def test_stats_match_dataset(self, tiny_day):
        builder = StreamingDayBuilder()
        builder.observe_many(stream_of(tiny_day))
        builder.finish()
        assert builder.stats.below_entries == tiny_day.below_volume()
        assert builder.stats.above_entries == tiny_day.above_volume()
        assert builder.stats.below_nxdomain == \
            tiny_day.nxdomain_volume_below()
        assert builder.stats.resolved_names == \
            len(tiny_day.resolved_domains())
        assert builder.stats.distinct_rrs >= len(tiny_day.distinct_rrs())


class TestMineStream:
    def test_streaming_mining_matches_batch(self, tiny_day, tiny_simulator):
        """The streaming miner must flag the same (zone, depth) groups
        as the batch ranker given the same classifier."""
        from repro.core.classifier.base import BinaryClassifier

        class ChrOracle(BinaryClassifier):
            def fit(self, X, y):
                return self

            def predict_proba(self, X):
                X = np.asarray(X, dtype=float)
                return np.where(X[:, 7] > 0.9, 0.99, 0.01)

        config = MinerConfig(min_group_size=5)
        findings, stats = mine_stream(stream_of(tiny_day), ChrOracle(),
                                      config, day=tiny_day.day)
        from repro.core.ranking import DisposableZoneRanker
        batch = DisposableZoneRanker(ChrOracle(), config).run_day(tiny_day)
        assert {f.as_group_key() for f in findings} == batch.groups
        assert stats.below_entries > 0


class TestBuilderGuards:
    def test_observe_after_finish_raises(self):
        builder = StreamingDayBuilder()
        builder.finish()
        entry = FpDnsEntry(0.0, 1, "a.com", RRType.A, RCode.NOERROR, 60,
                           "1.1.1.1")
        with pytest.raises(RuntimeError):
            builder.observe("B", entry)

    def test_bad_side_rejected(self):
        builder = StreamingDayBuilder()
        entry = FpDnsEntry(0.0, 1, "a.com", RRType.A, RCode.NOERROR, 60,
                           "1.1.1.1")
        with pytest.raises(ValueError):
            builder.observe("Q", entry)

    def test_file_stream_end_to_end(self, tiny_day, tmp_path):
        """Disk-backed streaming: save the day, mine from the file
        iterator without materialising the dataset."""
        from repro.pdns.io import iter_fpdns_entries, save_fpdns
        from repro.core.classifier.base import BinaryClassifier

        class AlwaysNo(BinaryClassifier):
            def fit(self, X, y):
                return self

            def predict_proba(self, X):
                return np.zeros(np.asarray(X).shape[0])

        path = tmp_path / "day.tsv.gz"
        save_fpdns(tiny_day, path)
        findings, stats = mine_stream(iter_fpdns_entries(path), AlwaysNo())
        assert findings == []
        assert stats.below_entries == tiny_day.below_volume()
