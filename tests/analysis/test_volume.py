"""Tests for the Figure 2 traffic-volume analysis."""

import numpy as np
import pytest

from repro.analysis.volume import (ZONE_GROUPS, day_summary, hourly_volumes,
                                   multi_day_series)
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def entry(name, ts, rcode=RCode.NOERROR, client=1):
    if rcode is RCode.NXDOMAIN:
        return FpDnsEntry(ts, client, name, RRType.A, rcode)
    return FpDnsEntry(ts, client, name, RRType.A, rcode, 300, "1.1.1.1")


@pytest.fixture
def dataset():
    ds = FpDnsDataset(day="t")
    ds.below = [
        entry("www.google.com", 10.0),
        entry("e1.g0.akamai.net", 20.0),
        entry("www.other.com", 5000.0),
        entry("nx.com", 5100.0, rcode=RCode.NXDOMAIN),
    ]
    ds.above = [
        entry("www.other.com", 5000.0, client=None),
        entry("nx.com", 5100.0, rcode=RCode.NXDOMAIN, client=None),
    ]
    return ds


class TestHourlyVolumes:
    def test_binning(self, dataset):
        series = hourly_volumes(dataset, "below", n_bins=2,
                                day_seconds=7200.0)
        assert series.total.tolist() == [2, 2]

    def test_component_series(self, dataset):
        series = hourly_volumes(dataset, "below", n_bins=1,
                                day_seconds=7200.0)
        assert series.nxdomain.tolist() == [1]
        assert series.google.tolist() == [1]
        assert series.akamai.tolist() == [1]

    def test_above_side(self, dataset):
        series = hourly_volumes(dataset, "above", n_bins=1,
                                day_seconds=7200.0)
        assert series.total.tolist() == [2]

    def test_rejects_bad_side(self, dataset):
        with pytest.raises(ValueError):
            hourly_volumes(dataset, "sideways")

    def test_empty_dataset(self):
        series = hourly_volumes(FpDnsDataset(day="e"), "below", n_bins=4)
        assert series.total.tolist() == [0, 0, 0, 0]

    def test_peak_and_trough(self, dataset):
        series = hourly_volumes(dataset, "below", n_bins=2,
                                day_seconds=7200.0)
        assert series.peak_bin() in (0, 1)


class TestDaySummary:
    def test_aggregates(self, dataset):
        summary = day_summary(dataset)
        assert summary.below_total == 4
        assert summary.above_total == 2
        assert summary.above_below_ratio == 0.5
        assert summary.nxdomain_share_below == 0.25
        assert summary.nxdomain_share_above == 0.5
        assert summary.google_akamai_share_below == 0.5

    def test_akamai_group_zones(self):
        # The footnote's full zone list must be covered.
        assert "edgesuite.net" in ZONE_GROUPS["akamai"]
        assert len(ZONE_GROUPS["akamai"]) == 8

    def test_multi_day(self, dataset):
        summaries = multi_day_series([dataset, dataset])
        assert len(summaries) == 2

    def test_empty_day(self):
        summary = day_summary(FpDnsDataset(day="e"))
        assert summary.above_below_ratio == 0.0
        assert summary.nxdomain_share_below == 0.0
