"""Tests for the long-tail analyses (Figure 3, Tables I-II)."""

import numpy as np
import pytest

from repro.analysis.tail import (dhr_cdf, lookup_volume_distribution,
                                 lookup_volume_tail_row, zero_dhr_tail_row)
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.dns.message import RRType


def make_table(spec, day="t"):
    """spec: {name: (below, above)}"""
    rates = {}
    for name, (below, above) in spec.items():
        key = (name, RRType.A, "1.1.1.1")
        rates[key] = RRHitRate(key, below, above)
    return HitRateTable(rates, day=day)


@pytest.fixture
def table():
    spec = {"hot.com": (500, 2), "warm.com": (12, 4)}
    # 8 disposable one-shot names.
    spec.update({f"x{i}.d.net": (1, 1) for i in range(8)})
    return make_table(spec)


GROUPS = {("d.net", 3)}


class TestDistributions:
    def test_lookup_volume_sorted_descending(self, table):
        volumes = lookup_volume_distribution(table)
        assert volumes[0] == 500
        assert np.all(np.diff(volumes) <= 0)

    def test_dhr_cdf(self, table):
        cdf = dhr_cdf(table)
        # 8 of 10 RRs have DHR 0.
        assert cdf.at(0.0) == pytest.approx(0.8)


class TestTableOne:
    def test_row(self, table):
        row = lookup_volume_tail_row(table, GROUPS)
        # Tail (<10 lookups): the 8 disposable names.
        assert row.tail_size == 8
        assert row.tail_fraction == pytest.approx(0.8)
        assert row.disposable_share_of_tail == pytest.approx(1.0)
        assert row.disposable_in_tail_fraction == pytest.approx(1.0)

    def test_custom_threshold(self, table):
        row = lookup_volume_tail_row(table, GROUPS, threshold=100)
        assert row.tail_size == 9  # warm.com joins the tail
        assert row.disposable_share_of_tail == pytest.approx(8 / 9)

    def test_no_disposable(self, table):
        row = lookup_volume_tail_row(table, set())
        assert row.disposable_share_of_tail == 0.0
        assert row.disposable_in_tail_fraction == 0.0


class TestTableTwo:
    def test_row(self, table):
        row = zero_dhr_tail_row(table, GROUPS)
        assert row.tail_size == 8
        assert row.disposable_share_of_tail == pytest.approx(1.0)

    def test_nonzero_dhr_outside_tail(self):
        spec = {"half.com": (2, 1)}          # DHR 0.5
        spec.update({"one.d.net": (1, 1)})   # DHR 0
        table = make_table(spec)
        row = zero_dhr_tail_row(table, GROUPS)
        assert row.tail_size == 1
        assert row.n_rrs == 2

    def test_empty_table(self):
        row = zero_dhr_tail_row(make_table({}), GROUPS)
        assert row.tail_fraction == 0.0
        assert row.n_rrs == 0
