"""Digest-based analysis functions against their per-entry oracles.

Every ``*_from_digest`` function in ``repro.analysis`` must reproduce
the legacy per-entry scan bit for bit on the same day — including
order-sensitive details such as the top-zone tie-break and the volume
bin edges.
"""

import numpy as np
import pytest

from repro.analysis.chrdist import chr_split, chr_split_from_digest
from repro.analysis.clients import (clients_per_name,
                                    clients_per_name_from_digest)
from repro.analysis.summary import (build_daily_report,
                                    build_daily_report_from_digest)
from repro.analysis.volume import (day_summary, day_summary_from_digest,
                                   hourly_volumes, hourly_volumes_from_digest)
from repro.core.hitrate import compute_hit_rates, hit_rates_from_digest
from repro.core.interning import build_day_digest


@pytest.fixture(scope="module")
def day_and_digest(tiny_day):
    return tiny_day, build_day_digest(tiny_day)


@pytest.fixture(scope="module")
def disposable_groups(tiny_day):
    """A plausible mined-group set over the day's own zones: the two
    busiest effective 2LDs at one depth below the zone apex."""
    from repro.core.suffix import default_suffix_list
    suffixes = default_suffix_list()
    zones = {}
    for name in tiny_day.resolved_domains():
        zone = suffixes.effective_2ld(name)
        if zone is not None:
            zones[zone] = zones.get(zone, 0) + 1
    busiest = sorted(zones, key=lambda z: (-zones[z], z))[:2]
    return {(zone, zone.count(".") + 2) for zone in busiest}


class TestVolumes:
    @pytest.mark.parametrize("side", ["below", "above"])
    def test_hourly_volumes_equal(self, day_and_digest, side):
        day, digest = day_and_digest
        legacy = hourly_volumes(day, side)
        columnar = hourly_volumes_from_digest(digest, side)
        assert columnar.day == legacy.day
        assert columnar.side == legacy.side
        assert columnar.bin_seconds == legacy.bin_seconds
        for column in ("total", "nxdomain", "google", "akamai"):
            assert np.array_equal(getattr(columnar, column),
                                  getattr(legacy, column)), column

    def test_hourly_volumes_custom_bins(self, day_and_digest):
        day, digest = day_and_digest
        legacy = hourly_volumes(day, "below", n_bins=7, day_seconds=3_600.0)
        columnar = hourly_volumes_from_digest(digest, "below", n_bins=7,
                                              day_seconds=3_600.0)
        assert np.array_equal(columnar.total, legacy.total)
        assert np.array_equal(columnar.google, legacy.google)

    def test_rejects_unknown_side(self, day_and_digest):
        _, digest = day_and_digest
        with pytest.raises(ValueError):
            hourly_volumes_from_digest(digest, "sideways")

    def test_day_summary_equal(self, day_and_digest):
        day, digest = day_and_digest
        assert day_summary_from_digest(digest) == day_summary(day)


class TestDailyReport:
    def test_report_equal_without_groups(self, day_and_digest):
        day, digest = day_and_digest
        hit_rates = compute_hit_rates(day)
        legacy = build_daily_report(day, hit_rates=hit_rates)
        columnar = build_daily_report_from_digest(
            digest, hit_rates=hit_rates_from_digest(digest))
        # Dataclass equality covers every field, including the
        # insertion-order-sensitive top_zones ranking.
        assert columnar == legacy

    def test_report_equal_with_groups(self, day_and_digest,
                                      disposable_groups):
        day, digest = day_and_digest
        legacy = build_daily_report(day, disposable_groups=disposable_groups)
        columnar = build_daily_report_from_digest(
            digest, disposable_groups=disposable_groups)
        assert columnar == legacy


class TestClients:
    def test_client_spread_equal(self, day_and_digest, disposable_groups):
        day, digest = day_and_digest
        legacy = clients_per_name(day, disposable_groups)
        columnar = clients_per_name_from_digest(digest, disposable_groups)
        assert columnar.day == legacy.day
        assert np.array_equal(columnar.disposable_counts,
                              legacy.disposable_counts)
        assert np.array_equal(columnar.other_counts, legacy.other_counts)
        assert columnar.disposable_counts.size > 0  # non-vacuous split


class TestChrSplit:
    def test_split_equal(self, day_and_digest, disposable_groups):
        day, digest = day_and_digest
        hit_rates = compute_hit_rates(day)
        legacy = chr_split(hit_rates, disposable_groups)
        columnar = chr_split_from_digest(digest, disposable_groups,
                                         hit_rates_from_digest(digest))
        assert columnar.day == legacy.day
        assert columnar.disposable_zero_fraction == \
            legacy.disposable_zero_fraction
        assert columnar.non_disposable_median == legacy.non_disposable_median
        assert np.array_equal(columnar.disposable.values,
                              legacy.disposable.values)
        assert np.array_equal(columnar.non_disposable.values,
                              legacy.non_disposable.values)

    def test_split_builds_table_when_omitted(self, day_and_digest,
                                             disposable_groups):
        day, digest = day_and_digest
        legacy = chr_split(compute_hit_rates(day), disposable_groups)
        columnar = chr_split_from_digest(digest, disposable_groups)
        assert columnar.disposable_zero_fraction == \
            legacy.disposable_zero_fraction
        assert columnar.non_disposable_median == legacy.non_disposable_median
