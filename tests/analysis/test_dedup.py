"""Tests for the Figure 5 / Figure 15 dedup-window analysis."""

import pytest

from repro.analysis.dedup import run_dedup_window
from repro.dns.message import RCode, RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def day(label, names):
    ds = FpDnsDataset(day=label)
    for name in names:
        ds.below.append(FpDnsEntry(0.0, 1, name, RRType.A, RCode.NOERROR,
                                   300, "1.1.1.1"))
    return ds


GROUPS = {("d.net", 3)}


class TestDedupWindow:
    def test_new_rr_series(self):
        datasets = [
            day("d1", ["www.a.com", "x1.d.net", "x2.d.net"]),
            day("d2", ["www.a.com", "x3.d.net"]),      # 1 new
            day("d3", ["www.a.com", "x3.d.net"]),      # 0 new
        ]
        report = run_dedup_window(datasets, GROUPS)
        assert [d.new_total for d in report.days] == [3, 1, 0]

    def test_disposable_split(self):
        datasets = [day("d1", ["www.a.com", "x1.d.net"])]
        report = run_dedup_window(datasets, GROUPS)
        assert report.days[0].new_disposable == 1
        assert report.days[0].new_non_disposable == 1
        assert report.days[0].disposable_share == 0.5

    def test_totals(self):
        datasets = [
            day("d1", ["www.a.com", "x1.d.net"]),
            day("d2", ["x2.d.net"]),
        ]
        report = run_dedup_window(datasets, GROUPS)
        assert report.total_unique_rrs == 3
        assert report.disposable_unique_rrs == 2
        assert report.disposable_fraction == pytest.approx(2 / 3)

    def test_google_akamai_attribution(self):
        datasets = [day("d1", ["www.google.com", "e1.g0.akamai.net",
                               "www.plain.com"])]
        report = run_dedup_window(datasets, set())
        assert report.days[0].new_google == 1
        assert report.days[0].new_akamai == 1

    def test_overall_decline(self):
        datasets = [
            day("d1", [f"n{i}.a.com" for i in range(10)]),
            day("d2", [f"n{i}.a.com" for i in range(13)]),  # 3 new
        ]
        report = run_dedup_window(datasets, set())
        assert report.overall_decline() == pytest.approx(0.7)

    def test_shared_database_accumulates(self):
        db = PassiveDnsDatabase()
        run_dedup_window([day("d1", ["a.x.com"])], set(), database=db)
        report = run_dedup_window([day("d2", ["a.x.com", "b.x.com"])],
                                  set(), database=db)
        assert report.days[0].new_total == 1
        assert len(db) == 2
