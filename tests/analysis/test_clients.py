"""Tests for the clients-per-name analysis."""

import numpy as np
import pytest

from repro.analysis.clients import clients_per_name
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def entry(name, client, rcode=RCode.NOERROR):
    if rcode is RCode.NXDOMAIN:
        return FpDnsEntry(0.0, client, name, RRType.A, rcode)
    return FpDnsEntry(0.0, client, name, RRType.A, rcode, 300, "1.1.1.1")


GROUPS = {("d.net", 3)}


class TestClientsPerName:
    def test_distinct_client_counting(self):
        ds = FpDnsDataset(day="t")
        ds.below = [entry("www.a.com", 1), entry("www.a.com", 2),
                    entry("www.a.com", 2), entry("x1.d.net", 7)]
        report = clients_per_name(ds, GROUPS)
        assert report.other_counts.tolist() == [2]
        assert report.disposable_counts.tolist() == [1]

    def test_nxdomain_ignored(self):
        ds = FpDnsDataset(day="t")
        ds.below = [entry("nx.com", 1, rcode=RCode.NXDOMAIN),
                    entry("www.a.com", 1)]
        report = clients_per_name(ds, GROUPS)
        assert report.other_counts.size == 1

    def test_medians_and_handful(self):
        ds = FpDnsDataset(day="t")
        for client in range(10):
            ds.below.append(entry("www.hot.com", client))
        ds.below.extend([entry("x1.d.net", 1), entry("x2.d.net", 2)])
        report = clients_per_name(ds, GROUPS)
        assert report.other_median == 10
        assert report.disposable_median == 1
        assert report.disposable_handful_fraction() == 1.0
        assert report.spread_ratio() == pytest.approx(10.0)

    def test_empty_classes(self):
        report = clients_per_name(FpDnsDataset(day="t"), GROUPS)
        assert report.disposable_median == 0.0
        assert report.spread_ratio() == 0.0

    def test_simulated_day_disposable_handful(self, tiny_simulator,
                                              tiny_day):
        """Section I: disposable names are queried by a handful of
        clients while popular names spread across the base."""
        report = clients_per_name(tiny_day,
                                  tiny_simulator.disposable_truth())
        assert report.disposable_handful_fraction(3) > 0.9
        assert report.other_counts.max() > 10
        assert report.spread_ratio() > 1.0
