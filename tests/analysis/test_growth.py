"""Tests for the Figure 13 growth-series analysis."""

import pytest

from repro.analysis.growth import growth_series
from repro.core.miner import DisposableZoneFinding
from repro.core.ranking import DailyMiningResult


def result(day, queried_frac, resolved_frac, rr_frac, n_zones=3):
    queried = 1000
    resolved = 800
    rrs = 1200
    findings = [DisposableZoneFinding(f"z{i}.zone{i}.com", 4, 0.95, 20)
                for i in range(n_zones)]
    return DailyMiningResult(
        day=day, findings=findings,
        queried_domains=queried, resolved_domains=resolved, distinct_rrs=rrs,
        disposable_queried=int(queried * queried_frac),
        disposable_resolved=int(resolved * resolved_frac),
        disposable_rrs=int(rrs * rr_frac))


class TestGrowthSeries:
    def test_points(self):
        series = growth_series([
            result("d1", 0.23, 0.27, 0.38),
            result("d2", 0.27, 0.37, 0.65),
        ])
        assert len(series.points) == 2
        assert series.first.day == "d1"
        assert series.last.day == "d2"
        assert series.queried_growth() == pytest.approx(0.04, abs=0.01)
        assert series.resolved_growth() == pytest.approx(0.10, abs=0.01)
        assert series.rr_growth() == pytest.approx(0.27, abs=0.01)

    def test_monotonic_check_with_slack(self):
        series = growth_series([
            result("d1", 0.23, 0.27, 0.38),
            result("d2", 0.25, 0.26, 0.45),  # tiny dip in resolved
            result("d3", 0.27, 0.37, 0.65),
        ])
        assert series.is_monotonic_increasing("resolved_fraction", slack=0.02)
        assert not series.is_monotonic_increasing("resolved_fraction",
                                                  slack=0.0)

    def test_zone_counts(self):
        series = growth_series([result("d1", 0.2, 0.2, 0.2, n_zones=5)])
        assert series.points[0].n_disposable_zones == 5
        assert series.total_distinct_zones() == 5

    def test_2ld_count(self):
        series = growth_series([result("d1", 0.2, 0.2, 0.2, n_zones=4)])
        assert series.points[0].n_disposable_2lds == 4
