"""Tests for the Figure 13 growth-series analysis."""

import pytest

from repro.analysis.growth import growth_series, store_growth_series
from repro.core.miner import DisposableZoneFinding
from repro.core.ranking import DailyMiningResult
from repro.dns.message import RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.store import SegmentedPdnsStore


def result(day, queried_frac, resolved_frac, rr_frac, n_zones=3):
    queried = 1000
    resolved = 800
    rrs = 1200
    findings = [DisposableZoneFinding(f"z{i}.zone{i}.com", 4, 0.95, 20)
                for i in range(n_zones)]
    return DailyMiningResult(
        day=day, findings=findings,
        queried_domains=queried, resolved_domains=resolved, distinct_rrs=rrs,
        disposable_queried=int(queried * queried_frac),
        disposable_resolved=int(resolved * resolved_frac),
        disposable_rrs=int(rrs * rr_frac))


class TestGrowthSeries:
    def test_points(self):
        series = growth_series([
            result("d1", 0.23, 0.27, 0.38),
            result("d2", 0.27, 0.37, 0.65),
        ])
        assert len(series.points) == 2
        assert series.first.day == "d1"
        assert series.last.day == "d2"
        assert series.queried_growth() == pytest.approx(0.04, abs=0.01)
        assert series.resolved_growth() == pytest.approx(0.10, abs=0.01)
        assert series.rr_growth() == pytest.approx(0.27, abs=0.01)

    def test_monotonic_check_with_slack(self):
        series = growth_series([
            result("d1", 0.23, 0.27, 0.38),
            result("d2", 0.25, 0.26, 0.45),  # tiny dip in resolved
            result("d3", 0.27, 0.37, 0.65),
        ])
        assert series.is_monotonic_increasing("resolved_fraction", slack=0.02)
        assert not series.is_monotonic_increasing("resolved_fraction",
                                                  slack=0.0)

    def test_zone_counts(self):
        series = growth_series([result("d1", 0.2, 0.2, 0.2, n_zones=5)])
        assert series.points[0].n_disposable_zones == 5
        assert series.total_distinct_zones() == 5

    def test_2ld_count(self):
        series = growth_series([result("d1", 0.2, 0.2, 0.2, n_zones=4)])
        assert series.points[0].n_disposable_2lds == 4


class TestStoreGrowthSeries:
    def _populate(self, backend):
        backend.ingest_rrs("2011-02-01", [
            ("a.x.com", RRType.A, "1.1.1.1"),
            ("b.x.com", RRType.A, "1.1.1.2")])
        backend.ingest_rrs("2011-02-02", [
            ("a.x.com", RRType.A, "1.1.1.1"),     # duplicate
            ("c.y.net", RRType.A, "2.2.2.2")])
        backend.ingest_rrs("2011-02-03", [
            ("a.x.com", RRType.A, "1.1.1.1")])    # zero-new day
        return backend

    def test_cumulative_series_in_memory(self):
        series = store_growth_series(self._populate(PassiveDnsDatabase()))
        assert [(p.day, p.new_rrs, p.cumulative_rrs)
                for p in series.points] == [
            ("2011-02-01", 2, 2), ("2011-02-02", 1, 3),
            ("2011-02-03", 0, 3)]
        assert series.final_rows == 3
        assert not series.bytes_measured
        assert series.final_bytes == 3 * 48

    def test_segmented_store_equal_series(self, tmp_path):
        memory = store_growth_series(self._populate(PassiveDnsDatabase()))
        store = self._populate(SegmentedPdnsStore(tmp_path))
        segmented = store_growth_series(store)
        assert [(p.day, p.new_rrs, p.cumulative_rrs)
                for p in segmented.points] == \
            [(p.day, p.new_rrs, p.cumulative_rrs)
             for p in memory.points]
        assert segmented.bytes_measured
        assert segmented.final_bytes == store.storage_bytes()

    def test_series_survives_compaction(self, tmp_path):
        store = self._populate(SegmentedPdnsStore(tmp_path))
        before = store_growth_series(store).points
        store.compact()
        after = store_growth_series(store).points
        assert [(p.day, p.new_rrs, p.cumulative_rrs) for p in after] == \
            [(p.day, p.new_rrs, p.cumulative_rrs) for p in before]

    def test_doubling_days(self):
        db = PassiveDnsDatabase()
        db.ingest_rrs("d1", [("a.x.com", RRType.A, "1.1.1.1")])
        db.ingest_rrs("d2", [("b.x.com", RRType.A, "1.1.1.2"),
                             ("c.x.com", RRType.A, "1.1.1.3")])
        db.ingest_rrs("d3", [("d.x.com", RRType.A, "1.1.1.4")])
        assert store_growth_series(db).doubling_days() == ["d2"]

    def test_empty_backend(self):
        series = store_growth_series(PassiveDnsDatabase())
        assert series.points == []
        assert series.final_rows == 0
        assert series.final_bytes == 0
