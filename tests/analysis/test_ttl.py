"""Tests for the Figure 14 TTL histogram analysis."""

import pytest

from repro.analysis.ttl import TTL_CLAMP, disposable_ttl_histogram
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def day(entries):
    ds = FpDnsDataset(day="t")
    for name, ttl in entries:
        ds.below.append(FpDnsEntry(0.0, 1, name, RRType.A, RCode.NOERROR,
                                   ttl, "1.1.1.1"))
    return ds


GROUPS = {("d.net", 3)}


class TestTtlHistogram:
    def test_counts_only_disposable(self):
        ds = day([("x1.d.net", 300), ("x2.d.net", 300), ("www.a.com", 60)])
        histogram = disposable_ttl_histogram(ds, GROUPS)
        assert histogram.counts == {300: 2}
        assert histogram.total == 2

    def test_mode_and_mean(self):
        ds = day([("x1.d.net", 300), ("x2.d.net", 300), ("x3.d.net", 60)])
        histogram = disposable_ttl_histogram(ds, GROUPS)
        assert histogram.mode() == 300
        assert histogram.mean() == pytest.approx(220.0)

    def test_fraction_at(self):
        ds = day([("x1.d.net", 1), ("x2.d.net", 300)])
        histogram = disposable_ttl_histogram(ds, GROUPS)
        assert histogram.fraction_at(1) == 0.5

    def test_clamp(self):
        ds = day([("x1.d.net", 500_000)])
        histogram = disposable_ttl_histogram(ds, GROUPS)
        assert histogram.counts == {TTL_CLAMP: 1}

    def test_log_buckets_cover_total(self):
        ds = day([("x1.d.net", 1), ("x2.d.net", 50), ("x3.d.net", 300),
                  ("x4.d.net", 5000), ("x5.d.net", 86400)])
        histogram = disposable_ttl_histogram(ds, GROUPS)
        buckets = histogram.log_buckets()
        assert sum(count for _, count in buckets) == 5

    def test_empty(self):
        histogram = disposable_ttl_histogram(day([]), GROUPS)
        assert histogram.total == 0
        assert histogram.mode() == 0
        assert histogram.mean() == 0.0
