"""Tests for the CHR distribution analyses (Figures 4 and 7)."""

import pytest

from repro.analysis.chrdist import chr_cdf, chr_cdf_for_zones, chr_split
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.dns.message import RRType


def make_table(spec, day="t"):
    rates = {}
    for name, (below, above) in spec.items():
        key = (name, RRType.A, "1.1.1.1")
        rates[key] = RRHitRate(key, below, above)
    return HitRateTable(rates, day=day)


@pytest.fixture
def table():
    spec = {"www.bank.com": (100, 2), "mail.bank.com": (50, 2)}
    spec.update({f"h{i}.avqs.mcafee.com": (1, 1) for i in range(6)})
    return make_table(spec)


class TestChrCdf:
    def test_all_samples(self, table):
        cdf = chr_cdf(table)
        # 2+2 popular misses + 6 disposable misses = 10 samples.
        assert len(cdf) == 10
        assert cdf.at(0.0) == pytest.approx(0.6)

    def test_zone_restriction(self, table):
        cdf = chr_cdf_for_zones(table, ["avqs.mcafee.com"])
        assert len(cdf) == 6
        assert cdf.at(0.0) == 1.0

    def test_zone_restriction_popular(self, table):
        cdf = chr_cdf_for_zones(table, ["bank.com"])
        assert len(cdf) == 4
        assert cdf.at(0.0) == 0.0


class TestChrSplit:
    def test_split(self, table):
        # Names h{i}.avqs.mcafee.com sit at depth 4 under the zone.
        split = chr_split(table, {("avqs.mcafee.com", 4)})
        assert split.disposable_zero_fraction == 1.0
        assert split.non_disposable_median > 0.9
        assert split.non_disposable_fraction_above(0.58) == 1.0

    def test_split_no_groups(self, table):
        split = chr_split(table, set())
        assert len(split.disposable) == 0
        assert len(split.non_disposable) == 10

    def test_day_carried(self, table):
        split = chr_split(table, set())
        assert split.day == "t"
