"""Tests for the daily traffic report."""

import pytest

from repro.analysis.summary import build_daily_report
from repro.dns.message import RCode, RRType
from repro.pdns.records import FpDnsDataset, FpDnsEntry


def entry(name, client=1, rcode=RCode.NOERROR, rdata="1.1.1.1"):
    if rcode is RCode.NXDOMAIN:
        return FpDnsEntry(0.0, client, name, RRType.A, rcode)
    return FpDnsEntry(0.0, client, name, RRType.A, rcode, 300, rdata)


@pytest.fixture
def dataset():
    ds = FpDnsDataset(day="t")
    for i in range(20):
        ds.below.append(entry("www.hot.com", client=i))
    ds.below.append(entry("x1.d.net"))
    ds.below.append(entry("nx.com", rcode=RCode.NXDOMAIN))
    ds.above.append(entry("www.hot.com", client=None))
    ds.above.append(entry("x1.d.net", client=None))
    return ds


class TestBuildDailyReport:
    def test_basic_counts(self, dataset):
        report = build_daily_report(dataset)
        assert report.day == "t"
        assert report.volumes.below_total == 22
        assert report.volumes.above_total == 2
        assert report.queried_domains == 3
        assert report.resolved_domains == 2
        assert report.distinct_rrs == 2

    def test_top_zones(self, dataset):
        report = build_daily_report(dataset)
        assert report.top_zones[0] == ("hot.com", 20)

    def test_disposable_annotation(self, dataset):
        report = build_daily_report(dataset,
                                    disposable_groups={("d.net", 3)})
        assert report.disposable_resolved_fraction == pytest.approx(0.5)
        assert report.disposable_queried_fraction == pytest.approx(1 / 3)
        assert report.disposable_rr_fraction == pytest.approx(0.5)

    def test_no_annotation_by_default(self, dataset):
        report = build_daily_report(dataset)
        assert report.disposable_resolved_fraction is None

    def test_render_plain(self, dataset):
        text = build_daily_report(dataset).render()
        assert "Daily traffic report — t" in text
        assert "hot.com" in text
        assert "disposable" not in text

    def test_render_annotated(self, dataset):
        text = build_daily_report(
            dataset, disposable_groups={("d.net", 3)}).render()
        assert "disposable share of resolved names" in text

    def test_on_simulated_day(self, tiny_simulator, tiny_day):
        report = build_daily_report(tiny_day,
                                    disposable_groups=
                                    tiny_simulator.disposable_truth())
        assert report.low_volume_tail_fraction > 0.8
        assert report.zero_dhr_fraction > 0.5
        assert 0.0 < report.disposable_resolved_fraction < 1.0
        assert len(report.top_zones) == 10

    def test_empty_day(self):
        report = build_daily_report(FpDnsDataset(day="empty"))
        assert report.distinct_rrs == 0
        assert report.top_zones == []
        assert "Daily traffic report" in report.render()
