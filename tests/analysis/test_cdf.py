"""Tests for the empirical CDF helper."""

import numpy as np
import pytest

from repro.analysis.cdf import EmpiricalCdf


class TestEmpiricalCdf:
    def test_at(self):
        cdf = EmpiricalCdf.from_samples([0.0, 0.5, 1.0, 1.0])
        assert cdf.at(0.0) == 0.25
        assert cdf.at(0.5) == 0.5
        assert cdf.at(0.99) == 0.5
        assert cdf.at(1.0) == 1.0

    def test_at_below_min(self):
        cdf = EmpiricalCdf.from_samples([1.0, 2.0])
        assert cdf.at(0.5) == 0.0

    def test_empty(self):
        cdf = EmpiricalCdf.from_samples([])
        assert cdf.at(1.0) == 0.0
        assert cdf.quantile(0.5) == 0.0
        assert cdf.series() == []
        assert len(cdf) == 0

    def test_quantile(self):
        cdf = EmpiricalCdf.from_samples(list(np.linspace(0, 1, 101)))
        assert cdf.quantile(0.5) == pytest.approx(0.5, abs=0.02)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_evaluate_vectorised(self):
        cdf = EmpiricalCdf.from_samples([0.0, 1.0])
        values = cdf.evaluate([-1.0, 0.0, 0.5, 1.0])
        assert values.tolist() == [0.0, 0.5, 0.5, 1.0]

    def test_series_endpoints(self):
        cdf = EmpiricalCdf.from_samples([0.0, 0.25, 0.75, 1.0])
        series = cdf.series(5)
        assert series[0][0] == 0.0
        assert series[-1] == (1.0, 1.0)

    def test_unsorted_input_handled(self):
        cdf = EmpiricalCdf.from_samples([3.0, 1.0, 2.0])
        assert cdf.at(1.5) == pytest.approx(1 / 3)

    def test_monotone(self):
        rng = np.random.default_rng(0)
        cdf = EmpiricalCdf.from_samples(rng.random(100).tolist())
        xs = np.linspace(0, 1, 50)
        values = cdf.evaluate(xs)
        assert np.all(np.diff(values) >= 0)
