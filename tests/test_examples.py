"""Smoke tests: the example scripts must run end-to-end.

Only the self-contained fast examples run here (the SMALL-context ones
simulate a 20-day calendar and belong to manual runs/benchmarks).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "cache_impact_study.py",
                 "dnssec_cost_study.py", "zone_forensics.py",
                 "daily_report.py"]
SLOW_EXAMPLES = ["mine_disposable_zones.py", "pdns_storage_study.py"]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_all_examples_exist():
    for script in FAST_EXAMPLES + SLOW_EXAMPLES:
        assert (EXAMPLES_DIR / script).is_file(), script


def test_examples_have_docstrings_and_main():
    for script in FAST_EXAMPLES + SLOW_EXAMPLES:
        source = (EXAMPLES_DIR / script).read_text()
        assert source.startswith("#!/usr/bin/env python"), script
        assert '"""' in source, script
        assert 'if __name__ == "__main__":' in source, script
