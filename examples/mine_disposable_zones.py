#!/usr/bin/env python
"""Track disposable-zone growth across the paper's 2011 calendar.

Reproduces the deployed-system view of Sections V-C and VI: train the
miner once (on the 11/10 labeling day, as the authors did), then run
the daily ranking pipeline of Figure 10 over the six measurement dates
and report the Figure 13 growth series plus a Figure 11-style summary.

Run:  python examples/mine_disposable_zones.py
"""

from repro.analysis.growth import growth_series
from repro.experiments.context import SMALL, ExperimentContext
from repro.experiments.report import format_percent, format_table
from repro.traffic.simulate import PAPER_DATES


def main() -> None:
    context = ExperimentContext(SMALL)

    print("training the LAD-tree classifier on the 2011-11-10 labeling "
          "day ...")
    training = context.training_set()
    print(f"  {training.n_positive} disposable zones, "
          f"{training.n_negative} non-disposable zones\n")

    print("running the daily disposable-zone ranking over the six "
          "measurement dates ...")
    results = [context.mining_result(date) for date in PAPER_DATES]
    series = growth_series(results)

    rows = []
    for point in series.points:
        rows.append((point.day,
                     format_percent(point.queried_fraction),
                     format_percent(point.resolved_fraction),
                     format_percent(point.rr_fraction),
                     point.n_disposable_zones,
                     point.n_disposable_2lds))
    print(format_table(
        ["date", "disposable/queried", "disposable/resolved",
         "disposable RRs", "zones", "2LDs"], rows))

    print()
    print(f"growth over the year: queried "
          f"{format_percent(series.first.queried_fraction)} -> "
          f"{format_percent(series.last.queried_fraction)}, "
          f"resolved {format_percent(series.first.resolved_fraction)} -> "
          f"{format_percent(series.last.resolved_fraction)}, "
          f"RRs {format_percent(series.first.rr_fraction)} -> "
          f"{format_percent(series.last.rr_fraction)}")
    print("(paper: 23.1%->27.6%, 27.6%->37.2%, 38.3%->65.5%)")

    december = results[-1]
    print(f"\ntop disposable zones on {december.day}:")
    for finding in december.ranked_findings()[:12]:
        print(f"  {finding.zone:<40s} depth={finding.depth} "
              f"confidence={finding.confidence:.2f} "
              f"names={finding.group_size}")


if __name__ == "__main__":
    main()
