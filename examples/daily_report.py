#!/usr/bin/env python
"""Operational daily report: the Section III panorama as one command.

Simulates one day at the ISP tap, validates the trace against the
paper-shape calibration invariants (DESIGN.md §5), then prints the
full daily traffic report annotated with the miner's disposable
shares and the cumulative zone-discovery ledger after a second day.

Run:  python examples/daily_report.py
"""

from repro.analysis.summary import build_daily_report
from repro.core.classifier import LadTreeClassifier
from repro.core.features import FeatureExtractor
from repro.core.hitrate import compute_hit_rates
from repro.core.labeling import build_training_set
from repro.core.miner import MinerConfig
from repro.core.ranking import DisposableZoneRanker, build_tree_for_day
from repro.core.tracking import ZoneTracker
from repro.experiments.validation import validate_calibration
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


def main() -> None:
    config = SimulatorConfig(
        cache_capacity=8_000,
        population=PopulationConfig(n_popular_sites=100,
                                    n_longtail_sites=2_000,
                                    n_extra_disposable=24,
                                    cdn_objects=5_000),
        workload=WorkloadConfig(events_per_day=20_000, n_clients=250))
    simulator = TraceSimulator(config)

    day1 = simulator.run_day(MeasurementDate("2011-12-01", 335, 0.91))
    hit_rates = compute_hit_rates(day1)

    # Gate: is the trace paper-shaped?
    scorecard = validate_calibration(simulator, day1, hit_rates)
    print(scorecard.render())
    if not scorecard.all_passed:
        print("\nWARNING: calibration invariants failed — experiment "
              "results from this configuration are not paper-comparable.")
    print()

    # Train once, mine daily, track the ledger.
    tree = build_tree_for_day(day1)
    extractor = FeatureExtractor(tree, hit_rates)
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)
    ranker = DisposableZoneRanker(classifier, MinerConfig())

    tracker = ZoneTracker()
    result1 = ranker.run_day(day1, hit_rates)
    tracker.ingest(result1)

    print(build_daily_report(day1, hit_rates,
                             disposable_groups=result1.groups).render())

    day2 = simulator.run_day(MeasurementDate("2011-12-02", 336, 0.91))
    result2 = ranker.run_day(day2)
    new_zones = tracker.ingest(result2)
    print(f"\nday 2: {new_zones} newly discovered disposable zones; "
          f"ledger now {tracker.total_zones()} zones under "
          f"{tracker.total_2lds()} 2LDs "
          f"({len(tracker.persistent_zones())} seen on both days)")


if __name__ == "__main__":
    main()
