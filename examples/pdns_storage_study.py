#!/usr/bin/env python
"""Section VI-C in action: disposable domains vs passive-DNS storage.

Bootstraps a passive-DNS database over the 13-day rpDNS window
(11/28/2011-12/10/2011), shows how new-RR ingestion becomes dominated
by disposable records, and applies the paper's wildcard-aggregation
mitigation (1022vr5.dns.xx.fbcdn.net -> *.dns.xx.fbcdn.net).

Run:  python examples/pdns_storage_study.py
"""

from repro.experiments.context import SMALL, ExperimentContext
from repro.experiments.report import format_percent, format_table
from repro.impact.pdns_storage import run_pdns_storage_study
from repro.traffic.simulate import RPDNS_WINDOW_DATES


def main() -> None:
    context = ExperimentContext(SMALL)
    print("simulating the 13-day rpDNS window and mining the final day "
          "for disposable zones ...\n")
    datasets = context.rpdns_window()
    groups = context.mined_groups(RPDNS_WINDOW_DATES[-1])
    study = run_pdns_storage_study(datasets, groups)

    rows = [(day.day, day.new_total, day.new_disposable,
             format_percent(day.disposable_share))
            for day in study.dedup.days]
    print(format_table(["day", "new RRs", "new disposable RRs",
                        "disposable share"], rows))

    first, last = study.first_to_last_disposable_share()
    print(f"\nafter 13 days the database holds "
          f"{study.rows_before:,} unique RRs "
          f"({study.disposable_fraction:.1%} disposable; paper: 88%)")
    print(f"daily new-RR disposable share: {first:.1%} -> {last:.1%} "
          "(paper: 68% -> 94%)")
    print(f"\nwildcard aggregation: {study.rows_before:,} rows -> "
          f"{study.rows_after_wildcard:,} rows "
          f"({study.reduction_ratio:.1%} remaining)")
    print(f"storage: {study.bytes_before / 1024:.0f} KiB -> "
          f"{study.bytes_after_wildcard / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
