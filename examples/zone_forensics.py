#!/usr/bin/env python
"""Zone forensics: explain *why* the miner flags a zone.

A security analyst investigating the miner's output wants the evidence
behind each verdict.  This example runs the streaming pipeline over a
simulated day (one pass, bounded memory — the shape a real tap
deployment needs), then profiles a disposable zone and a popular zone
side by side: per-depth features, the LAD tree's verdict, and the
exact per-feature attribution of the additive score.

Run:  python examples/zone_forensics.py
"""

from repro.core.classifier import LadTreeClassifier
from repro.core.features import FeatureExtractor
from repro.core.labeling import build_training_set
from repro.core.profile import ZoneProfiler
from repro.core.streaming import StreamingDayBuilder
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


def main() -> None:
    config = SimulatorConfig(
        cache_capacity=8_000,
        population=PopulationConfig(n_popular_sites=100,
                                    n_longtail_sites=2_000,
                                    n_extra_disposable=24,
                                    cdn_objects=5_000),
        workload=WorkloadConfig(events_per_day=25_000, n_clients=250))
    simulator = TraceSimulator(config)
    day = simulator.run_day(MeasurementDate("2011-11-10", 313, 0.85))

    # One-pass streaming construction of the mining inputs.
    builder = StreamingDayBuilder(day=day.day)
    for entry in day.below:
        builder.observe("B", entry)
    for entry in day.above:
        builder.observe("A", entry)
    tree, hit_rates = builder.finish()
    print(f"streamed {builder.stats.below_entries:,} below + "
          f"{builder.stats.above_entries:,} above entries -> "
          f"{builder.stats.distinct_rrs:,} distinct RRs\n")

    # Train the classifier on labeled zones.
    extractor = FeatureExtractor(tree, hit_rates)
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)

    # Profile one known disposable zone and one popular zone.
    profiler = ZoneProfiler(tree, hit_rates, classifier)
    disposable_zone = simulator.population.services[0].zone
    popular_zone = simulator.population.popular_sites[0].zone
    for zone in (disposable_zone, popular_zone):
        print(profiler.profile(zone).render())
        print()


if __name__ == "__main__":
    main()
