#!/usr/bin/env python
"""Section VI-B in action: disposable domains vs DNSSEC validation.

Replays one day of queries against a validating resolver cluster under
three signing regimes — conventional per-name signing, the paper's
wildcard-signing mitigation for disposable zones, and a reference
world where disposable sub-zones stay unsigned — and compares the
signature-validation workload.

Run:  python examples/dnssec_cost_study.py
"""

from repro.experiments.report import format_percent, format_table
from repro.impact.dnssec_cost import run_dnssec_study
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


def main() -> None:
    config = SimulatorConfig(
        population=PopulationConfig(n_popular_sites=100,
                                    n_longtail_sites=2_000,
                                    n_extra_disposable=24,
                                    cdn_objects=5_000),
        workload=WorkloadConfig(events_per_day=25_000, n_clients=250))
    simulator = TraceSimulator(config)
    print("generating one late-2011 day of query events ...")
    events = simulator.workload.generate_day(420, year_fraction=0.95)

    all_apexes = {zone.apex for zone in simulator.authority.zones()}
    disposable_apexes = {service.zone
                         for service in simulator.population.services}
    study = run_dnssec_study(simulator.authority, events, all_apexes,
                             disposable_apexes, cache_capacity=8_000)

    rows = []
    for regime, s in study.scenarios.items():
        rows.append((regime, s.validations,
                     format_percent(s.validation_cache_hit_rate),
                     s.disposable_validations,
                     f"{s.signature_cache_bytes / 1024:.0f} KiB"))
    print(format_table(
        ["signing regime", "signature validations",
         "validation-cache hit rate", "validations for disposable names",
         "signature cache memory"], rows))

    print(f"\nwildcard signing avoids "
          f"{study.wildcard_savings():.1%} of the per-name regime's "
          "validations — each disposable name no longer costs a "
          "never-reused crypto operation plus cached signature bytes.")


if __name__ == "__main__":
    main()
