#!/usr/bin/env python
"""Quickstart: discover disposable DNS zones in simulated ISP traffic.

This walks the full pipeline of the paper in ~30 seconds:

1. simulate one day of ISP DNS traffic (clients -> recursive resolver
   cluster -> authoritative hierarchy) with a passive-DNS tap,
2. compute per-record domain/cache hit rates from the tap's two
   streams (Eq. 1-2),
3. build the domain name tree and extract the features of Section V-A,
4. train the LAD-tree classifier on labeled zones and run Algorithm 1,
5. print the discovered disposable zones.

Run:  python examples/quickstart.py
"""

from repro.core.classifier import LadTreeClassifier
from repro.core.features import FeatureExtractor
from repro.core.hitrate import compute_hit_rates
from repro.core.labeling import build_training_set
from repro.core.miner import DisposableZoneMiner, MinerConfig
from repro.core.ranking import build_tree_for_day
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


def main() -> None:
    # 1. Simulate one day of ISP traffic.
    config = SimulatorConfig(
        cache_capacity=8_000,
        population=PopulationConfig(n_popular_sites=100,
                                    n_longtail_sites=2_000,
                                    n_extra_disposable=24,
                                    cdn_objects=5_000),
        workload=WorkloadConfig(events_per_day=25_000, n_clients=250))
    simulator = TraceSimulator(config)
    day = simulator.run_day(MeasurementDate("2011-11-10", 313, 0.85))
    print(f"simulated day: {day.below_volume():,} answers below the "
          f"resolvers, {day.above_volume():,} above")
    print(f"  {len(day.queried_domains()):,} distinct queried names, "
          f"{len(day.resolved_domains()):,} resolved, "
          f"{len(day.distinct_rrs()):,} distinct resource records")

    # 2. Hit rates from the two monitored streams.
    hit_rates = compute_hit_rates(day)
    print(f"  zero-DHR long tail: {hit_rates.zero_dhr_fraction():.1%} of RRs")

    # 3. Domain name tree + feature extractor.
    tree = build_tree_for_day(day)
    extractor = FeatureExtractor(tree, hit_rates)

    # 4. Train on the labeled zones and mine (Algorithm 1, theta=0.9).
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    print(f"training set: {training.n_positive} disposable / "
          f"{training.n_negative} non-disposable zones")
    classifier = LadTreeClassifier().fit(training.X, training.y)
    miner = DisposableZoneMiner(classifier, MinerConfig(threshold=0.9))
    findings = miner.mine(tree, extractor)

    # 5. Report.
    print(f"\ndiscovered {len(findings)} disposable (zone, depth) groups:")
    for finding in sorted(findings, key=lambda f: -f.group_size)[:15]:
        print(f"  {finding.zone:<40s} depth={finding.depth}  "
              f"confidence={finding.confidence:.2f}  "
              f"names={finding.group_size}")


if __name__ == "__main__":
    main()
