#!/usr/bin/env python
"""Section VI-A in action: how disposable churn degrades DNS caching.

Replays the same one-day query stream against resolver clusters of
shrinking cache capacity, once with the disposable traffic and once
without, and reports the premature ("live") evictions, the hit rate
experienced by *non-disposable* queries, and mean resolution latency.

Run:  python examples/cache_impact_study.py
"""

from repro.experiments.report import format_percent, format_table
from repro.impact.cache_pressure import run_cache_pressure_study
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


def main() -> None:
    config = SimulatorConfig(
        population=PopulationConfig(n_popular_sites=100,
                                    n_longtail_sites=2_000,
                                    n_extra_disposable=24,
                                    cdn_objects=5_000),
        workload=WorkloadConfig(events_per_day=25_000, n_clients=250))
    simulator = TraceSimulator(config)
    print("generating one late-2011 day of query events ...")
    events = simulator.workload.generate_day(400, year_fraction=0.95)
    n_disposable = sum(1 for e in events if e.category == "disposable")
    print(f"  {len(events):,} events, {n_disposable:,} "
          f"({n_disposable / len(events):.1%}) disposable\n")

    capacities = [500, 1_000, 2_000, 4_000, 8_000]
    comparisons = run_cache_pressure_study(simulator.authority, events,
                                           capacities, n_servers=2)

    rows = []
    for comparison in comparisons:
        loaded = comparison.with_disposable
        clean = comparison.without_disposable
        rows.append((
            comparison.capacity,
            format_percent(loaded.non_disposable_hit_rate),
            format_percent(clean.non_disposable_hit_rate),
            format_percent(comparison.hit_rate_degradation, 2),
            comparison.extra_live_evictions,
            f"{loaded.mean_latency_ms:.2f} ms",
            f"{clean.mean_latency_ms:.2f} ms"))
    print(format_table(
        ["cache capacity", "ND hit rate (with disp.)",
         "ND hit rate (without)", "degradation",
         "extra premature evictions", "latency (with)",
         "latency (without)"], rows))

    worst = max(comparisons, key=lambda c: c.hit_rate_degradation)
    print(f"\nworst degradation: {worst.hit_rate_degradation:.2%} of "
          f"non-disposable hit rate at capacity {worst.capacity} — the "
          "paper's premature-eviction effect, visible whenever the cache "
          "is small relative to the disposable churn.")


if __name__ == "__main__":
    main()
