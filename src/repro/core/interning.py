"""Interned name table and columnar day digest.

The mining system and the Section III/VI analyses all consume the same
fpDNS day, but the legacy code paths each re-scan the raw entry lists
independently: hit rates, tree construction, the traffic report, the
volume/clients/CHR analyses and pDNS ingest together walk the
(hundreds of thousands of) entries ten-plus times per day, paying the
per-entry Python dispatch cost every time.

This module makes the day **columnar**: one single pass over the raw
streams produces

* a :class:`NameTable` interning every distinct queried name to a
  dense integer id (with memoised per-name derived lookups: label
  counts, effective-2LD ids, zone-group membership, miner-group
  matches), and
* a :class:`DayDigest` holding numpy columns per stream — timestamp,
  name id, RR id, client id, rcode, qtype, TTL — plus the RR identity
  table mapping dense RR ids back to ``(name, type, rdata)`` keys.

Every downstream consumer (:func:`repro.core.hitrate.hit_rates_from_digest`,
:func:`repro.core.ranking.build_tree_from_digest`, the
``repro.analysis`` modules, ``PassiveDnsDatabase.ingest_digest``)
reduces over these columns with numpy instead of re-iterating entries.
The legacy per-entry paths remain in place as the oracle; the digest
path is provably equivalent (``tests/core/test_interning.py``,
``tests/core/test_mining_pipeline.py``).

Determinism: ids are assigned in first-appearance order over
``below`` then ``above`` — a pure function of the data, identical in
every process (unlike ``set`` iteration order, which varies with the
per-process string hash seed).  Everything derived from the digest is
therefore reproducible across worker processes and cache replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.dnstypes import RCode, RRType
from repro.core.groups import name_matches_groups
from repro.core.names import label_count, normalize
from repro.core.records import FpDnsDataset, RRKey
from repro.core.suffix import SuffixList

__all__ = ["NameTable", "StreamColumns", "DayDigest", "build_day_digest",
           "digest_of", "encode_string_pool", "decode_string_pool",
           "RRTYPE_CODES", "RRTYPE_BY_CODE", "STREAM_FIELDS",
           "SHARD_STREAM_FIELDS", "MergedShardDay", "merge_shard_columns"]

#: Fixed encoding of RR types into small ints for the qtype column —
#: also the on-disk encoding of :mod:`repro.pdns.columnar`, so the
#: enum order is part of the fpDNS-v2 format contract.
RRTYPE_CODES: Dict[RRType, int] = {member: index
                                   for index, member in enumerate(RRType)}
RRTYPE_BY_CODE: Tuple[RRType, ...] = tuple(RRType)
_RRTYPE_CODES = RRTYPE_CODES
_RRTYPE_BY_CODE = RRTYPE_BY_CODE

_NOERROR = RCode.NOERROR
_NXDOMAIN_VALUE = RCode.NXDOMAIN.value


class NameTable:
    """Interns domain names to dense integer ids.

    Names are stored verbatim (the fpDNS streams already carry
    canonical names; hand-built datasets are hashed as-is so the
    digest mirrors the legacy per-entry code exactly).  Derived
    per-name columns are computed once per table and memoised — the
    point being that a day has a few thousand distinct names but
    hundreds of thousands of entries.
    """

    def __init__(self) -> None:
        # ``None`` means "not built yet": tables reconstructed from
        # stored columns defer the name->id dict until something
        # actually interns or looks up a name, so a warm columnar load
        # pays zero re-interning cost (the downstream consumers only
        # iterate ``_names``).
        self._ids: Optional[Dict[str, int]] = {}
        self._names: List[str] = []
        self._label_counts: Optional[np.ndarray] = None
        # effective-2LD lookup, memoised for the last suffix list used
        # (callers overwhelmingly share default_suffix_list()).
        self._e2ld_suffixes: Optional[SuffixList] = None
        self._e2ld_ids: Optional[np.ndarray] = None
        self._e2ld_zones: List[str] = []
        self._subdomain_masks: Dict[Tuple[str, ...], np.ndarray] = {}
        self._match_masks: Dict[FrozenSet[Tuple[str, int]], np.ndarray] = {}

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "NameTable":
        """Rebuild a table from an id-ordered name list (e.g. decoded
        from an fpDNS-v2 string pool) without re-interning: the
        name->id dict is only built if a lookup ever needs it."""
        table = cls()
        table._names = list(names)
        table._ids = None
        return table

    # -- interning -----------------------------------------------------

    def _id_map(self) -> Dict[str, int]:
        if self._ids is None:
            self._ids = {name: nid for nid, name in enumerate(self._names)}
        return self._ids

    def intern(self, name: str) -> int:
        """Id for ``name``, assigning the next dense id on first sight."""
        ids = self._id_map()
        nid = ids.get(name)
        if nid is None:
            nid = len(self._names)
            ids[name] = nid
            self._names.append(name)
        return nid

    def id_of(self, name: str) -> Optional[int]:
        return self._id_map().get(name)

    def name(self, nid: int) -> str:
        return self._names[nid]

    @property
    def names(self) -> List[str]:
        """All interned names, in id order (first-appearance order)."""
        return list(self._names)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._id_map()

    # -- memoised per-name lookups -------------------------------------

    def label_counts(self) -> np.ndarray:
        """Label count per name id (``www.example.com`` -> 3)."""
        if self._label_counts is None:
            self._label_counts = np.array(
                [label_count(name) for name in self._names], dtype=np.int32)
        return self._label_counts

    def effective_2ld_ids(self, suffixes: SuffixList
                          ) -> Tuple[np.ndarray, List[str]]:
        """Per-name effective-2LD as dense zone ids.

        Returns ``(ids, zones)`` where ``ids[nid]`` indexes ``zones``
        (first-appearance order) or is ``-1`` when the name has no
        registrable parent.  Memoised for the last suffix list seen.
        """
        if self._e2ld_suffixes is not suffixes or self._e2ld_ids is None:
            zone_ids: Dict[str, int] = {}
            zones: List[str] = []
            ids = np.empty(len(self._names), dtype=np.int32)
            for nid, name in enumerate(self._names):
                zone = suffixes.effective_2ld(name)
                if zone is None:
                    ids[nid] = -1
                    continue
                zid = zone_ids.get(zone)
                if zid is None:
                    zid = len(zones)
                    zone_ids[zone] = zid
                    zones.append(zone)
                ids[nid] = zid
            self._e2ld_suffixes = suffixes
            self._e2ld_ids = ids
            self._e2ld_zones = zones
        return self._e2ld_ids, list(self._e2ld_zones)

    def subdomain_mask(self, zones: Sequence[str]) -> np.ndarray:
        """Boolean mask per name id: is the name under any of ``zones``?

        Semantically ``any(is_subdomain(name, zone) for zone in
        zones)`` per name, but folded into one membership test plus a
        single tuple-``endswith`` call so the per-name cost does not
        scale with the zone count.
        """
        key = tuple(zones)
        mask = self._subdomain_masks.get(key)
        if mask is None:
            zone_set = frozenset(normalize(zone) for zone in key)
            suffixes = tuple("." + zone for zone in sorted(zone_set))
            mask = np.fromiter(
                ((normalize(name) in zone_set
                  or normalize(name).endswith(suffixes))
                 for name in self._names),
                dtype=bool, count=len(self._names))
            self._subdomain_masks[key] = mask
        return mask

    def match_mask(self, groups: Set[Tuple[str, int]]) -> np.ndarray:
        """Boolean mask per name id: does the name sit at a flagged
        (zone, depth) position of the miner's output?"""
        key = frozenset(groups)
        mask = self._match_masks.get(key)
        if mask is None:
            mask = np.fromiter(
                (name_matches_groups(name, groups) for name in self._names),
                dtype=bool, count=len(self._names))
            self._match_masks[key] = mask
        return mask


#: Field order of one serialised stream — part of the fpDNS-v2 format
#: contract (:mod:`repro.pdns.columnar` stores one array per field).
STREAM_FIELDS: Tuple[str, ...] = ("timestamps", "name_ids", "rr_ids",
                                  "client_ids", "rcodes", "qtypes", "ttls")


def encode_string_pool(strings: Sequence[str]
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Pack ``strings`` into ``(blob, offsets)`` arrays.

    ``blob`` is the concatenated UTF-8 bytes (uint8), ``offsets`` the
    ``len(strings) + 1`` byte boundaries (int64) — the standard
    columnar string-pool layout (Arrow/Dremel), safe for any string
    content because boundaries are explicit byte offsets.
    """
    encoded = [string.encode("utf-8") for string in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(item) for item in encoded], out=offsets[1:])
        blob = np.frombuffer(b"".join(encoded), dtype=np.uint8)
    else:
        blob = np.zeros(0, dtype=np.uint8)
    return blob, offsets


def decode_string_pool(blob: np.ndarray, offsets: np.ndarray) -> List[str]:
    """Inverse of :func:`encode_string_pool` (exact round-trip)."""
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [raw[bounds[index]:bounds[index + 1]].decode("utf-8")
            for index in range(len(bounds) - 1)]


@dataclass
class StreamColumns:
    """One monitored stream (below or above) as parallel numpy columns.

    ``rr_ids`` is ``-1`` for non-answer rows (NXDOMAIN/SERVFAIL),
    ``client_ids`` is ``-1`` where the entry carried no client (the
    above-the-resolver stream), ``ttls`` is ``-1`` where no TTL was
    recorded.
    """

    timestamps: np.ndarray   # float64
    name_ids: np.ndarray     # int32
    rr_ids: np.ndarray       # int32, -1 for failures
    client_ids: np.ndarray   # int64, -1 for None
    rcodes: np.ndarray       # int16 RCode values
    qtypes: np.ndarray       # int16 codes into _RRTYPE_BY_CODE
    ttls: np.ndarray         # int64, -1 for None

    def __len__(self) -> int:
        return int(self.timestamps.shape[0])

    @property
    def answer_mask(self) -> np.ndarray:
        return self.rr_ids >= 0

    def nxdomain_count(self) -> int:
        return int(np.count_nonzero(self.rcodes == _NXDOMAIN_VALUE))


class DayDigest:
    """Columnar view of one fpDNS day, built in a single pass.

    Exposes the same day-level aggregates as
    :class:`repro.core.records.FpDnsDataset` (equality-tested against
    it) plus the dense columns downstream numpy reductions consume.
    """

    def __init__(self, day: str, names: NameTable, rr_keys: List[RRKey],
                 rr_name_ids: np.ndarray, below: StreamColumns,
                 above: StreamColumns) -> None:
        self.day = day
        self.names = names
        self.rr_keys = rr_keys
        self.rr_name_ids = rr_name_ids
        self.below = below
        self.above = above
        self._below_counts: Optional[np.ndarray] = None
        self._above_counts: Optional[np.ndarray] = None
        self._rr_ttls: Optional[np.ndarray] = None
        self._queried_ids: Optional[np.ndarray] = None
        self._resolved_ids: Optional[np.ndarray] = None
        self._client_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None

    @property
    def n_rrs(self) -> int:
        return len(self.rr_keys)

    # -- volumes -------------------------------------------------------

    def below_volume(self) -> int:
        return len(self.below)

    def above_volume(self) -> int:
        return len(self.above)

    def nxdomain_volume_below(self) -> int:
        return self.below.nxdomain_count()

    def nxdomain_volume_above(self) -> int:
        return self.above.nxdomain_count()

    # -- populations ---------------------------------------------------

    def queried_name_ids(self) -> np.ndarray:
        """Distinct name ids queried below (sorted by id)."""
        if self._queried_ids is None:
            self._queried_ids = np.unique(self.below.name_ids)
        return self._queried_ids

    def resolved_name_ids(self) -> np.ndarray:
        """Distinct name ids with a successful answer below (sorted)."""
        if self._resolved_ids is None:
            self._resolved_ids = np.unique(
                self.below.name_ids[self.below.answer_mask])
        return self._resolved_ids

    def queried_domains(self) -> Set[str]:
        return {self.names.name(int(nid)) for nid in self.queried_name_ids()}

    def resolved_domains(self) -> Set[str]:
        return {self.names.name(int(nid)) for nid in self.resolved_name_ids()}

    def resolved_names_ordered(self) -> List[str]:
        """Resolved names in deterministic (name-id) order — the tree
        insertion order of the digest pipeline, identical across
        processes."""
        return [self.names.name(int(nid)) for nid in self.resolved_name_ids()]

    def distinct_rrs(self) -> Set[RRKey]:
        """Distinct successful RR triples below the resolvers."""
        counts = self.below_rr_counts()
        return {self.rr_keys[rid] for rid in np.nonzero(counts)[0]}

    def distinct_rr_count(self) -> int:
        """Count of distinct below-stream RRs (``len(distinct_rrs())``
        without materialising the key set)."""
        return int(np.count_nonzero(self.below_rr_counts()))

    def distinct_rr_keys_ordered(self) -> List[RRKey]:
        """Below-stream RR keys in deterministic (RR-id) order."""
        counts = self.below_rr_counts()
        return [self.rr_keys[rid] for rid in np.nonzero(counts)[0]]

    # -- per-RR aggregates ---------------------------------------------

    def below_rr_counts(self) -> np.ndarray:
        """Answer events per RR id, below (total queries)."""
        if self._below_counts is None:
            rids = self.below.rr_ids
            self._below_counts = np.bincount(
                rids[rids >= 0], minlength=self.n_rrs)
        return self._below_counts

    def above_rr_counts(self) -> np.ndarray:
        """Answer events per RR id, above (cache misses)."""
        if self._above_counts is None:
            rids = self.above.rr_ids
            self._above_counts = np.bincount(
                rids[rids >= 0], minlength=self.n_rrs)
        return self._above_counts

    def below_counts_by_rr(self) -> Dict[RRKey, int]:
        """Dict form, mirroring ``FpDnsDataset.below_counts_by_rr``."""
        counts = self.below_rr_counts()
        return {self.rr_keys[rid]: int(counts[rid])
                for rid in np.nonzero(counts)[0]}

    def above_counts_by_rr(self) -> Dict[RRKey, int]:
        counts = self.above_rr_counts()
        return {self.rr_keys[rid]: int(counts[rid])
                for rid in np.nonzero(counts)[0]}

    def rr_ttls(self) -> np.ndarray:
        """Authoritative TTL per RR id (``-1`` where none recorded).

        Mirrors ``FpDnsDataset.ttls_by_rr`` exactly: the max TTL seen
        above the resolvers, else the *first* TTL-bearing observation
        below (the legacy dict fills on first sight below).
        """
        if self._rr_ttls is None:
            above_ttl = np.full(self.n_rrs, -1, dtype=np.int64)
            mask = (self.above.rr_ids >= 0) & (self.above.ttls >= 0)
            if mask.any():
                np.maximum.at(above_ttl, self.above.rr_ids[mask],
                              self.above.ttls[mask])
            result = above_ttl
            mask = (self.below.rr_ids >= 0) & (self.below.ttls >= 0)
            if mask.any():
                rids = self.below.rr_ids[mask]
                ttls = self.below.ttls[mask]
                first_rids, first_pos = np.unique(rids, return_index=True)
                fallback = first_rids[result[first_rids] < 0]
                fallback_pos = first_pos[result[first_rids] < 0]
                result[fallback] = ttls[fallback_pos]
            self._rr_ttls = result
        return self._rr_ttls

    def ttls_by_rr(self) -> Dict[RRKey, int]:
        """Dict form, mirroring ``FpDnsDataset.ttls_by_rr``."""
        ttls = self.rr_ttls()
        return {self.rr_keys[rid]: int(ttls[rid])
                for rid in np.nonzero(ttls >= 0)[0]}

    # -- clients -------------------------------------------------------

    def client_counts_by_name(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct querying clients per resolved name.

        Returns ``(name_ids, counts)`` over the names that had at
        least one client-attributed answer below, sorted by name id.
        """
        if self._client_pairs is None:
            mask = self.below.answer_mask & (self.below.client_ids >= 0)
            nids = self.below.name_ids[mask].astype(np.int64)
            cids = self.below.client_ids[mask]
            pairs = np.unique((nids << 32) | cids)
            pair_names = (pairs >> 32).astype(np.int64)
            name_ids, counts = np.unique(pair_names, return_counts=True)
            self._client_pairs = (name_ids, counts)
        return self._client_pairs

    def mining_roots(self, suffixes: SuffixList) -> List[str]:
        """Sorted effective 2LDs of the resolved names — the starting
        zones for Algorithm 1, identical to
        ``DomainNameTree.effective_2lds`` on the day's tree but derived
        from the memoised per-name effective-2LD column instead of a
        fresh walk over every black node."""
        e2ld_ids, zones = self.names.effective_2ld_ids(suffixes)
        root_ids = e2ld_ids[self.resolved_name_ids()]
        return sorted(zones[int(zid)] for zid in np.unique(root_ids)
                      if zid >= 0)

    # -- columnar (de)serialisation ------------------------------------

    def to_columns(self) -> Dict[str, np.ndarray]:
        """The digest as a flat dict of numpy arrays — everything a
        warm session needs, with every string behind a pool.

        Layout (the fpDNS-v2 payload of :mod:`repro.pdns.columnar`):
        the interned name pool (``names_blob``/``names_offsets``), the
        RR identity table as parallel columns over a deduplicated
        rdata pool, and one array per :data:`STREAM_FIELDS` field per
        stream.  :meth:`from_columns` is the exact inverse.
        """
        names_blob, names_offsets = encode_string_pool(self.names.names)
        rdata_ids: List[int] = []
        rdata_pool: Dict[str, int] = {}
        rdata_strings: List[str] = []
        for _, _, rdata in self.rr_keys:
            rid = rdata_pool.get(rdata)
            if rid is None:
                rid = len(rdata_strings)
                rdata_pool[rdata] = rid
                rdata_strings.append(rdata)
            rdata_ids.append(rid)
        rdata_blob, rdata_offsets = encode_string_pool(rdata_strings)
        columns: Dict[str, np.ndarray] = {
            "names_blob": names_blob,
            "names_offsets": names_offsets,
            "rr_name_ids": self.rr_name_ids,
            "rr_qtypes": np.array(
                [RRTYPE_CODES[qtype] for _, qtype, _ in self.rr_keys],
                dtype=np.int16),
            "rr_rdata_ids": np.array(rdata_ids, dtype=np.int32),
            "rdata_blob": rdata_blob,
            "rdata_offsets": rdata_offsets,
        }
        for prefix, stream in (("below", self.below), ("above", self.above)):
            for field_name in STREAM_FIELDS:
                columns[f"{prefix}_{field_name}"] = getattr(stream,
                                                            field_name)
        return columns

    @classmethod
    def from_columns(cls, day: str,
                     columns: Dict[str, np.ndarray]) -> "DayDigest":
        """Rebuild a digest from :meth:`to_columns` output.

        This is the warm path: disk -> numpy -> digest.  No
        :class:`~repro.core.records.FpDnsEntry` is materialised and no
        name is re-interned — the name table is reconstructed with a
        deferred id map, and the only per-item Python work is the RR
        key list (distinct RRs, orders of magnitude fewer than
        entries).
        """
        names = NameTable.from_names(decode_string_pool(
            columns["names_blob"], columns["names_offsets"]))
        rdata_strings = decode_string_pool(columns["rdata_blob"],
                                           columns["rdata_offsets"])
        name_list = names._names
        rr_keys: List[RRKey] = [
            (name_list[nid], RRTYPE_BY_CODE[code], rdata_strings[rid])
            for nid, code, rid in zip(columns["rr_name_ids"].tolist(),
                                      columns["rr_qtypes"].tolist(),
                                      columns["rr_rdata_ids"].tolist())]
        streams: List[StreamColumns] = []
        for prefix in ("below", "above"):
            streams.append(StreamColumns(
                timestamps=columns[f"{prefix}_timestamps"],
                name_ids=columns[f"{prefix}_name_ids"],
                rr_ids=columns[f"{prefix}_rr_ids"],
                client_ids=columns[f"{prefix}_client_ids"],
                rcodes=columns[f"{prefix}_rcodes"],
                qtypes=columns[f"{prefix}_qtypes"],
                ttls=columns[f"{prefix}_ttls"]))
        return cls(day=day, names=names, rr_keys=rr_keys,
                   rr_name_ids=np.asarray(columns["rr_name_ids"],
                                          dtype=np.int64),
                   below=streams[0], above=streams[1])

    # -- miner-group matching ------------------------------------------

    def match_counts(self, groups: Set[Tuple[str, int]]
                     ) -> Tuple[int, int, int]:
        """How much of the day the mined groups cover: counts of
        (queried names, resolved names, distinct RRs) matching."""
        mask = self.names.match_mask(groups)
        queried = int(np.count_nonzero(mask[self.queried_name_ids()]))
        resolved = int(np.count_nonzero(mask[self.resolved_name_ids()]))
        counts = self.below_rr_counts()
        rr_nids = self.rr_name_ids[np.nonzero(counts)[0]]
        rrs = int(np.count_nonzero(mask[rr_nids]))
        return queried, resolved, rrs


#: Per-row fields one shard ships for one stream — :data:`STREAM_FIELDS`
#: plus the generating-event sequence tag (the k-way merge key) and the
#: non-answer rdata ids (exact entry round-trip).  Part of the shard
#: IPC contract of :mod:`repro.traffic.parallel`.
SHARD_STREAM_FIELDS: Tuple[str, ...] = STREAM_FIELDS + ("seqs",
                                                        "xrdata_ids")


def _first_appearance(ids: np.ndarray, n: int) -> Tuple[np.ndarray,
                                                        np.ndarray]:
    """Renumber interim ids by first appearance in ``ids``.

    Returns ``(order, rank)``: ``order`` lists interim ids by first
    occurrence position and ``rank[interim]`` is the final dense id —
    exactly the numbering an entry-at-a-time interning pass over the
    same row sequence would assign, computed vectorised.
    """
    first = np.full(n, ids.size, dtype=np.int64)
    np.minimum.at(first, ids, np.arange(ids.size, dtype=np.int64))
    order = np.argsort(first, kind="stable")
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n, dtype=np.int64)
    return order, rank


def _remap_signed(remap: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """Apply ``remap`` to ``ids`` passing ``-1`` sentinels through."""
    extended = np.concatenate([remap,
                               np.array([-1], dtype=remap.dtype)])
    return extended[np.where(ids >= 0, ids, len(remap))]


def _intern_pool(strings: List[str], pool: Dict[str, int],
                 values: List[str]) -> np.ndarray:
    """Fold one shard's string pool into the global pool; returns the
    local-id -> interim-global-id remap array."""
    remap = np.empty(len(strings), dtype=np.int64)
    for local_id, value in enumerate(strings):
        interim = pool.get(value)
        if interim is None:
            interim = len(values)
            pool[value] = interim
            values.append(value)
        remap[local_id] = interim
    return remap


@dataclass
class MergedShardDay:
    """One day merged from shard columns: the digest plus the
    non-answer rdata columns exact entry round-trip needs."""

    digest: DayDigest
    below_xrdata_ids: np.ndarray
    above_xrdata_ids: np.ndarray
    xrdata_strings: List[str]


def merge_shard_columns(day: str,
                        shards: Sequence[Dict[str, np.ndarray]]
                        ) -> MergedShardDay:
    """Deterministic ``(timestamp, seq)`` k-way merge at the column
    level.

    ``shards`` are the per-shard column dicts of
    :class:`repro.traffic.parallel.ShardColumnsBuilder` (local name/
    rdata pools, local RR tables, per-stream
    :data:`SHARD_STREAM_FIELDS` arrays).  Event-sequence tags are
    disjoint across shards and each shard's streams are already
    ``(timestamp, seq)``-sorted, so a stable lexsort over the
    concatenation restores exactly the serial interleaving — the same
    contract the old entry-level ``heapq.merge`` provided, minus the
    per-entry Python objects.

    The resulting digest is *identical* to
    ``build_day_digest(serial_dataset)``: name and RR ids are
    renumbered to first-appearance order over the merged below stream
    then the merged above stream, which is precisely the order the
    entry-at-a-time interning pass assigns
    (``tests/traffic/test_parallel.py`` pins column equality).
    """
    # -- 1. fold shard-local pools into interim global pools ------------
    name_pool: Dict[str, int] = {}
    name_values: List[str] = []
    rdata_pool: Dict[str, int] = {}
    rdata_values: List[str] = []
    xrdata_pool: Dict[str, int] = {}
    xrdata_values: List[str] = []
    name_remaps: List[np.ndarray] = []
    rr_remaps: List[np.ndarray] = []
    xrdata_remaps: List[np.ndarray] = []
    rr_ids: Dict[Tuple[int, int, int], int] = {}
    rr_rows: List[Tuple[int, int, int]] = []
    for columns in shards:
        name_remap = _intern_pool(
            decode_string_pool(columns["names_blob"],
                               columns["names_offsets"]),
            name_pool, name_values)
        rdata_remap = _intern_pool(
            decode_string_pool(columns["rdata_blob"],
                               columns["rdata_offsets"]),
            rdata_pool, rdata_values)
        xrdata_remaps.append(_intern_pool(
            decode_string_pool(columns["xrdata_blob"],
                               columns["xrdata_offsets"]),
            xrdata_pool, xrdata_values))
        name_remaps.append(name_remap)
        rr_remap = np.empty(len(columns["rr_name_ids"]), dtype=np.int64)
        for local_rid, (local_nid, qtype_code, local_rdid) in enumerate(
                zip(columns["rr_name_ids"].tolist(),
                    columns["rr_qtypes"].tolist(),
                    columns["rr_rdata_ids"].tolist())):
            key = (int(name_remap[local_nid]), int(qtype_code),
                   int(rdata_remap[local_rdid]))
            interim = rr_ids.get(key)
            if interim is None:
                interim = len(rr_rows)
                rr_ids[key] = interim
                rr_rows.append(key)
            rr_remap[local_rid] = interim
        rr_remaps.append(rr_remap)

    # -- 2. concatenate, remap to interim ids, restore serial order -----
    merged: Dict[str, Dict[str, np.ndarray]] = {}
    for prefix in ("below", "above"):
        parts: Dict[str, List[np.ndarray]] = {
            field: [] for field in SHARD_STREAM_FIELDS}
        for shard_index, columns in enumerate(shards):
            for field in SHARD_STREAM_FIELDS:
                array = columns[f"{prefix}_{field}"]
                if field == "name_ids":
                    array = name_remaps[shard_index][array]
                elif field == "rr_ids":
                    array = _remap_signed(rr_remaps[shard_index], array)
                elif field == "xrdata_ids":
                    array = _remap_signed(xrdata_remaps[shard_index],
                                          array)
                parts[field].append(array)
        stream = {field: np.concatenate(parts[field])
                  for field in SHARD_STREAM_FIELDS}
        if len(shards) > 1:
            # Stable sort: rows of one response share (timestamp, seq)
            # and must keep their shard-local (generation) order; seqs
            # are disjoint across shards so ties never cross shards.
            perm = np.lexsort((stream["seqs"], stream["timestamps"]))
            stream = {field: array[perm]
                      for field, array in stream.items()}
        merged[prefix] = stream

    # -- 3. renumber names/RRs to first-appearance (serial) order -------
    all_name_ids = np.concatenate([merged["below"]["name_ids"],
                                   merged["above"]["name_ids"]])
    name_order, name_rank = _first_appearance(all_name_ids,
                                              len(name_values))
    all_rr_ids = np.concatenate([merged["below"]["rr_ids"],
                                 merged["above"]["rr_ids"]])
    rr_order, rr_rank = _first_appearance(all_rr_ids[all_rr_ids >= 0],
                                          len(rr_rows))
    final_names = [name_values[int(interim)] for interim in name_order]
    names = NameTable.from_names(final_names)
    rr_keys: List[RRKey] = []
    rr_name_ids = np.empty(len(rr_rows), dtype=np.int64)
    for final_rid, interim in enumerate(rr_order.tolist()):
        interim_nid, qtype_code, interim_rdid = rr_rows[interim]
        final_nid = int(name_rank[interim_nid])
        rr_keys.append((final_names[final_nid],
                        RRTYPE_BY_CODE[qtype_code],
                        rdata_values[interim_rdid]))
        rr_name_ids[final_rid] = final_nid

    streams: Dict[str, StreamColumns] = {}
    xrdata_columns: Dict[str, np.ndarray] = {}
    for prefix in ("below", "above"):
        stream = merged[prefix]
        streams[prefix] = StreamColumns(
            timestamps=np.ascontiguousarray(stream["timestamps"],
                                            dtype=np.float64),
            name_ids=name_rank[stream["name_ids"]].astype(np.int32),
            rr_ids=_remap_signed(rr_rank,
                                 stream["rr_ids"]).astype(np.int32),
            client_ids=np.ascontiguousarray(stream["client_ids"],
                                            dtype=np.int64),
            rcodes=np.ascontiguousarray(stream["rcodes"],
                                        dtype=np.int16),
            qtypes=np.ascontiguousarray(stream["qtypes"],
                                        dtype=np.int16),
            ttls=np.ascontiguousarray(stream["ttls"], dtype=np.int64))
        xrdata_columns[prefix] = np.ascontiguousarray(
            stream["xrdata_ids"], dtype=np.int32)
    digest = DayDigest(day=day, names=names, rr_keys=rr_keys,
                       rr_name_ids=rr_name_ids,
                       below=streams["below"], above=streams["above"])
    return MergedShardDay(digest=digest,
                          below_xrdata_ids=xrdata_columns["below"],
                          above_xrdata_ids=xrdata_columns["above"],
                          xrdata_strings=list(xrdata_values))


def build_day_digest(dataset: FpDnsDataset) -> DayDigest:
    """Build the columnar digest for one fpDNS day in a single pass.

    This is the only place the raw entry lists are iterated; every
    consumer afterwards works on the returned columns.
    """
    names = NameTable()
    rr_ids: Dict[RRKey, int] = {}
    rr_keys: List[RRKey] = []
    rr_name_ids: List[int] = []
    streams: List[StreamColumns] = []
    intern = names.intern
    qtype_codes = _RRTYPE_CODES
    for entries in (dataset.below, dataset.above):
        if entries:
            # Transpose once (C-speed), then derive each column with a
            # comprehension — measurably faster than a single
            # seven-append loop over hundreds of thousands of entries.
            timestamps, client_ids, qnames, qtypes, rcodes, ttls, rdatas = (
                zip(*entries))
        else:
            timestamps = client_ids = qnames = qtypes = ()
            rcodes = ttls = rdatas = ()
        name_ids = [intern(qname) for qname in qnames]
        answer_keys = [
            (qname, qtype, rdata)
            if (rcode is _NOERROR and rdata is not None) else None
            for qname, qtype, rcode, rdata
            in zip(qnames, qtypes, rcodes, rdatas)]
        col_rid: List[int] = []
        append_rid = col_rid.append
        get_rid = rr_ids.get
        for nid, key in zip(name_ids, answer_keys):
            if key is None:
                append_rid(-1)
                continue
            rid = get_rid(key)
            if rid is None:
                rid = len(rr_keys)
                rr_ids[key] = rid
                rr_keys.append(key)
                rr_name_ids.append(nid)
            append_rid(rid)
        streams.append(StreamColumns(
            timestamps=np.array(timestamps, dtype=np.float64),
            name_ids=np.array(name_ids, dtype=np.int32),
            rr_ids=np.array(col_rid, dtype=np.int32),
            client_ids=np.array(
                [-1 if cid is None else cid for cid in client_ids],
                dtype=np.int64),
            rcodes=np.array([rcode.value for rcode in rcodes],
                            dtype=np.int16),
            qtypes=np.array([qtype_codes[qtype] for qtype in qtypes],
                            dtype=np.int16),
            ttls=np.array([-1 if ttl is None else ttl for ttl in ttls],
                          dtype=np.int64)))
    return DayDigest(day=dataset.day, names=names, rr_keys=rr_keys,
                     rr_name_ids=np.array(rr_name_ids, dtype=np.int64),
                     below=streams[0], above=streams[1])


def digest_of(dataset: FpDnsDataset) -> DayDigest:
    """The day's columnar digest, without rebuilding one the dataset
    already carries.

    Columnar artifact loads (:mod:`repro.pdns.columnar`) attach the
    deserialised digest behind a ``day_digest()`` method; plain
    datasets fall back to :func:`build_day_digest`.  Every consumer
    that needs "the digest of this day" should call this, so warm
    sessions never pay the entry-materialisation tax.
    """
    supplier = getattr(dataset, "day_digest", None)
    if supplier is not None:
        digest = supplier()
        if isinstance(digest, DayDigest):
            return digest
    return build_day_digest(dataset)
