"""Content-addressed on-disk artifact store.

Both persistence layers — the fpDNS artifact cache
(:mod:`repro.traffic.artifacts`) and the miner result cache
(:mod:`repro.core.mining_pipeline`) — need the same filesystem
mechanics: a directory of blobs named by content-hash key, atomic
publication, corrupt-blob-is-a-miss load semantics, hit/miss counters,
size accounting and an LRU prune policy.  :class:`ArtifactStore`
implements exactly that once, at the bottom of the layering DAG; the
caches supply only their key derivation (see :mod:`repro.core.keys`)
and their encode/decode codecs.

Atomicity and concurrency
-------------------------
Every write goes to a **per-process unique** temp file in the store
directory (``tempfile.mkstemp``) and is published with ``os.replace``.
Two processes storing the same key concurrently (e.g.
:class:`~repro.core.mining_pipeline.CalendarMiner` workers sharing a
cache directory) therefore never clobber each other mid-write: each
writes its own temp file, and the last ``os.replace`` wins atomically.
A fixed temp name (``<key>.tmp``) would let the second writer truncate
the first one's half-written file — reprolint rule R008
(``atomic-cache-publish``) statically flags cache writes that skip
this pattern.

Load semantics
--------------
A missing, empty, unreadable or undecodable blob is a *miss*, never an
error: caches must degrade to recomputation, not crash a session.  The
decoder's exceptions are declared per call (``miss_on``) so unrelated
bugs still surface.

Prune policy
------------
``load`` refreshes the blob's mtime, so mtime order is LRU order.
:meth:`ArtifactStore.prune` (and the directory-level
:func:`prune_directory` behind the ``repro cache`` CLI) removes
least-recently-used blobs until the store fits a byte budget.  Pruning
only ever affects wall-clock time of later sessions — a pruned day is
re-simulated or re-mined bit-identically — so the policy is free to be
operational rather than deterministic.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Type, TypeVar, Union

__all__ = ["ArtifactStore", "CorruptArtifact", "DirectoryStats",
           "directory_stats", "prune_directory"]

PathLike = Union[str, Path]

T = TypeVar("T")

#: Suffix of in-flight temp files; never loaded, always safe to sweep.
TMP_SUFFIX = ".tmp"


class CorruptArtifact(ValueError):
    """A stored blob failed validation (empty, truncated, bad checksum)."""


class ArtifactStore:
    """One directory of content-addressed blobs with a fixed suffix.

    ``hits``/``misses`` count :meth:`load` outcomes so callers (and the
    cache tests) can verify a warm session actually read from disk.
    """

    def __init__(self, root: PathLike, suffix: str) -> None:
        if not suffix or suffix == TMP_SUFFIX:
            raise ValueError(f"invalid artifact suffix {suffix!r}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.suffix = suffix
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}{self.suffix}"

    # -- load ----------------------------------------------------------

    def load(self, key: str, decode: Callable[[bytes], T],
             miss_on: Tuple[Type[BaseException], ...] = ()) -> Optional[T]:
        """Decoded blob for ``key``, or ``None`` (counted as a miss).

        ``decode`` turns raw bytes into the cached value; any exception
        listed in ``miss_on`` (plus ``OSError``/``EOFError``/
        :class:`CorruptArtifact`, which cover unreadable, truncated and
        empty blobs) demotes the artifact to a miss.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
            if not data:
                raise CorruptArtifact(f"{path}: zero-length artifact")
            value = decode(data)
        except (OSError, EOFError, CorruptArtifact) + miss_on:
            self.misses += 1
            return None
        self.hits += 1
        self._mark_used(path)
        return value

    def load_bytes(self, key: str) -> Optional[bytes]:
        """Raw blob bytes for ``key``, or ``None`` (counted as a miss).

        The identity-codec convenience for callers that do their own
        decoding — e.g. the column-spill IPC transport
        (:mod:`repro.core.ipc`), whose packed buffers are validated by
        the unpacker rather than here.
        """
        return self.load(key, lambda data: data)

    def _mark_used(self, path: Path) -> None:
        """Refresh mtime so prune order tracks recency of use."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - raced with a prune/delete
            pass

    # -- store ---------------------------------------------------------

    def store_bytes(self, key: str, data: bytes) -> Path:
        """Atomically publish ``data`` under ``key``; returns the path.

        The temp file name is unique per process (``mkstemp``), so
        concurrent writers of the same key cannot clobber each other's
        half-written file; ``os.replace`` makes the publish atomic and
        last-writer-wins.
        """
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(dir=self.root, prefix=f"{key}.",
                                        suffix=TMP_SUFFIX)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:  # pragma: no cover - already replaced/removed
                pass
            raise
        return path

    def delete(self, key: str) -> bool:
        """Remove ``key``'s blob if present; True when something went."""
        try:
            self.path_for(key).unlink()
        except OSError:
            return False
        return True

    # -- accounting ----------------------------------------------------

    def keys(self) -> List[str]:
        """Stored keys, sorted (stable listing order for tools/tests)."""
        cut = len(self.suffix)
        return sorted(path.name[:-cut]
                      for path in self.root.glob(f"*{self.suffix}"))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{self.suffix}"))

    def total_bytes(self) -> int:
        total = 0
        for path in sorted(self.root.glob(f"*{self.suffix}")):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - raced with a delete
                pass
        return total

    def prune(self, max_bytes: int) -> List[str]:
        """Drop least-recently-used blobs until the store fits
        ``max_bytes``; returns the removed keys."""
        removed = [path.name[:-len(self.suffix)]
                   for path in _prune_paths(
                       sorted(self.root.glob(f"*{self.suffix}")), max_bytes)]
        return removed


# -- directory-level tooling (the ``repro cache`` CLI) -----------------


@dataclass(frozen=True)
class DirectoryStats:
    """Size accounting for one cache directory, grouped by suffix."""

    root: str
    n_artifacts: int
    total_bytes: int
    by_suffix: Tuple[Tuple[str, int, int], ...]  # (suffix, count, bytes)

    def render(self) -> str:
        lines = [f"{self.root}: {self.n_artifacts} artifacts, "
                 f"{self.total_bytes} bytes"]
        for suffix, count, size in self.by_suffix:
            lines.append(f"  {suffix:<16} {count:>6}  {size} bytes")
        return "\n".join(lines)


def _artifact_paths(root: Path) -> List[Path]:
    """Every published artifact in ``root`` (in-flight temps excluded)."""
    return sorted(path for path in root.iterdir()
                  if path.is_file() and not path.name.endswith(TMP_SUFFIX))


def _suffix_of(path: Path) -> str:
    """Grouping suffix: everything from the first dot of the name on."""
    name = path.name
    dot = name.find(".")
    return name[dot:] if dot >= 0 else ""


def directory_stats(root: PathLike) -> DirectoryStats:
    """Count and size every artifact under ``root``, grouped by suffix."""
    root_path = Path(root)
    sizes: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    total = 0
    n_artifacts = 0
    for path in _artifact_paths(root_path):
        try:
            size = path.stat().st_size
        except OSError:  # pragma: no cover - raced with a delete
            continue
        suffix = _suffix_of(path)
        sizes[suffix] = sizes.get(suffix, 0) + size
        counts[suffix] = counts.get(suffix, 0) + 1
        total += size
        n_artifacts += 1
    by_suffix = tuple(sorted((suffix, counts[suffix], sizes[suffix])
                             for suffix in sizes))
    return DirectoryStats(root=str(root_path), n_artifacts=n_artifacts,
                          total_bytes=total, by_suffix=by_suffix)


def _prune_paths(paths: List[Path], max_bytes: int) -> List[Path]:
    """Delete oldest-mtime paths until the remainder fits ``max_bytes``."""
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    stated: List[Tuple[float, str, int, Path]] = []
    total = 0
    for path in paths:
        try:
            stat = path.stat()
        except OSError:  # pragma: no cover - raced with a delete
            continue
        stated.append((stat.st_mtime, path.name, stat.st_size, path))
        total += stat.st_size
    removed: List[Path] = []
    for _, _, size, path in sorted(stated):
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced with a delete
            continue
        total -= size
        removed.append(path)
    return removed


def prune_directory(root: PathLike, max_bytes: int) -> List[str]:
    """LRU-prune *all* artifacts under ``root`` (any suffix) until the
    directory fits ``max_bytes``; returns removed file names."""
    return [path.name
            for path in _prune_paths(_artifact_paths(Path(root)), max_bytes)]
