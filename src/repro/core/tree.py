"""Domain name tree (Section V-A1).

The miner operates on a tree whose root is ``.``, whose first level is
the TLDs, and so on.  Nodes that carried at least one resource record
in the observation window are *black*; intermediate nodes that only
exist as ancestors are *white*.  Classifying a depth group as
disposable *decolors* its nodes so the recursion below the zone sees
only what remains (Figures 8-9, Algorithm 1 lines 9-11).

Depth of a node = the number of labels in its name (``a.example.com``
has depth 3), i.e. the path length to the root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.names import label_count, labels, normalize
from repro.core.suffix import SuffixList

__all__ = ["TreeNode", "DomainNameTree"]


@dataclass
class TreeNode:
    """One node of the domain name tree.

    ``subtree_black`` counts the black nodes in the subtree rooted
    here (including this node).  :class:`DomainNameTree` maintains it
    on every ``add_domain``/``decolor``, which makes
    :meth:`has_black_descendant` O(1) and lets the black-node
    traversals prune entire all-white subtrees — the walks that
    dominated ``DisposableZoneMiner``'s recursion are now proportional
    to their output, not to the tree size.
    """

    name: str                       # full domain name ("" for the root)
    label: str                      # this node's own label
    depth: int                      # labels to the root
    black: bool = False
    children: Dict[str, "TreeNode"] = field(default_factory=dict)
    subtree_black: int = 0          # black nodes here and below

    def child(self, label: str) -> Optional["TreeNode"]:
        return self.children.get(label)

    def iter_descendants(self) -> Iterator["TreeNode"]:
        """Yield every strict descendant (pre-order)."""
        stack = list(self.children.values())
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def iter_black_descendants(self) -> Iterator["TreeNode"]:
        """Yield every *black* strict descendant, pruning all-white
        subtrees via the maintained counters.

        Visits nodes in the same relative order as filtering
        :meth:`iter_descendants` on ``black`` — pruned subtrees
        contribute nothing — so callers observe identical sequences.
        """
        stack = [child for child in self.children.values()
                 if child.subtree_black]
        while stack:
            node = stack.pop()
            if node.black:
                yield node
            stack.extend(child for child in node.children.values()
                         if child.subtree_black)

    def black_descendants(self) -> List["TreeNode"]:
        return list(self.iter_black_descendants())

    def has_black_descendant(self) -> bool:
        """O(1): the maintained subtree counter, minus this node."""
        return self.subtree_black - (1 if self.black else 0) > 0


class DomainNameTree:
    """Tree over the domain names observed in one fpDNS day."""

    def __init__(self, names: Optional[Iterable[str]] = None) -> None:
        self._root = TreeNode(name="", label=".", depth=0)
        self._black_count = 0
        for name in names or []:
            self.add_domain(name)

    @property
    def root(self) -> TreeNode:
        return self._root

    @property
    def black_count(self) -> int:
        return self._black_count

    def add_domain(self, name: str) -> TreeNode:
        """Insert ``name`` as a black node (creating white ancestors)."""
        path = self._ensure_path(name)
        node = path[-1]
        if not node.black:
            node.black = True
            self._black_count += 1
            for ancestor in path:
                ancestor.subtree_black += 1
        return node

    def _ensure_path(self, name: str) -> List[TreeNode]:
        """The node path from the root to ``name``, created as needed."""
        parts = labels(name)
        node = self._root
        path = [node]
        # Walk from the TLD leftwards.
        for depth, index in enumerate(range(len(parts) - 1, -1, -1), start=1):
            label = parts[index]
            child = node.children.get(label)
            if child is None:
                child = TreeNode(name=".".join(parts[index:]), label=label,
                                 depth=depth)
                node.children[label] = child
            node = child
            path.append(node)
        return path

    def find(self, name: str) -> Optional[TreeNode]:
        """Locate the node for ``name``, or ``None`` if absent."""
        path = self._find_path(name)
        return path[-1] if path else None

    def _find_path(self, name: str) -> Optional[List[TreeNode]]:
        """Root-to-node path for ``name``, or ``None`` if absent."""
        parts = labels(name)
        node = self._root
        path = [node]
        for index in range(len(parts) - 1, -1, -1):
            node = node.children.get(parts[index])
            if node is None:
                return None
            path.append(node)
        return path

    def is_black(self, name: str) -> bool:
        node = self.find(name)
        return node is not None and node.black

    def decolor(self, name: str) -> bool:
        """Turn ``name``'s node white; returns True if it was black."""
        path = self._find_path(name)
        if path is None or not path[-1].black:
            return False
        path[-1].black = False
        self._black_count -= 1
        for ancestor in path:
            ancestor.subtree_black -= 1
        return True

    def decolor_group(self, names: Iterable[str]) -> int:
        """Decolor every name in ``names``; returns the count changed."""
        return sum(1 for name in names if self.decolor(name))

    # -- Algorithm 1 support --------------------------------------------

    def depth_groups(self, zone: str) -> Dict[int, List[str]]:
        """Group the black strict descendants of ``zone`` by depth.

        Returns ``{k: [names of black nodes at depth k under zone]}``
        — the paper's ``G_k`` sets.  Empty dict when ``zone`` is not in
        the tree or has no black descendants.
        """
        zone_node = self.find(zone)
        if zone_node is None:
            return {}
        groups: Dict[int, List[str]] = {}
        for node in zone_node.iter_black_descendants():
            groups.setdefault(node.depth, []).append(node.name)
        return groups

    def adjacent_labels(self, zone: str, group: Iterable[str]) -> List[str]:
        """The paper's ``L_k``: for each name in ``group``, the label
        immediately below ``zone`` on the path to that name.

        For zone ``example.com`` and group ``{2.a.example.com,
        4.b.example.com}`` this is ``[a, b]`` (duplicates preserved so
        callers can build either the set or the multiset).
        """
        zone_depth = label_count(zone)
        result = []
        zone_n = normalize(zone)
        for name in group:
            parts = labels(name)
            if len(parts) <= zone_depth:
                raise ValueError(f"{name} is not a strict descendant of {zone}")
            if ".".join(parts[-zone_depth:]) != zone_n:
                raise ValueError(f"{name} is not under zone {zone}")
            result.append(parts[-(zone_depth + 1)])
        return result

    def children_of(self, zone: str) -> List[str]:
        """Names of the direct children of ``zone`` in the tree."""
        node = self.find(zone)
        if node is None:
            return []
        return [child.name for child in node.children.values()]

    def children_with_black(self, zone: str) -> List[str]:
        """Direct children of ``zone`` whose subtree holds ≥1 black node.

        The miner's recursion (Algorithm 1 lines 15-17) visits every
        child, but a child without black descendants contributes
        nothing — the maintained counters let it be skipped without
        changing any finding.  Order matches :meth:`children_of`
        filtered.
        """
        node = self.find(zone)
        if node is None:
            return []
        return [child.name for child in node.children.values()
                if child.subtree_black]

    def effective_2lds(self, suffix_list: SuffixList) -> List[str]:
        """All effective 2LDs present in the tree — the starting zones
        for Algorithm 1.

        ``suffix_list`` is a :class:`repro.core.suffix.SuffixList`.
        """
        seen: Set[str] = set()
        for node in self._root.iter_black_descendants():
            two_ld = suffix_list.effective_2ld(node.name)
            if two_ld is not None:
                seen.add(two_ld)
        return sorted(seen)

    def black_names(self) -> List[str]:
        return [node.name for node in self._root.iter_black_descendants()]

    def __contains__(self, name: str) -> bool:
        return self.find(name) is not None

    def __len__(self) -> int:
        """Total node count (black and white), excluding the root."""
        return sum(1 for _ in self._root.iter_descendants())
