"""Passive-DNS dataset containers (Section III-A).

The study uses two datasets:

* **fpDNS** — every response observed at the monitoring point, as
  tuples of (timestamp, anonymised client id, queried name, query
  type, TTL, RDATA).  We keep the below-the-resolvers stream and the
  above-the-resolvers stream separately, since all volume, hit-rate
  and NXDOMAIN analyses depend on which side an event was seen on.
* **rpDNS** — the distinct successful resource records, each tagged
  with the first date it was seen (built by
  :class:`repro.pdns.database.PassiveDnsDatabase`).

These containers are the mining system's input data model, so they live
in ``repro.core`` at the bottom of the layering DAG; the collection
machinery that *produces* them stays in :mod:`repro.pdns`, which
re-exports these names from :mod:`repro.pdns.records` for
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from repro.core.dnstypes import RCode, RRType

__all__ = ["FpDnsEntry", "FpDnsDataset", "RpDnsEntry", "RRKey",
           "rr_sort_key"]

RRKey = Tuple[str, RRType, str]


def rr_sort_key(key: RRKey) -> Tuple[str, str, str]:
    """Total order for RR identity triples.

    ``RRType`` is a plain :class:`enum.Enum` (members do not compare),
    so any code that needs a deterministic iteration order over RR keys
    must sort through this projection rather than ``sorted()`` on the
    raw tuples.
    """
    return (key[0], key[1].value, key[2])


class FpDnsEntry(NamedTuple):
    """One observed response record.

    For a successful answer there is one entry per resource record in
    the answer section (``ttl``/``rdata`` set).  An NXDOMAIN produces a
    single entry with ``rcode=NXDOMAIN`` and no TTL/RDATA — the paper
    plots NXDOMAIN volumes, so failures must be visible in the stream.
    ``client_id`` is ``None`` for above-the-resolver events (the
    requester there is the RDNS server, not a customer).

    Tuple-backed (``NamedTuple``) rather than a dataclass: the
    collector constructs one of these per answer RR per response —
    tens of millions per simulated year — so C-level construction,
    ``__slots__``-free tuple storage, and compact pickling (the shard
    workers ship entries back over IPC) all matter here.
    """

    timestamp: float
    client_id: Optional[int]
    qname: str
    qtype: RRType
    rcode: RCode
    ttl: Optional[int] = None
    rdata: Optional[str] = None

    @property
    def is_answer(self) -> bool:
        return self.rcode is RCode.NOERROR and self.rdata is not None

    def rr_key(self) -> Optional[RRKey]:
        """Identity triple of the carried RR, or ``None`` for failures."""
        if not self.is_answer:
            return None
        return (self.qname, self.qtype, self.rdata)  # type: ignore[return-value]


@dataclass
class FpDnsDataset:
    """One day of full passive DNS: both monitored streams.

    ``day`` is a label such as ``"2011-02-01"``; the analyses treat it
    opaquely but the growth experiments order datasets by it.
    """

    day: str
    below: List[FpDnsEntry] = field(default_factory=list)
    above: List[FpDnsEntry] = field(default_factory=list)

    # -- volume ------------------------------------------------------

    def below_volume(self) -> int:
        return len(self.below)

    def above_volume(self) -> int:
        return len(self.above)

    # -- domain populations -------------------------------------------

    def queried_domains(self) -> Set[str]:
        """Every distinct name queried (successful or not), below."""
        return {entry.qname for entry in self.below}

    def resolved_domains(self) -> Set[str]:
        """Distinct names with at least one successful answer, below."""
        return {entry.qname for entry in self.below if entry.is_answer}

    def distinct_rrs(self) -> Set[RRKey]:
        """Distinct successful (name, type, rdata) triples, below."""
        keys = set()
        for entry in self.below:
            key = entry.rr_key()
            if key is not None:
                keys.add(key)
        return keys

    # -- per-RR aggregation --------------------------------------------

    def below_counts_by_rr(self) -> Dict[RRKey, int]:
        """Answer events per RR below the resolvers (total queries)."""
        counts: Dict[RRKey, int] = {}
        for entry in self.below:
            key = entry.rr_key()
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def above_counts_by_rr(self) -> Dict[RRKey, int]:
        """Answer events per RR above the resolvers (cache misses)."""
        counts: Dict[RRKey, int] = {}
        for entry in self.above:
            key = entry.rr_key()
            if key is not None:
                counts[key] = counts.get(key, 0) + 1
        return counts

    def ttls_by_rr(self) -> Dict[RRKey, int]:
        """Authoritative TTL per RR (as observed above the resolvers,
        falling back to the max TTL seen below, which is the least
        decayed observation)."""
        ttls: Dict[RRKey, int] = {}
        for entry in self.above:
            key = entry.rr_key()
            if key is not None and entry.ttl is not None:
                ttls[key] = max(ttls.get(key, 0), entry.ttl)
        for entry in self.below:
            key = entry.rr_key()
            if key is not None and key not in ttls and entry.ttl is not None:
                ttls[key] = max(ttls.get(key, 0), entry.ttl)
        return ttls

    def nxdomain_volume_below(self) -> int:
        return sum(1 for e in self.below if e.rcode is RCode.NXDOMAIN)

    def nxdomain_volume_above(self) -> int:
        return sum(1 for e in self.above if e.rcode is RCode.NXDOMAIN)


@dataclass(frozen=True)
class RpDnsEntry:
    """One deduplicated resource record with its first-seen day."""

    qname: str
    qtype: RRType
    rdata: str
    first_seen: str

    def rr_key(self) -> RRKey:
        return (self.qname, self.qtype, self.rdata)
