"""Zero-copy column transport between worker processes.

The measured failure mode of the first parallel engines (ROADMAP,
``BENCH_simulator.json``: 0.18x serial at 4 workers) was the IPC
payload: every worker pickled hundreds of thousands of per-entry
tuples back to the coordinator, so the pool spent its wall-clock
serialising Python objects instead of simulating DNS traffic.  This
module ships the *columns* instead — the same numpy arrays the
fpDNS-v2 artifact format persists — through one of two transports:

* **shared memory** (:data:`IPC_SHM`, the default where available) —
  the producer packs its column dict into one
  :class:`multiprocessing.shared_memory.SharedMemory` segment; the
  consumer maps the segment and reads the arrays as zero-copy views.
  The only cross-process cost is one memcpy into the segment.
* **artifact spill** (:data:`IPC_SPILL`) — the producer stores the
  packed blob through a shared
  :class:`~repro.core.artifact_store.ArtifactStore` directory and
  hands over the content key; the consumer loads the blob by key.
  This is the fallback for hosts without POSIX shared memory and the
  natural choice when the blobs should outlive the pool anyway.

Both transports carry the identical packed bytes
(:func:`pack_columns`/:func:`unpack_columns`), so the choice changes
wall-clock time and nothing else — the determinism contract of the
sharded simulator and the calendar miner is untouched.

Lifetime discipline
-------------------
A shared-memory segment survives its creating process until someone
unlinks it.  The contract here: the **producer** publishes and closes;
the **consumer** maps, reads, then calls :meth:`ColumnsRef.release`.
Producers that fail mid-task must release whatever they already
published (:class:`ColumnChannel` tracks in-flight refs for exactly
that), and consumers must release inside ``finally`` so a failed
worker never leaks segments — ``tests/core/test_ipc.py`` pins both.
"""

from __future__ import annotations

import json
import struct
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.artifact_store import ArtifactStore, CorruptArtifact

__all__ = ["IPC_SHM", "IPC_SPILL", "IPC_AUTO", "IPC_MODES", "IpcStats",
           "ColumnsRef", "ColumnChannel", "pack_columns", "unpack_columns",
           "packed_nbytes", "shared_memory_available", "resolve_ipc_mode"]

#: Transport selectors.  ``auto`` resolves to shared memory when the
#: platform provides it, else to artifact spill.
IPC_SHM = "shm"
IPC_SPILL = "spill"
IPC_AUTO = "auto"
IPC_MODES = (IPC_AUTO, IPC_SHM, IPC_SPILL)

_PACK_MAGIC = b"RCOL1\n"
_ALIGN = 8

#: File suffix of spilled column blobs (shared with the ``repro
#: cache`` CLI's per-suffix accounting).
SPILL_SUFFIX = ".cols"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_columns(columns: Dict[str, np.ndarray]) -> bytes:
    """Pack a column dict into one contiguous self-describing buffer.

    Layout: magic, a uint64 header length, a JSON header listing each
    array's key/dtype/shape and byte-offset *relative to the aligned
    payload base* (so the header text never feeds back into the
    offsets), then the raw array bytes, each 8-byte aligned.
    :func:`unpack_columns` reads the arrays back as zero-copy views
    over the buffer — the format exists so one buffer can cross a
    process boundary in a single memcpy.
    """
    entries: List[Dict[str, object]] = []
    blobs: List[bytes] = []
    cursor = 0
    for key in sorted(columns):
        array = np.ascontiguousarray(columns[key])
        cursor = _aligned(cursor)
        entries.append({
            "key": key,
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "nbytes": int(array.nbytes),
            "offset": cursor,
        })
        blobs.append(array.tobytes())
        cursor += int(array.nbytes)
    header = json.dumps(entries, separators=(",", ":")).encode("utf-8")
    parts = [_PACK_MAGIC, struct.pack("<Q", len(header)), header]
    written = len(_PACK_MAGIC) + 8 + len(header)
    base = _aligned(written)
    if base != written:
        parts.append(b"\x00" * (base - written))
    payload_cursor = 0
    for entry, blob in zip(entries, blobs):
        target = int(entry["offset"])  # type: ignore[arg-type]
        if target != payload_cursor:
            parts.append(b"\x00" * (target - payload_cursor))
            payload_cursor = target
        parts.append(blob)
        payload_cursor += len(blob)
    return b"".join(parts)


def packed_nbytes(columns: Dict[str, np.ndarray]) -> int:
    """Upper bound on the byte size :func:`pack_columns` would produce
    (cheap estimate of the IPC payload: exact array bytes plus
    alignment padding plus a generous per-entry header allowance)."""
    return sum(int(np.ascontiguousarray(array).nbytes) + _ALIGN
               + 128 + len(key)
               for key, array in columns.items()) + len(_PACK_MAGIC) + 16


def unpack_columns(buffer: "memoryview | bytes",
                   source: str = "<buffer>") -> Dict[str, np.ndarray]:
    """Read a :func:`pack_columns` buffer back into a column dict.

    The returned arrays are zero-copy views over ``buffer``: they stay
    valid only while the underlying memory (shared-memory segment or
    bytes object) is alive.  Callers that outlive the buffer must copy.

    Raises :class:`~repro.core.artifact_store.CorruptArtifact` on any
    structural mismatch, which the artifact-spill load path maps to a
    cache miss.
    """
    view = memoryview(buffer)
    if bytes(view[:len(_PACK_MAGIC)]) != _PACK_MAGIC:
        raise CorruptArtifact(f"{source}: not a packed column buffer")
    header_len = struct.unpack(
        "<Q", bytes(view[len(_PACK_MAGIC):len(_PACK_MAGIC) + 8]))[0]
    header_start = len(_PACK_MAGIC) + 8
    try:
        entries = json.loads(
            bytes(view[header_start:header_start + header_len])
            .decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CorruptArtifact(
            f"{source}: bad column-buffer header: {exc}") from exc
    base = _aligned(header_start + header_len)
    columns: Dict[str, np.ndarray] = {}
    for entry in entries:
        offset = base + int(entry["offset"])
        nbytes = int(entry["nbytes"])
        if offset + nbytes > len(view):
            raise CorruptArtifact(
                f"{source}: truncated column buffer "
                f"(need {offset + nbytes}, have {len(view)} bytes)")
        array = np.frombuffer(view[offset:offset + nbytes],
                              dtype=np.dtype(entry["dtype"]))
        columns[str(entry["key"])] = array.reshape(
            tuple(int(dim) for dim in entry["shape"]))
    return columns


def shared_memory_available() -> bool:
    """Can this host create POSIX shared-memory segments?"""
    try:
        from multiprocessing import shared_memory
        probe = shared_memory.SharedMemory(create=True, size=16)
    except (ImportError, OSError):
        return False
    probe.close()
    probe.unlink()
    return True


def resolve_ipc_mode(mode: str) -> str:
    """Resolve ``auto`` to the best transport this host supports."""
    if mode not in IPC_MODES:
        raise ValueError(f"ipc mode {mode!r} not in {IPC_MODES}")
    if mode != IPC_AUTO:
        return mode
    return IPC_SHM if shared_memory_available() else IPC_SPILL


@dataclass(frozen=True)
class IpcStats:
    """Accounting for one parallel run's worker payload traffic.

    ``mode`` is ``inline`` (no pool, nothing crossed a process
    boundary), ``shm`` or ``spill``; ``payload_bytes`` is the total
    packed column bytes that crossed it; ``segments`` counts published
    segments/blobs.  Surfaced by both parallel engines (the sharded
    simulator and the calendar miner) so the benchmarks can report the
    IPC payload alongside wall-clock time.
    """

    mode: str
    payload_bytes: int
    segments: int


@dataclass(frozen=True)
class ColumnsRef:
    """A picklable handle to one published column set.

    ``kind`` selects the transport; ``token`` is the shared-memory
    segment name or the spill-store content key; ``nbytes`` is the
    packed payload size (the number the benchmarks report as the IPC
    payload); ``spill_root`` names the spill directory for
    :data:`IPC_SPILL` refs.
    """

    kind: str
    token: str
    nbytes: int
    spill_root: Optional[str] = None

    def release(self) -> None:
        """Free the published payload (unlink segment / delete blob).

        Idempotent: releasing an already-released ref is a no-op, so
        ``finally`` blocks on both sides of the pool can call it
        unconditionally.
        """
        if self.kind == IPC_SHM:
            try:
                from multiprocessing import shared_memory
                segment = shared_memory.SharedMemory(name=self.token)
            except (ImportError, OSError):
                return
            segment.close()
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - raced with another release
                pass
        elif self.spill_root is not None:
            ArtifactStore(self.spill_root, SPILL_SUFFIX).delete(self.token)


class ColumnChannel:
    """Publish/consume column dicts across a process pool.

    One channel is created per parallel run on each side of the pool
    (channels hold no shared state; refs are the wire format).  The
    producer side tracks everything it published so an exception path
    can release the in-flight segments (:meth:`release_published`).
    """

    def __init__(self, mode: str = IPC_AUTO,
                 spill_root: Optional[str] = None) -> None:
        self.mode = resolve_ipc_mode(mode)
        if self.mode == IPC_SPILL and spill_root is None:
            raise ValueError("spill transport requires a spill_root")
        self.spill_root = spill_root
        self._published: List[ColumnsRef] = []

    # -- producer side -------------------------------------------------

    def publish(self, token_hint: str,
                columns: Dict[str, np.ndarray]) -> ColumnsRef:
        """Pack ``columns`` and hand back a picklable ref.

        ``token_hint`` keys the payload — the spill blob's content key
        or the shared-memory segment's *name*.  Naming segments after a
        caller-supplied hint (rather than letting the kernel pick) is
        what lets a coordinating parent release every possible segment
        in its ``finally`` block even when the worker that published it
        died before shipping the ref back.  Hints must therefore be
        unique per payload within one run.
        """
        data = pack_columns(columns)
        if self.mode == IPC_SHM:
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(name=token_hint,
                                                 create=True,
                                                 size=max(1, len(data)))
            try:
                segment.buf[:len(data)] = data
            except BaseException:
                segment.close()
                segment.unlink()
                raise
            ref = ColumnsRef(kind=IPC_SHM, token=segment.name,
                             nbytes=len(data))
            segment.close()
        else:
            assert self.spill_root is not None
            store = ArtifactStore(self.spill_root, SPILL_SUFFIX)
            store.store_bytes(token_hint, data)
            ref = ColumnsRef(kind=IPC_SPILL, token=token_hint,
                             nbytes=len(data), spill_root=self.spill_root)
        self._published.append(ref)
        return ref

    def release_published(self) -> None:
        """Release every ref this channel published (producer failure
        path: nothing in flight may outlive the task that made it)."""
        while self._published:
            self._published.pop().release()

    # -- consumer side -------------------------------------------------

    @contextmanager
    def map(self, ref: ColumnsRef) -> Iterator[Dict[str, np.ndarray]]:
        """Map ``ref`` and yield its columns as zero-copy views.

        The views die with the context; callers keep only arrays
        derived from them (merges, digests).  The segment/blob itself
        is *not* released here — ownership of the payload stays with
        whoever coordinates the run (see module docstring).
        """
        if ref.kind == IPC_SHM:
            from multiprocessing import shared_memory
            segment = shared_memory.SharedMemory(name=ref.token)
            try:
                yield unpack_columns(segment.buf[:ref.nbytes],
                                     source=f"shm:{ref.token}")
            finally:
                segment.close()
        else:
            root = ref.spill_root
            assert root is not None
            store = ArtifactStore(root, SPILL_SUFFIX)
            data = store.load_bytes(ref.token)
            if data is None:
                raise CorruptArtifact(
                    f"spill:{ref.token}: blob vanished before the "
                    "consumer mapped it")
            yield unpack_columns(data, source=f"spill:{ref.token}")

    def fetch(self, ref: ColumnsRef) -> Dict[str, np.ndarray]:
        """Owned copies of a published payload's columns.

        :meth:`map` views are only valid while the segment is mapped,
        and a shared-memory segment refuses to close while *any* numpy
        view still points into it (``BufferError: cannot close
        exported pointers exist``) — a lifetime bug magnet for
        consumers that hold columns across other work.  ``fetch``
        trades one memcpy per payload (still zero *serialisation*) for
        arrays the caller owns outright: it copies every column out,
        drops the views, and unmaps before returning.
        """
        with self.map(ref) as views:
            copies = {key: np.array(array, copy=True)
                      for key, array in views.items()}
            # Drop the last view references *before* the context
            # closes the segment, or close() itself would raise.
            del views
        return copies
