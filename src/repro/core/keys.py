"""Content-hash key derivation shared by the on-disk caches.

Two cache layers key their artifacts by content hash:

* the fpDNS artifact cache (:mod:`repro.traffic.artifacts`) keys each
  simulated day by the canonical JSON of the simulator configuration
  plus the chronological day history;
* the miner result cache (:mod:`repro.core.mining_pipeline`) keys each
  day's mining output by the *data content* of the fpDNS day plus the
  miner configuration and classifier fingerprint.

Both reduce to the same primitive — a SHA-256 over a canonical byte
serialisation — which lives here, at the bottom of the layering DAG,
so every layer can derive keys without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from typing import Any, Mapping

from repro.core.records import FpDnsDataset, FpDnsEntry

__all__ = ["canonical_json_key", "versioned_key", "dataset_content_key",
           "compute_dataset_content_key", "object_fingerprint"]


def canonical_json_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``.

    Canonical means sorted keys and no whitespace, so logically equal
    payloads always hash identically regardless of construction order.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def versioned_key(format_tag: str, payload: Mapping[str, Any]) -> str:
    """The shared cache-key scheme: canonical JSON of ``payload`` with
    a ``format`` version field folded in.

    Every on-disk cache (fpDNS artifacts, miner results) derives its
    keys through this, so bumping a format tag invalidates exactly that
    cache's old entries and nothing else.
    """
    if "format" in payload:
        raise ValueError("payload must not carry its own 'format' field")
    return canonical_json_key({"format": format_tag, **payload})


def _entry_bytes(entry: FpDnsEntry) -> bytes:
    """A stable byte serialisation of one fpDNS entry.

    ``repr`` of the underlying tuple is deterministic: floats render
    via the shortest round-trip representation, enum members by their
    fixed names, and strings verbatim.
    """
    return repr(tuple(entry)).encode("utf-8")


def dataset_content_key(dataset: FpDnsDataset) -> str:
    """SHA-256 hex digest of an fpDNS day's *data content*.

    Hashes the day label and every entry of both streams in order, so
    two datasets hash equal exactly when they compare equal — whether
    they were simulated, loaded from an artifact cache, or built by
    hand.  This is the key material for the miner result cache: a
    warm session with unchanged data can skip mining entirely.
    """
    precomputed = getattr(dataset, "content_key", None)
    if isinstance(precomputed, str):
        # Columnar artifact loads carry the key computed (from the real
        # entries) at store time, so keying a warm day costs nothing
        # and — crucially — never materialises the lazy entry views.
        return precomputed
    return compute_dataset_content_key(dataset)


def compute_dataset_content_key(dataset: FpDnsDataset) -> str:
    """The entry-hashing loop behind :func:`dataset_content_key`,
    without the precomputed-key fast path.

    Split out so :class:`~repro.pdns.columnar.ColumnarFpDnsDataset` can
    compute its *own* key lazily (its ``content_key`` attribute is the
    fast path's probe target — calling the probing function from inside
    the property would recurse).
    """
    digest = hashlib.sha256()
    digest.update(dataset.day.encode("utf-8"))
    for stream_tag, entries in ((b"<", dataset.below), (b">", dataset.above)):
        digest.update(stream_tag)
        for entry in entries:
            digest.update(_entry_bytes(entry))
    return digest.hexdigest()


def object_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of an object's pickle serialisation.

    Used to fingerprint trained classifiers: training is deterministic
    (seeded), so equal configurations produce byte-equal pickles and
    therefore equal fingerprints, while any retrained or reconfigured
    model invalidates dependent cache entries.
    """
    return hashlib.sha256(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)).hexdigest()
