"""Daily disposable-zone ranking pipeline (Figure 10).

Ties the three stages together: (1) the fpDNS day is turned into a
domain name tree + hit-rate table by the *Domain Name Tree Builder*,
(2) the *Disposable Domain Classifier* (Algorithm 1) mines disposable
(zone, depth) groups, and (3) the *Disposable Zone Ranking* orders the
findings and computes the day's summary statistics — the per-day rows
behind Figures 11 and 13.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.classifier.base import BinaryClassifier
from repro.core.features import FeatureExtractor
from repro.core.groups import name_matches_groups
from repro.core.hitrate import (HitRateTable, compute_hit_rates,
                                hit_rates_from_digest)
from repro.core.interning import DayDigest
from repro.core.miner import (DisposableZoneFinding, DisposableZoneMiner,
                              MinerConfig)
from repro.core.names import label_count, parent
from repro.core.suffix import SuffixList, default_suffix_list
from repro.core.tree import DomainNameTree
from repro.core.records import FpDnsDataset

__all__ = ["DailyMiningResult", "DisposableZoneRanker", "build_tree_for_day",
           "build_tree_from_digest"]


def build_tree_for_day(dataset: FpDnsDataset) -> DomainNameTree:
    """Stage 1 (Domain Name Tree Builder): black nodes are the names
    that carried at least one RR below the resolvers that day."""
    tree = DomainNameTree()
    for name in dataset.resolved_domains():
        tree.add_domain(name)
    return tree


def build_tree_from_digest(digest: DayDigest) -> DomainNameTree:
    """Stage 1 over a columnar digest: the same black-node set, but
    inserted in deterministic name-id order (first-appearance order in
    the data) rather than ``set`` iteration order — so the resulting
    mining run is bit-identical across processes, which the parallel
    calendar miner and its result cache rely on."""
    tree = DomainNameTree()
    for name in digest.resolved_names_ordered():
        tree.add_domain(name)
    return tree


@dataclass
class DailyMiningResult:
    """Output of one day's pipeline run."""

    day: str
    findings: List[DisposableZoneFinding]
    queried_domains: int
    resolved_domains: int
    distinct_rrs: int
    disposable_queried: int
    disposable_resolved: int
    disposable_rrs: int

    @property
    def groups(self) -> Set[Tuple[str, int]]:
        return {finding.as_group_key() for finding in self.findings}

    @property
    def disposable_2lds(self) -> Set[str]:
        """Distinct effective 2LDs covering the disposable zones."""
        suffixes = default_suffix_list()
        out = set()
        for finding in self.findings:
            two_ld = suffixes.effective_2ld(finding.zone)
            out.add(two_ld if two_ld is not None else finding.zone)
        return out

    @property
    def queried_fraction(self) -> float:
        return (self.disposable_queried / self.queried_domains
                if self.queried_domains else 0.0)

    @property
    def resolved_fraction(self) -> float:
        return (self.disposable_resolved / self.resolved_domains
                if self.resolved_domains else 0.0)

    @property
    def rr_fraction(self) -> float:
        return (self.disposable_rrs / self.distinct_rrs
                if self.distinct_rrs else 0.0)

    def ranked_findings(self) -> List[DisposableZoneFinding]:
        """Findings ranked by confidence, then by group size."""
        return sorted(self.findings,
                      key=lambda f: (-f.confidence, -f.group_size, f.zone))





class DisposableZoneRanker:
    """End-to-end daily pipeline runner."""

    def __init__(self, classifier: BinaryClassifier,
                 config: Optional[MinerConfig] = None,
                 suffix_list: Optional[SuffixList] = None) -> None:
        self.classifier = classifier
        self.config = config or MinerConfig()
        self.suffix_list = suffix_list or default_suffix_list()

    def run_day(self, dataset: FpDnsDataset,
                hit_rates: Optional[HitRateTable] = None) -> DailyMiningResult:
        """Run tree building, mining and ranking for one fpDNS day."""
        if hit_rates is None:
            hit_rates = compute_hit_rates(dataset)
        tree = build_tree_for_day(dataset)
        extractor = FeatureExtractor(tree, hit_rates)
        miner = DisposableZoneMiner(self.classifier, self.config,
                                    self.suffix_list)
        findings = miner.mine(tree, extractor)
        groups = DisposableZoneMiner.findings_as_groups(findings)

        queried = dataset.queried_domains()
        resolved = dataset.resolved_domains()
        rrs = dataset.distinct_rrs()
        disposable_queried = sum(
            1 for name in queried if name_matches_groups(name, groups))
        disposable_resolved = sum(
            1 for name in resolved if name_matches_groups(name, groups))
        disposable_rrs = sum(
            1 for (name, _, _) in rrs if name_matches_groups(name, groups))

        return DailyMiningResult(
            day=dataset.day, findings=findings,
            queried_domains=len(queried), resolved_domains=len(resolved),
            distinct_rrs=len(rrs), disposable_queried=disposable_queried,
            disposable_resolved=disposable_resolved,
            disposable_rrs=disposable_rrs)

    def run_digest(self, digest: DayDigest,
                   hit_rates: Optional[HitRateTable] = None
                   ) -> DailyMiningResult:
        """Columnar counterpart of :meth:`run_day`.

        Consumes a prebuilt :class:`~repro.core.interning.DayDigest`:
        tree and hit-rate table come from the digest columns, and the
        day-coverage statistics from one memoised per-name match mask
        instead of three full ``name_matches_groups`` sweeps.  Output
        is equivalent to :meth:`run_day` on the same day (identical
        finding set, confidences and counts); the findings order is
        the digest's deterministic traversal order.
        """
        if hit_rates is None:
            hit_rates = hit_rates_from_digest(digest)
        tree = build_tree_from_digest(digest)
        extractor = FeatureExtractor(tree, hit_rates)
        miner = DisposableZoneMiner(self.classifier, self.config,
                                    self.suffix_list)
        findings = miner.mine(tree, extractor,
                              roots=digest.mining_roots(self.suffix_list))
        groups = DisposableZoneMiner.findings_as_groups(findings)
        disposable_queried, disposable_resolved, disposable_rrs = (
            digest.match_counts(groups))
        return DailyMiningResult(
            day=digest.day, findings=findings,
            queried_domains=int(digest.queried_name_ids().shape[0]),
            resolved_domains=int(digest.resolved_name_ids().shape[0]),
            distinct_rrs=digest.distinct_rr_count(),
            disposable_queried=disposable_queried,
            disposable_resolved=disposable_resolved,
            disposable_rrs=disposable_rrs)
