"""Zone profiling: inspect and explain the miner's view of a zone.

The paper's operators would want to know *why* a zone was flagged.
:class:`ZoneProfiler` produces, for any zone in a day's tree, each
depth group's raw feature vector, the classifier verdict, and — when
the classifier is a LAD tree — a per-feature attribution obtained by
summing every stump's contribution to the additive score F(x), which
is exact for the additive model (not an approximation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.classifier.base import BinaryClassifier
from repro.core.classifier.lad_tree import LadTreeClassifier
from repro.core.features import FEATURE_NAMES, FeatureExtractor, GroupFeatures
from repro.core.hitrate import HitRateTable
from repro.core.tree import DomainNameTree
from repro.textutil import format_kv, format_table

__all__ = ["GroupProfile", "ZoneProfile", "ZoneProfiler",
           "lad_tree_attribution"]


def lad_tree_attribution(model: LadTreeClassifier,
                         x: np.ndarray) -> Dict[str, float]:
    """Exact per-feature contribution to the LAD tree's score F(x).

    Each boosting stump tests one feature; its (0.5-weighted) output is
    that feature's contribution for this input.  The prior goes under
    ``"<prior>"``.  Contributions sum to ``decision_function(x)``.
    """
    x = np.asarray(x, dtype=float).reshape(1, -1)
    contributions: Dict[str, float] = {"<prior>": model.prior_f_}
    for stump in model.stumps_:
        name = (FEATURE_NAMES[stump.feature]
                if stump.feature < len(FEATURE_NAMES)
                else f"feature_{stump.feature}")
        contributions[name] = (contributions.get(name, 0.0)
                               + 0.5 * float(stump.predict(x)[0]))
    return contributions


@dataclass
class GroupProfile:
    """One depth group's features, verdict and attribution."""

    features: GroupFeatures
    confidence: float
    label: str
    attribution: Optional[Dict[str, float]] = None

    @property
    def is_disposable(self) -> bool:
        return self.label == "disposable"

    def top_drivers(self, k: int = 3) -> List[Tuple[str, float]]:
        """The k feature contributions with the largest magnitude."""
        if not self.attribution:
            return []
        ranked = sorted(self.attribution.items(),
                        key=lambda kv: -abs(kv[1]))
        return [(name, value) for name, value in ranked
                if name != "<prior>"][:k]


@dataclass
class ZoneProfile:
    """Full report for one zone on one day."""

    zone: str
    day: str
    groups: List[GroupProfile]
    sample_names: Dict[int, List[str]]

    def disposable_depths(self, threshold: float = 0.9) -> List[int]:
        return [profile.features.depth for profile in self.groups
                if profile.is_disposable
                and profile.confidence >= threshold]

    def render(self) -> str:
        rows = []
        for profile in self.groups:
            features = profile.features
            drivers = ", ".join(
                f"{name}={value:+.2f}"
                for name, value in profile.top_drivers(2))
            rows.append((features.depth, features.group_size,
                         f"{features.entropy_mean:.2f}",
                         f"{features.chr_median:.2f}",
                         f"{features.chr_zero_fraction:.2f}",
                         profile.label, f"{profile.confidence:.2f}",
                         drivers or "-"))
        table = format_table(
            ["depth", "names", "entropy", "CHR med", "CHR zero",
             "verdict", "conf", "top drivers"], rows)
        samples = []
        for depth, names in sorted(self.sample_names.items()):
            for name in names:
                samples.append(f"  [{depth}] {name}")
        parts = [f"Zone profile: {self.zone} ({self.day})", table]
        if samples:
            parts.append("sample names:")
            parts.extend(samples)
        return "\n".join(parts)


class ZoneProfiler:
    """Builds :class:`ZoneProfile` reports from a day's artifacts."""

    def __init__(self, tree: DomainNameTree, hit_rates: HitRateTable,
                 classifier: BinaryClassifier) -> None:
        self._tree = tree
        self._hit_rates = hit_rates
        self._classifier = classifier
        self._extractor = FeatureExtractor(tree, hit_rates)

    def profile(self, zone: str, max_samples: int = 3) -> ZoneProfile:
        """Profile every depth group under ``zone``."""
        groups = self._tree.depth_groups(zone)
        profiles: List[GroupProfile] = []
        samples: Dict[int, List[str]] = {}
        for depth, members in sorted(groups.items()):
            features = self._extractor.features_for(zone, depth, members)
            confidence, label = self._classifier.classify(features.vector())
            attribution = None
            if isinstance(self._classifier, LadTreeClassifier):
                attribution = lad_tree_attribution(self._classifier,
                                                   features.vector())
            profiles.append(GroupProfile(features=features,
                                         confidence=confidence, label=label,
                                         attribution=attribution))
            samples[depth] = sorted(members)[:max_samples]
        return ZoneProfile(zone=zone, day=self._hit_rates.day,
                           groups=profiles, sample_names=samples)
