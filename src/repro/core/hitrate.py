"""Domain hit rate (DHR) and cache hit rate (CHR) computation.

Implements the paper's black-box methodology (Section III-C2).  The
monitoring point sees answers *below* the resolvers (every answered
query) and *above* them (every cache miss), so for a resource record
observed in one day:

    DHR(rr) = cache hits / total queries
            = (below_count - above_count) / below_count          (Eq. 1)

Per-miss hit rates are unobservable from outside the black box, so the
renewal-process CHR is approximated by repeating the day's DHR once per
cache miss:

    CHR_i(rr) = DHR(rr),  i = 1..n,  n = misses that day          (Eq. 2)

The CHR *distribution* is the pool of all CHR_i values across records —
the signal that separates disposable from non-disposable zones (Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Mapping,
                    Optional)

import numpy as np

from repro.core.records import FpDnsDataset, RRKey, rr_sort_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.interning import DayDigest

__all__ = ["RRHitRate", "HitRateTable", "compute_hit_rates",
           "hit_rates_from_digest"]


@dataclass(frozen=True)
class RRHitRate:
    """Per-RR daily hit-rate statistics."""

    key: RRKey
    queries_below: int
    misses_above: int

    @property
    def hits(self) -> int:
        return max(0, self.queries_below - self.misses_above)

    @property
    def domain_hit_rate(self) -> float:
        """Eq. 1; zero when the record was never answered below."""
        if self.queries_below <= 0:
            return 0.0
        return self.hits / self.queries_below

    def chr_samples(self) -> List[float]:
        """Eq. 2: the day's DHR repeated once per cache miss."""
        return [self.domain_hit_rate] * self.misses_above


class HitRateTable:
    """All per-RR hit rates for one fpDNS day, with aggregation helpers."""

    def __init__(self, rates: Mapping[RRKey, RRHitRate], day: str = "") -> None:
        self._rates = dict(rates)
        self.day = day
        # name -> positions into the table order, built lazily: the
        # miner asks for_names() once per depth group, and a full-table
        # scan per group is quadratic over a day's mining run.
        self._name_positions: Optional[Dict[str, List[int]]] = None
        self._indexed_records: Optional[List[RRHitRate]] = None

    def __len__(self) -> int:
        return len(self._rates)

    def __contains__(self, key: RRKey) -> bool:
        return key in self._rates

    def get(self, key: RRKey) -> Optional[RRHitRate]:
        return self._rates.get(key)

    def records(self) -> List[RRHitRate]:
        return list(self._rates.values())

    # -- selections -----------------------------------------------------

    def for_names(self, names: Iterable[str]) -> List[RRHitRate]:
        """All RR hit rates whose owner name is in ``names``.

        Results keep table order (as if the whole table were scanned),
        but the scan is replaced by a lazily built name index, so the
        cost is proportional to the selection, not the table.
        """
        if self._name_positions is None or self._indexed_records is None:
            index: Dict[str, List[int]] = {}
            ordered: List[RRHitRate] = []
            for position, (key, rate) in enumerate(self._rates.items()):
                index.setdefault(key[0], []).append(position)
                ordered.append(rate)
            self._name_positions = index
            self._indexed_records = ordered
        positions: List[int] = []
        for name in sorted(set(names)):
            positions.extend(self._name_positions.get(name, ()))
        positions.sort()
        return [self._indexed_records[position] for position in positions]

    def filter(self, predicate: Callable[[RRKey], bool]) -> List[RRHitRate]:
        return [rate for key, rate in self._rates.items() if predicate(key)]

    # -- distributions ----------------------------------------------------

    def dhr_values(self, records: Optional[List[RRHitRate]] = None) -> np.ndarray:
        """Domain hit rates, one per RR (Figure 3b)."""
        source = self.records() if records is None else records
        return np.array([rate.domain_hit_rate for rate in source], dtype=float)

    def chr_values(self, records: Optional[List[RRHitRate]] = None) -> np.ndarray:
        """Pooled CHR samples, one per cache miss (Figures 4 and 7)."""
        source = self.records() if records is None else records
        samples: List[float] = []
        for rate in source:
            samples.extend(rate.chr_samples())
        return np.array(samples, dtype=float)

    def zero_dhr_fraction(self,
                          records: Optional[List[RRHitRate]] = None) -> float:
        values = self.dhr_values(records)
        if values.size == 0:
            return 0.0
        return float(np.mean(values == 0.0))

    def chr_median(self, records: Optional[List[RRHitRate]] = None) -> float:
        values = self.chr_values(records)
        if values.size == 0:
            return 0.0
        return float(np.median(values))

    def chr_zero_fraction(self,
                          records: Optional[List[RRHitRate]] = None) -> float:
        values = self.chr_values(records)
        if values.size == 0:
            return 1.0
        return float(np.mean(values == 0.0))

    def lookup_counts(self,
                      records: Optional[List[RRHitRate]] = None) -> np.ndarray:
        """Per-RR daily lookup volumes (Figure 3a)."""
        source = self.records() if records is None else records
        return np.array([rate.queries_below for rate in source], dtype=int)


def compute_hit_rates(dataset: FpDnsDataset) -> HitRateTable:
    """Build the per-RR hit-rate table for one fpDNS day.

    A record observed above but never below (e.g. prefetched and never
    re-asked within the day boundary) still appears, with zero queries
    below; its DHR is 0 by convention.
    """
    below = dataset.below_counts_by_rr()
    above = dataset.above_counts_by_rr()
    rates: Dict[RRKey, RRHitRate] = {}
    for key in sorted(set(below) | set(above), key=rr_sort_key):
        rates[key] = RRHitRate(key=key,
                               queries_below=below.get(key, 0),
                               misses_above=above.get(key, 0))
    return HitRateTable(rates, day=dataset.day)


def hit_rates_from_digest(digest: "DayDigest") -> HitRateTable:
    """Digest-based :func:`compute_hit_rates` — no entry re-scan.

    Every RR interned by the digest was carried by at least one answer
    entry in one of the streams, so the RR id range *is* the legacy
    ``set(below) | set(above)`` key set; the per-RR counts come from
    two ``bincount`` reductions instead of two entry-list walks.  The
    resulting table compares equal to the legacy one (same keys, same
    integer counts), with a deterministic RR-id iteration order.
    """
    below_counts = digest.below_rr_counts().tolist()
    above_counts = digest.above_rr_counts().tolist()
    rates: Dict[RRKey, RRHitRate] = {
        key: RRHitRate(key=key, queries_below=below_counts[rid],
                       misses_above=above_counts[rid])
        for rid, key in enumerate(digest.rr_keys)}
    return HitRateTable(rates, day=digest.day)
