"""Statistical features for depth groups (Section V-A2).

For a zone ``z`` and a depth group ``G_k`` (the black descendants of
``z`` at depth ``k``), two feature families are computed:

* **Tree-structure features** over ``L_k`` — the set of labels adjacent
  to ``z`` on the paths to the group members: cardinality of ``L_k``
  and the max / min / mean / median / variance of the per-label Shannon
  character entropies.  Bulk-generated labels have uniformly high
  entropy; hand-named infrastructure ("www", "mail") does not.
* **Cache-hit-rate features** over the resource records owned by the
  group members: the median of the CHR distribution and the fraction
  of CHR samples that are exactly zero.  Disposable groups sit near
  (0, 1); non-disposable groups near (high, low) — Figure 7.

The resulting 8-dimensional vector is what the classifier consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, List, Sequence

import numpy as np

from repro.core.hitrate import HitRateTable, hit_rates_from_digest
from repro.core.names import shannon_entropy
from repro.core.tree import DomainNameTree

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.core.interning import DayDigest

__all__ = ["FEATURE_NAMES", "GroupFeatures", "FeatureExtractor"]

FEATURE_NAMES = (
    "label_set_size",
    "entropy_max",
    "entropy_min",
    "entropy_mean",
    "entropy_median",
    "entropy_variance",
    "chr_median",
    "chr_zero_fraction",
)


@dataclass(frozen=True)
class GroupFeatures:
    """Feature vector for one (zone, depth) group."""

    zone: str
    depth: int
    group_size: int
    label_set_size: int
    entropy_max: float
    entropy_min: float
    entropy_mean: float
    entropy_median: float
    entropy_variance: float
    chr_median: float
    chr_zero_fraction: float

    def vector(self) -> np.ndarray:
        """The 8-dimensional feature vector, ordered as FEATURE_NAMES."""
        return np.array([
            float(self.label_set_size),
            self.entropy_max,
            self.entropy_min,
            self.entropy_mean,
            self.entropy_median,
            self.entropy_variance,
            self.chr_median,
            self.chr_zero_fraction,
        ], dtype=float)


@lru_cache(maxsize=65_536)
def _label_entropy(label: str) -> float:
    """Process-wide memo over :func:`shannon_entropy`.

    The same adjacent labels recur across depth groups, zones and days
    (a calendar mining run re-hashes each hot label thousands of
    times), so per-label entropy is cached once per process.  Bounded
    (LRU) so a long-lived ``repro serve`` daemon cannot accumulate an
    unbounded label vocabulary.
    """
    return shannon_entropy(label)


def _entropy_stats(label_set: Sequence[str]) -> tuple:
    entropies = np.array([_label_entropy(label) for label in label_set],
                         dtype=float)
    if entropies.size == 0:
        return 0.0, 0.0, 0.0, 0.0, 0.0
    return (float(entropies.max()), float(entropies.min()),
            float(entropies.mean()), float(np.median(entropies)),
            float(entropies.var()))


class FeatureExtractor:
    """Computes :class:`GroupFeatures` from a tree + hit-rate table."""

    def __init__(self, tree: DomainNameTree, hit_rates: HitRateTable) -> None:
        self._tree = tree
        self._hit_rates = hit_rates

    @classmethod
    def from_digest(cls, digest: "DayDigest") -> "FeatureExtractor":
        """Extractor over a columnar day digest: tree and hit-rate
        table are both derived from the digest columns (no entry
        re-scan), producing the same features as the legacy path."""
        return cls(DomainNameTree(digest.resolved_names_ordered()),
                   hit_rates_from_digest(digest))

    def features_for(self, zone: str, depth: int,
                     group: Iterable[str]) -> GroupFeatures:
        """Feature vector for the given ``G_k`` under ``zone``."""
        group_list = list(group)
        adjacent = self._tree.adjacent_labels(zone, group_list)
        label_set = sorted(set(adjacent))
        e_max, e_min, e_mean, e_median, e_var = _entropy_stats(label_set)

        rr_rates = self._hit_rates.for_names(group_list)
        chr_median = self._hit_rates.chr_median(rr_rates)
        chr_zero = self._hit_rates.chr_zero_fraction(rr_rates)

        return GroupFeatures(
            zone=zone, depth=depth, group_size=len(group_list),
            label_set_size=len(label_set),
            entropy_max=e_max, entropy_min=e_min, entropy_mean=e_mean,
            entropy_median=e_median, entropy_variance=e_var,
            chr_median=chr_median, chr_zero_fraction=chr_zero)

    def all_group_features(self, zone: str) -> List[GroupFeatures]:
        """Features for every depth group under ``zone``."""
        return [self.features_for(zone, depth, group)
                for depth, group in sorted(self._tree.depth_groups(zone).items())]
