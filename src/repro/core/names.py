"""Domain-name utilities.

The paper's notation (Section III-B): a domain name ``d`` consists of
labels separated by periods.  ``TLD(d)`` is the *effective* rightmost
label (delegation-aware, e.g. ``co.uk`` counts as one effective TLD),
``2LD(d)`` the two rightmost labels, and in general ``NLD(d)`` the N
rightmost labels.  This module implements the purely lexical part of
that notation; the delegation-aware effective-TLD logic lives in
:mod:`repro.core.suffix`.

All functions treat names case-insensitively and ignore a trailing
root dot, mirroring how DNS names compare on the wire.
"""

from __future__ import annotations

import math
from collections import Counter
from functools import lru_cache
from typing import List, Optional

__all__ = [
    "normalize",
    "labels",
    "label_count",
    "nld",
    "parent",
    "is_subdomain",
    "shannon_entropy",
    "InvalidDomainError",
]


class InvalidDomainError(ValueError):
    """Raised when a string cannot be interpreted as a domain name."""


@lru_cache(maxsize=65_536)
def normalize(name: str) -> str:
    """Return the canonical form of ``name``: lowercase, no trailing dot.

    Raises :class:`InvalidDomainError` for names that are empty (after
    stripping the root dot) or contain empty interior labels.

    Memoized: every :class:`~repro.dns.message.Question` and
    :class:`~repro.dns.message.ResourceRecord` construction normalizes
    its name, and a simulated day re-queries the same few thousand hot
    names millions of times, so the cache turns the dominant
    ``str.split``/validation work into one dict probe.  (Results are
    cached, raised :class:`InvalidDomainError` is not.)
    """
    if not isinstance(name, str):
        raise InvalidDomainError(f"domain name must be a string, got {type(name)!r}")
    stripped = name.strip().lower()
    if stripped.endswith("."):
        stripped = stripped[:-1]
    if not stripped:
        raise InvalidDomainError("empty domain name")
    parts = stripped.split(".")
    if any(not part for part in parts):
        raise InvalidDomainError(f"empty label in domain name: {name!r}")
    return stripped


def labels(name: str) -> List[str]:
    """Split ``name`` into its labels, left to right.

    >>> labels("a.example.com")
    ['a', 'example', 'com']
    """
    return normalize(name).split(".")


def label_count(name: str) -> int:
    """Number of labels in ``name`` (``www.example.com`` -> 3)."""
    return len(labels(name))


def nld(name: str, n: int) -> str:
    """Return the N rightmost labels of ``name`` joined by periods.

    This is the purely lexical NLD from the paper's notation:
    ``nld("a.example.com", 2) == "example.com"``.  If ``name`` has fewer
    than ``n`` labels the whole name is returned.

    Raises :class:`ValueError` if ``n`` is not positive.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    parts = labels(name)
    return ".".join(parts[-n:])


def parent(name: str) -> Optional[str]:
    """Return the immediate parent of ``name``, or ``None`` at a TLD.

    >>> parent("a.example.com")
    'example.com'
    """
    parts = labels(name)
    if len(parts) <= 1:
        return None
    return ".".join(parts[1:])


def is_subdomain(name: str, zone: str) -> bool:
    """True if ``name`` is ``zone`` itself or any descendant of it."""
    name_n = normalize(name)
    zone_n = normalize(zone)
    return name_n == zone_n or name_n.endswith("." + zone_n)


def shannon_entropy(label: str) -> float:
    """Shannon entropy (bits/char) of the characters of ``label``.

    Used by the tree-structure feature family (Section V-A2): labels
    generated algorithmically in bulk tend to have high character
    entropy, whereas human-chosen labels ("www", "mail") have low
    entropy.  An empty label has entropy 0 by convention.
    """
    if not label:
        return 0.0
    counts = Counter(label)
    total = len(label)
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy
