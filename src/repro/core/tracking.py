"""Cross-day tracking of discovered disposable zones.

The paper runs the miner daily and reports cumulative discovery:
"over the period of 11 months, we discovered 14,488 new disposable
zones" under 12,397 distinct 2LDs.  :class:`ZoneTracker` accumulates
daily findings into that ledger: first-seen day per (zone, depth)
group, per-day new-zone counts, persistence (how many days a zone
keeps being flagged), and confidence history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.miner import DisposableZoneFinding
from repro.core.ranking import DailyMiningResult
from repro.core.suffix import SuffixList, default_suffix_list

__all__ = ["TrackedZone", "ZoneTracker"]

GroupKey = Tuple[str, int]


@dataclass
class TrackedZone:
    """Ledger entry for one discovered (zone, depth) group."""

    zone: str
    depth: int
    first_seen: str
    last_seen: str
    days_flagged: int = 1
    max_confidence: float = 0.0
    max_group_size: int = 0

    @property
    def group(self) -> GroupKey:
        return (self.zone, self.depth)


class ZoneTracker:
    """Accumulates daily mining results into a discovery ledger."""

    def __init__(self, suffix_list: Optional[SuffixList] = None) -> None:
        self._entries: Dict[GroupKey, TrackedZone] = {}
        self._new_per_day: Dict[str, int] = {}
        self._days: List[str] = []
        self._suffixes = suffix_list or default_suffix_list()

    def ingest(self, result: DailyMiningResult) -> int:
        """Record one day's findings; returns the number of new zones."""
        return self.ingest_findings(result.day, result.findings)

    def ingest_findings(self, day: str,
                        findings: Sequence[DisposableZoneFinding]) -> int:
        if day in self._days:
            raise ValueError(f"day {day!r} already ingested")
        self._days.append(day)
        new = 0
        for finding in findings:
            key = finding.as_group_key()
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = TrackedZone(
                    zone=finding.zone, depth=finding.depth,
                    first_seen=day, last_seen=day,
                    max_confidence=finding.confidence,
                    max_group_size=finding.group_size)
                new += 1
            else:
                entry.last_seen = day
                entry.days_flagged += 1
                entry.max_confidence = max(entry.max_confidence,
                                           finding.confidence)
                entry.max_group_size = max(entry.max_group_size,
                                           finding.group_size)
        self._new_per_day[day] = new
        return new

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, group: GroupKey) -> bool:
        return group in self._entries

    def entries(self) -> List[TrackedZone]:
        return list(self._entries.values())

    def total_zones(self) -> int:
        """Figure 11's 'number of disposable zones'."""
        return len(self._entries)

    def total_2lds(self) -> int:
        """Figure 11's 'number of 2LDs with disposable zones'."""
        two_lds: Set[str] = set()
        for entry in self._entries.values():
            two_ld = self._suffixes.effective_2ld(entry.zone)
            two_lds.add(two_ld if two_ld is not None else entry.zone)
        return len(two_lds)

    def new_zones_per_day(self) -> Dict[str, int]:
        return dict(self._new_per_day)

    def days(self) -> List[str]:
        return list(self._days)

    def persistent_zones(self, min_days: int = 2) -> List[TrackedZone]:
        """Zones flagged on at least ``min_days`` distinct days —
        stable services, as opposed to one-day artifacts."""
        return [entry for entry in self._entries.values()
                if entry.days_flagged >= min_days]

    def one_day_wonders(self) -> List[TrackedZone]:
        """Zones flagged on exactly one day (the artifact candidates)."""
        return [entry for entry in self._entries.values()
                if entry.days_flagged == 1]

    def discovery_curve(self) -> List[Tuple[str, int]]:
        """(day, cumulative zones discovered) — the 14,488 curve."""
        cumulative = 0
        curve = []
        for day in self._days:
            cumulative += self._new_per_day.get(day, 0)
            curve.append((day, cumulative))
        return curve
