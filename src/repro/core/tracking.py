"""Cross-day tracking of discovered disposable zones.

The paper runs the miner daily and reports cumulative discovery:
"over the period of 11 months, we discovered 14,488 new disposable
zones" under 12,397 distinct 2LDs.  :class:`ZoneTracker` accumulates
daily findings into that ledger: first-seen day per (zone, depth)
group, per-day new-zone counts, persistence (how many days a zone
keeps being flagged), and confidence history.

Retention: by default the tracker keeps the full ledger (the paper's
offline 11-month accumulation).  A long-running deployment — the
``repro serve`` daemon re-ingesting a fresh mining result every day —
would leak without a bound, so ``retain_days=W`` caps the resident
state to the trailing ``W``-day window: the per-day log is a
``deque(maxlen=W)`` and zone entries not re-flagged within ``W`` days
are evicted.  Cumulative totals (:meth:`total_zones`,
:meth:`total_2lds`, :meth:`discovery_curve`) fold the evicted history
into running counters before it is dropped, so the headline numbers
keep growing while memory stays O(window).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.miner import DisposableZoneFinding
from repro.core.ranking import DailyMiningResult
from repro.core.suffix import SuffixList, default_suffix_list

__all__ = ["TrackedZone", "ZoneTracker"]

GroupKey = Tuple[str, int]


@dataclass
class TrackedZone:
    """Ledger entry for one discovered (zone, depth) group."""

    zone: str
    depth: int
    first_seen: str
    last_seen: str
    days_flagged: int = 1
    max_confidence: float = 0.0
    max_group_size: int = 0
    last_seen_seq: int = 0      # ingestion index of ``last_seen``

    @property
    def group(self) -> GroupKey:
        return (self.zone, self.depth)


class ZoneTracker:
    """Accumulates daily mining results into a discovery ledger.

    Parameters
    ----------
    suffix_list:
        Effective-TLD rules for the 2LD rollup (default: the shared
        default list).
    retain_days:
        ``None`` (default) keeps every entry forever — exact, offline
        semantics.  ``W`` bounds resident state to the trailing ``W``
        ingested days; evicted history is folded into cumulative
        counters.  In windowed mode a zone that disappears for more
        than ``W`` days and then returns is counted as discovered
        again (its entry was evicted), so :meth:`total_zones` /
        :meth:`total_2lds` are upper bounds rather than exact distinct
        counts; duplicate-day detection likewise only spans the
        retained window.
    """

    def __init__(self, suffix_list: Optional[SuffixList] = None,
                 retain_days: Optional[int] = None) -> None:
        if retain_days is not None and retain_days < 1:
            raise ValueError(
                f"retain_days must be >= 1 or None, got {retain_days}")
        self._retain_days = retain_days
        self._suffixes = suffix_list or default_suffix_list()
        self._entries: Dict[GroupKey, TrackedZone] = {}
        # (day, new-zone count) per ingested day, oldest first; the
        # deque maxlen *is* the retention bound.
        self._day_log: Deque[Tuple[str, int]] = deque(maxlen=retain_days)
        # Live zone count per effective 2LD, maintained at ingest so
        # eviction can retire a 2LD the moment its last zone leaves.
        self._two_ld_counts: Dict[str, int] = {}
        self._seq = 0             # ingestion counter (one per day)
        self._pruned_new = 0      # new-zone counts dropped off the log
        self._pruned_days = 0     # days dropped off the log
        self._evicted_zones = 0   # zone entries evicted from the ledger
        self._retired_2lds = 0    # 2LDs whose last zone was evicted

    def _two_ld(self, zone: str) -> str:
        two_ld = self._suffixes.effective_2ld(zone)
        return two_ld if two_ld is not None else zone

    def ingest(self, result: DailyMiningResult) -> int:
        """Record one day's findings; returns the number of new zones."""
        return self.ingest_findings(result.day, result.findings)

    def ingest_findings(self, day: str,
                        findings: Sequence[DisposableZoneFinding]) -> int:
        if any(logged == day for logged, _ in self._day_log):
            raise ValueError(f"day {day!r} already ingested")
        seq = self._seq
        self._seq += 1
        new = 0
        for finding in findings:
            key = finding.as_group_key()
            entry = self._entries.get(key)
            if entry is None:
                self._entries[key] = TrackedZone(
                    zone=finding.zone, depth=finding.depth,
                    first_seen=day, last_seen=day,
                    max_confidence=finding.confidence,
                    max_group_size=finding.group_size,
                    last_seen_seq=seq)
                new += 1
                two_ld = self._two_ld(finding.zone)
                self._two_ld_counts[two_ld] = \
                    self._two_ld_counts.get(two_ld, 0) + 1
            else:
                entry.last_seen = day
                entry.last_seen_seq = seq
                entry.days_flagged += 1
                entry.max_confidence = max(entry.max_confidence,
                                           finding.confidence)
                entry.max_group_size = max(entry.max_group_size,
                                           finding.group_size)
        if (self._day_log.maxlen is not None
                and len(self._day_log) == self._day_log.maxlen):
            # The append below will push the oldest day off the log;
            # fold its contribution into the cumulative counters first.
            _, dropped_new = self._day_log[0]
            self._pruned_new += dropped_new
            self._pruned_days += 1
        self._day_log.append((day, new))
        self._evict_stale(seq)
        return new

    def _evict_stale(self, seq: int) -> None:
        """Drop ledger entries not re-flagged within the window."""
        if self._retain_days is None:
            return
        cutoff = seq - self._retain_days
        stale = [key for key, entry in self._entries.items()
                 if entry.last_seen_seq <= cutoff]
        for key in stale:
            entry = self._entries.pop(key)
            self._evicted_zones += 1
            two_ld = self._two_ld(entry.zone)
            remaining = self._two_ld_counts[two_ld] - 1
            if remaining:
                self._two_ld_counts[two_ld] = remaining
            else:
                del self._two_ld_counts[two_ld]
                self._retired_2lds += 1

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, group: GroupKey) -> bool:
        return group in self._entries

    def entries(self) -> List[TrackedZone]:
        """Resident ledger entries (the trailing window when bounded)."""
        return list(self._entries.values())

    def total_zones(self) -> int:
        """Figure 11's 'number of disposable zones' (cumulative)."""
        return self._evicted_zones + len(self._entries)

    def total_2lds(self) -> int:
        """Figure 11's 'number of 2LDs with disposable zones'."""
        return self._retired_2lds + len(self._two_ld_counts)

    def evicted_zones(self) -> int:
        """Ledger entries dropped by the retention window so far."""
        return self._evicted_zones

    def new_zones_per_day(self) -> Dict[str, int]:
        return dict(self._day_log)

    def days(self) -> List[str]:
        return [day for day, _ in self._day_log]

    def persistent_zones(self, min_days: int = 2) -> List[TrackedZone]:
        """Zones flagged on at least ``min_days`` distinct days —
        stable services, as opposed to one-day artifacts."""
        return [entry for entry in self._entries.values()
                if entry.days_flagged >= min_days]

    def one_day_wonders(self) -> List[TrackedZone]:
        """Zones flagged on exactly one day (the artifact candidates)."""
        return [entry for entry in self._entries.values()
                if entry.days_flagged == 1]

    def discovery_curve(self) -> List[Tuple[str, int]]:
        """(day, cumulative zones discovered) — the 14,488 curve.

        Covers the retained days; the cumulative count starts from the
        pruned history, so the curve's tail is exact even in windowed
        mode.
        """
        cumulative = self._pruned_new
        curve = []
        for day, new in self._day_log:
            cumulative += new
            curve.append((day, cumulative))
        return curve
