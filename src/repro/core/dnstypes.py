"""Shared DNS vocabulary: record-type and response-code enums.

These live in ``repro.core`` — the bottom of the layering DAG — because
they are the vocabulary every layer speaks: the miner's record keys, the
resolver simulator's messages, and the passive-DNS containers all name
RR types and response codes. :mod:`repro.dns.message` re-exports them,
so ``from repro.dns.message import RRType`` keeps working.
"""

from __future__ import annotations

import enum

__all__ = ["RCode", "RRType"]


class RRType(enum.Enum):
    """Resource-record types present in the fpDNS dataset (A/AAAA/CNAME)."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    # Types below only appear in the DNSSEC substrate, never in fpDNS.
    DNSKEY = "DNSKEY"
    DS = "DS"
    RRSIG = "RRSIG"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class RCode(enum.Enum):
    """DNS response codes the simulator distinguishes."""

    NOERROR = 0
    NXDOMAIN = 3
    SERVFAIL = 2

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
