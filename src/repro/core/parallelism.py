"""Host parallelism introspection shared by every worker pool.

``os.cpu_count()`` reports the *machine's* cores, not the cores this
process may run on: under cgroup CPU masks (CI runners, containers —
including the single-core box the checked-in benchmarks were recorded
on) the two disagree, and sizing a pool by ``cpu_count`` over-
subscribes the schedulable cores with workers that then fight each
other.  Every default worker count in the tree — the sharded trace
simulator, the calendar miner, the ``auto`` values of the
``REPRO_SIM_WORKERS``/``REPRO_MINER_WORKERS`` knobs — therefore sizes
itself through :func:`available_cpu_count`, which consults the
scheduling affinity mask first.

This module sits at the bottom of the layering DAG (``repro.core``)
because both :mod:`repro.core.mining_pipeline` and
:mod:`repro.traffic.parallel` need it and core must not import
traffic.
"""

from __future__ import annotations

import os

__all__ = ["available_cpu_count", "worker_count_from_env"]


def available_cpu_count() -> int:
    """CPUs this process may actually schedule on.

    ``len(os.sched_getaffinity(0))`` honours cgroup/taskset masks;
    platforms without affinity support (macOS, Windows) fall back to
    ``os.cpu_count()``.  Always at least 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


def worker_count_from_env(variable: str, default: int = 1) -> int:
    """Worker count named by an environment knob.

    ``auto`` (case-insensitive) resolves to
    :func:`available_cpu_count`; an unset/empty variable resolves to
    ``default``; anything else must parse as a positive int.  Worker
    counts only shape wall-clock time — every parallel engine here is
    equality-proven against serial — so reading the environment does
    not violate the determinism contract.
    """
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return default
    if raw.lower() == "auto":
        return available_cpu_count()
    value = int(raw)
    if value < 1:
        raise ValueError(f"{variable} must be >= 1 or 'auto', got {raw!r}")
    return value
