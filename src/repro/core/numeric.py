"""Tolerance-based float comparison helpers.

The measurement layers compare hit rates, ratios, and cache fractions;
exact ``==`` on such values is banned by reprolint rule R006 (see
``docs/STATIC_ANALYSIS.md``). These helpers make the tolerance explicit.
The default absolute tolerance is far below any meaningful hit-rate
resolution (1 part in 1e12 of a query) yet far above accumulated
rounding error in the analyses.
"""

from __future__ import annotations

import math

__all__ = ["ABS_TOL", "REL_TOL", "approx_eq", "is_zero"]

REL_TOL = 1e-9
ABS_TOL = 1e-12


def approx_eq(a: float, b: float, rel_tol: float = REL_TOL,
              abs_tol: float = ABS_TOL) -> bool:
    """True when ``a`` and ``b`` agree within tolerance."""
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(value: float, abs_tol: float = ABS_TOL) -> bool:
    """True when ``value`` is zero within absolute tolerance."""
    return abs(value) <= abs_tol
