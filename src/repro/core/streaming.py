"""Single-pass streaming construction of the daily mining inputs.

The batch pipeline (:func:`repro.core.ranking.build_tree_for_day` +
:func:`repro.core.hitrate.compute_hit_rates`) materialises a whole
fpDNS day in memory.  A deployed collector at an ISP tap cannot — the
authors' days ran 60-145 GB compressed — so this module builds the
identical artifacts incrementally from a stream of ``(side, entry)``
pairs (e.g. :func:`repro.pdns.io.iter_fpdns_entries`), holding only
the aggregates:

* per-RR below/above counters (the hit-rate table),
* the domain name tree of resolved names,
* day-level volume/NXDOMAIN counters.

``finish()`` yields the same tree + hit-rate table the batch path
produces, so Algorithm 1 runs unchanged on top;
:func:`mine_stream` wires the whole thing together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.classifier.base import BinaryClassifier
from repro.core.features import FeatureExtractor
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.core.miner import (DisposableZoneFinding, DisposableZoneMiner,
                              MinerConfig)
from repro.core.tree import DomainNameTree
from repro.core.dnstypes import RCode
from repro.core.records import FpDnsEntry, RRKey, rr_sort_key

__all__ = ["StreamStats", "StreamingDayBuilder", "mine_stream"]


@dataclass
class StreamStats:
    """Day-level counters maintained by the streaming builder."""

    below_entries: int = 0
    above_entries: int = 0
    below_nxdomain: int = 0
    above_nxdomain: int = 0
    resolved_names: int = 0   # distinct
    distinct_rrs: int = 0

    @property
    def above_below_ratio(self) -> float:
        return (self.above_entries / self.below_entries
                if self.below_entries else 0.0)


class StreamingDayBuilder:
    """Incrementally builds the tree and hit-rate table for one day."""

    def __init__(self, day: str = "") -> None:
        self.day = day
        self._below: Dict[RRKey, int] = {}
        self._above: Dict[RRKey, int] = {}
        self._tree = DomainNameTree()
        self._resolved: Set[str] = set()
        self.stats = StreamStats()
        self._finished = False

    def observe(self, side: str, entry: FpDnsEntry) -> None:
        """Feed one entry; ``side`` is ``"B"`` (below) or ``"A"``."""
        if self._finished:
            raise RuntimeError("builder already finished")
        if side == "B":
            self.stats.below_entries += 1
            if entry.rcode is RCode.NXDOMAIN:
                self.stats.below_nxdomain += 1
            key = entry.rr_key()
            if key is not None:
                self._below[key] = self._below.get(key, 0) + 1
                if entry.qname not in self._resolved:
                    self._resolved.add(entry.qname)
                    self._tree.add_domain(entry.qname)
        elif side == "A":
            self.stats.above_entries += 1
            if entry.rcode is RCode.NXDOMAIN:
                self.stats.above_nxdomain += 1
            key = entry.rr_key()
            if key is not None:
                self._above[key] = self._above.get(key, 0) + 1
        else:
            raise ValueError(f"side must be 'A' or 'B', got {side!r}")

    def observe_many(self, entries: Iterable[Tuple[str, FpDnsEntry]]) -> None:
        for side, entry in entries:
            self.observe(side, entry)

    def finish(self) -> Tuple[DomainNameTree, HitRateTable]:
        """Seal the day and return (tree, hit-rate table)."""
        self._finished = True
        rates: Dict[RRKey, RRHitRate] = {}
        for key in sorted(set(self._below) | set(self._above),
                          key=rr_sort_key):
            rates[key] = RRHitRate(key=key,
                                   queries_below=self._below.get(key, 0),
                                   misses_above=self._above.get(key, 0))
        self.stats.resolved_names = len(self._resolved)
        self.stats.distinct_rrs = len(rates)
        return self._tree, HitRateTable(rates, day=self.day)


def mine_stream(entries: Iterable[Tuple[str, FpDnsEntry]],
                classifier: BinaryClassifier,
                config: Optional[MinerConfig] = None,
                day: str = "") -> Tuple[List[DisposableZoneFinding],
                                        StreamStats]:
    """One-pass mining: stream in, disposable findings out."""
    builder = StreamingDayBuilder(day=day)
    builder.observe_many(entries)
    tree, hit_rates = builder.finish()
    extractor = FeatureExtractor(tree, hit_rates)
    miner = DisposableZoneMiner(classifier, config or MinerConfig())
    findings = miner.mine(tree, extractor)
    return findings, builder.stats
