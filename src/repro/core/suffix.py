"""Effective top-level-domain (public-suffix) matching.

The paper treats the *effective* rightmost label as the TLD: ``com.cn``
and ``co.uk`` are effective TLDs because every child label under them is
a delegation to a separate organisation.  Their definition is "a
superset of [the Mozilla public suffix list] and corrects the omission
of dynamic DNS zones" (Section III-B).

We embed a compact suffix list covering the generic TLDs, the
multi-label country suffixes that matter for the synthetic workload,
and a handful of dynamic-DNS providers, and support wildcard rules
(``*.ck``) and user extension at construction time.  Longest-match-wins
semantics follow the PSL algorithm.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.core.names import labels, normalize

__all__ = ["SuffixList", "default_suffix_list"]

# Generic and common country-code TLDs.  Deliberately compact: the
# synthetic workload only emits names under suffixes listed here, and
# SuffixList falls back to treating the rightmost label as the
# effective TLD for anything unknown, which matches PSL behaviour
# (the implicit "*" rule).
_BASE_SUFFIXES: Tuple[str, ...] = (
    # generic
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz",
    "name", "mobi", "tv", "cc", "me", "co", "io", "us", "ca", "mx",
    "de", "fr", "nl", "it", "es", "se", "no", "fi", "dk", "pl", "ru",
    "cn", "jp", "kr", "in", "br", "au", "nz", "uk", "eu", "ch", "at",
    "be", "cz", "gr", "hu", "ie", "pt", "ro", "sk", "tr", "ua", "il",
    "za", "ar", "cl", "dk",
    # multi-label country suffixes (delegation points)
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
    "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn",
    "com.au", "net.au", "org.au", "edu.au", "gov.au",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
    "co.kr", "or.kr", "ac.kr",
    "com.br", "net.br", "org.br",
    "co.in", "net.in", "org.in",
    "co.nz", "net.nz", "org.nz",
    "com.mx", "com.ar", "com.tr", "com.ua",
)

# Dynamic-DNS zones: the paper's definition explicitly folds these in,
# because every child of a dynamic-DNS provider is controlled by a
# different user, exactly like a registry delegation.
_DYNDNS_SUFFIXES: Tuple[str, ...] = (
    "dyndns.org", "no-ip.com", "no-ip.org", "dnsalias.com",
    "homeip.net", "dynalias.com", "duckdns.org", "afraid.org",
)

# Wildcard rules: "*.ck" means every direct child of ck is itself an
# effective TLD (the PSL wildcard form).
_WILDCARD_SUFFIXES: Tuple[str, ...] = ("*.ck", "*.er", "*.fj")

# Exceptions to wildcard rules ("!www.ck" in PSL syntax): the name IS
# registrable even though a wildcard covers it.
_EXCEPTION_SUFFIXES: Tuple[str, ...] = ("www.ck",)


class SuffixList:
    """Effective-TLD matcher with PSL longest-match semantics.

    Parameters
    ----------
    rules:
        Iterable of suffix rules.  Plain rules (``"co.uk"``) mark an
        effective TLD; ``"*.ck"`` marks every child of ``ck`` as an
        effective TLD; ``"!www.ck"`` exempts a name from a wildcard.
    """

    def __init__(self, rules: Iterable[str]) -> None:
        self._plain: Set[str] = set()
        self._wildcard: Set[str] = set()  # stores the parent, e.g. "ck"
        self._exception: Set[str] = set()
        for rule in rules:
            rule = rule.strip().lower()
            if not rule:
                continue
            if rule.startswith("!"):
                self._exception.add(normalize(rule[1:]))
            elif rule.startswith("*."):
                self._wildcard.add(normalize(rule[2:]))
            else:
                self._plain.add(normalize(rule))

    def extended(self, extra_rules: Iterable[str]) -> "SuffixList":
        """Return a new list with ``extra_rules`` added."""
        rules: List[str] = []
        rules.extend(sorted(self._plain))
        rules.extend("*." + parent for parent in sorted(self._wildcard))
        rules.extend("!" + name for name in sorted(self._exception))
        rules.extend(extra_rules)
        return SuffixList(rules)

    def effective_tld(self, name: str) -> str:
        """Return the effective TLD of ``name``.

        For an unknown rightmost label the label itself is the
        effective TLD (the PSL implicit ``*`` rule).
        """
        parts = labels(name)
        # Walk candidate suffixes from shortest (rightmost label) to
        # longest, remembering the longest matching rule.  The implicit
        # PSL "*" rule makes the rightmost label the fallback.
        best = parts[-1]
        for i in range(len(parts) - 1, -1, -1):
            candidate = ".".join(parts[i:])
            if candidate in self._exception:
                # Exception rule: the *parent* of the exception name is
                # the effective TLD (PSL "!" semantics).
                return ".".join(parts[i + 1:])
            if candidate in self._plain:
                best = candidate
            elif i + 1 <= len(parts) - 1:
                parent_of_candidate = ".".join(parts[i + 1:])
                if parent_of_candidate in self._wildcard:
                    best = candidate
        return best

    def effective_2ld(self, name: str) -> Optional[str]:
        """Return the registrable domain (effective TLD + one label).

        ``None`` when ``name`` *is* an effective TLD and has no
        registrable parent (e.g. ``"com"`` or ``"co.uk"``).
        """
        etld = self.effective_tld(name)
        parts = labels(name)
        etld_len = len(etld.split("."))
        if len(parts) <= etld_len:
            return None
        return ".".join(parts[-(etld_len + 1):])

    def effective_nld(self, name: str, n: int) -> Optional[str]:
        """Delegation-aware NLD: effective TLD plus ``n - 1`` labels.

        ``effective_nld("a.b.example.co.uk", 2)`` is ``example.co.uk``.
        Returns ``None`` if the name is too short.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        etld = self.effective_tld(name)
        parts = labels(name)
        etld_len = len(etld.split("."))
        want = etld_len + (n - 1)
        if len(parts) < want:
            return None
        return ".".join(parts[-want:])

    def is_effective_tld(self, name: str) -> bool:
        """True if ``name`` itself is an effective TLD."""
        return self.effective_tld(name) == normalize(name)

    def __contains__(self, name: str) -> bool:
        return self.is_effective_tld(name)


_DEFAULT: Optional[SuffixList] = None


def default_suffix_list() -> SuffixList:
    """The shared default suffix list (generic + cc + dyndns rules)."""
    global _DEFAULT
    if _DEFAULT is None:
        rules: List[str] = []
        rules.extend(_BASE_SUFFIXES)
        rules.extend(_DYNDNS_SUFFIXES)
        rules.extend(_WILDCARD_SUFFIXES)
        rules.extend("!" + name for name in _EXCEPTION_SUFFIXES)
        _DEFAULT = SuffixList(rules)
    return _DEFAULT
