"""Parallel calendar mining with an on-disk miner-result cache.

Mining is embarrassingly parallel across days: each day's pipeline
(digest, tree, Algorithm 1, coverage counts) depends only on that
day's fpDNS data and the shared trained classifier.  This module

* mines each calendar day in a worker process — the worker entry point
  is a top-level picklable function (reprolint R007), mirroring the
  discipline of :mod:`repro.traffic.parallel` — and reduces results in
  deterministic day order (``Pool.map`` preserves input order, and the
  digest pipeline itself is order-deterministic, so any worker count
  produces the identical result list);
* caches each day's :class:`~repro.core.ranking.DailyMiningResult` on
  disk, keyed by the *content* of the fpDNS day plus the classifier
  fingerprint and miner configuration
  (:func:`repro.core.keys.dataset_content_key` /
  :func:`~repro.core.keys.object_fingerprint`), so a warm session with
  unchanged data and model replays mining results without running the
  miner at all.

Corrupt or missing cache files are misses, never errors — the same
contract as :class:`repro.traffic.artifacts.FpDnsArtifactCache`.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.artifact_store import ArtifactStore
from repro.core.classifier.base import BinaryClassifier
from repro.core.interning import DayDigest, digest_of
from repro.core.ipc import (IPC_AUTO, IPC_MODES, IPC_SHM, ColumnChannel,
                            ColumnsRef, IpcStats, resolve_ipc_mode)
from repro.core.keys import (dataset_content_key, object_fingerprint,
                             versioned_key)
from repro.core.miner import DisposableZoneFinding, MinerConfig
from repro.core.ranking import DailyMiningResult, DisposableZoneRanker
from repro.core.records import FpDnsDataset
from repro.core.suffix import SuffixList

__all__ = ["MINER_CACHE_FORMAT", "MINING_SUFFIX", "miner_result_key",
           "MinerResultCache", "CalendarMiner", "mine_day"]

#: Version tag baked into every cache key; bump on any change to the
#: result payload layout or to mining semantics that would make old
#: cached results misstate the current pipeline's output.
MINER_CACHE_FORMAT = "repro-miner-cache-v1"

PathLike = Union[str, Path]


def miner_result_key(dataset: FpDnsDataset, classifier: BinaryClassifier,
                     config: MinerConfig) -> str:
    """Content hash identifying one day's mining result.

    Any change to the day's data, the trained classifier, or the miner
    tunables yields a different key and therefore a cache miss.
    """
    return versioned_key(MINER_CACHE_FORMAT, {
        "data": dataset_content_key(dataset),
        "classifier": object_fingerprint(classifier),
        "config": asdict(config),
    })


def _result_to_payload(result: DailyMiningResult) -> Dict[str, Any]:
    """JSON-serialisable form of a mining result.

    Confidences are floats; JSON round-trips Python floats exactly
    (shortest-repr encoding), so a replayed result compares equal to
    the freshly mined one.
    """
    return {
        "day": result.day,
        "findings": [[f.zone, f.depth, f.confidence, f.group_size]
                     for f in result.findings],
        "queried_domains": result.queried_domains,
        "resolved_domains": result.resolved_domains,
        "distinct_rrs": result.distinct_rrs,
        "disposable_queried": result.disposable_queried,
        "disposable_resolved": result.disposable_resolved,
        "disposable_rrs": result.disposable_rrs,
    }


def _result_from_payload(payload: Dict[str, Any]) -> DailyMiningResult:
    return DailyMiningResult(
        day=payload["day"],
        findings=[DisposableZoneFinding(zone=zone, depth=depth,
                                        confidence=confidence,
                                        group_size=group_size)
                  for zone, depth, confidence, group_size
                  in payload["findings"]],
        queried_domains=payload["queried_domains"],
        resolved_domains=payload["resolved_domains"],
        distinct_rrs=payload["distinct_rrs"],
        disposable_queried=payload["disposable_queried"],
        disposable_resolved=payload["disposable_resolved"],
        disposable_rrs=payload["disposable_rrs"])


#: File suffix of stored mining results (shared with the ``repro
#: cache`` CLI's per-suffix accounting).
MINING_SUFFIX = ".mining.json"


def _decode_result(data: bytes) -> DailyMiningResult:
    return _result_from_payload(json.loads(data.decode("utf-8")))


class MinerResultCache:
    """Directory of cached mining results, one JSON blob per key.

    Backed by the shared :class:`~repro.core.artifact_store
    .ArtifactStore` — atomic per-process temp-file publish (workers
    sharing a cache directory never clobber each other mid-write),
    corrupt-blob-is-a-miss loads, hit/miss counters.
    """

    def __init__(self, root: PathLike) -> None:
        self.store_backend = ArtifactStore(root, MINING_SUFFIX)

    @property
    def root(self) -> Path:
        return self.store_backend.root

    @property
    def hits(self) -> int:
        return self.store_backend.hits

    @property
    def misses(self) -> int:
        return self.store_backend.misses

    def path_for(self, key: str) -> Path:
        return self.store_backend.path_for(key)

    def load(self, key: str) -> Optional[DailyMiningResult]:
        """Cached result for ``key``, or ``None`` (counted as a miss)."""
        return self.store_backend.load(
            key, _decode_result,
            miss_on=(ValueError, KeyError, TypeError))

    def store(self, key: str, result: DailyMiningResult) -> Path:
        """Persist ``result`` under ``key``; returns the file path."""
        data = json.dumps(_result_to_payload(result),
                          separators=(",", ":")).encode("utf-8")
        return self.store_backend.store_bytes(key, data)

    def __len__(self) -> int:
        return len(self.store_backend)


def mine_day(dataset: FpDnsDataset, classifier: BinaryClassifier,
             config: Optional[MinerConfig] = None,
             suffix_list: Optional[SuffixList] = None) -> DailyMiningResult:
    """Mine one fpDNS day through the columnar digest pipeline.

    :func:`~repro.core.interning.digest_of` reuses a digest the
    dataset already carries (columnar artifact loads), so a warm
    session mines straight from the deserialised columns without ever
    materialising entries.
    """
    digest = digest_of(dataset)
    ranker = DisposableZoneRanker(classifier, config, suffix_list)
    return ranker.run_digest(digest)


@dataclass(frozen=True)
class _MineDayTask:
    """Everything one worker needs to mine one day (picklable).

    The day's data travels as a :class:`~repro.core.ipc.ColumnsRef`
    into a digest-column payload the parent published — a few dozen
    bytes of pickle instead of the per-entry dataset pickles that made
    the first parallel miner lose to serial (reprolint R014 pins the
    no-heavy-payload contract on this dispatch).
    """

    day: str
    columns_ref: ColumnsRef
    classifier: BinaryClassifier
    config: MinerConfig
    suffix_list: Optional[SuffixList]


def _mine_day_task(task: _MineDayTask) -> DailyMiningResult:
    """Worker entry point: top-level (picklable) by design — handed to
    ``Pool.map``.

    Digest-native: maps the parent's column payload, rebuilds the
    :class:`~repro.core.interning.DayDigest` (no entry materialisation,
    no re-interning) and runs the ranker on it.  The payload is owned
    and released by the parent, never here.
    """
    channel = ColumnChannel(task.columns_ref.kind,
                            spill_root=task.columns_ref.spill_root)
    digest = DayDigest.from_columns(task.day,
                                    channel.fetch(task.columns_ref))
    ranker = DisposableZoneRanker(task.classifier, task.config,
                                  task.suffix_list)
    return ranker.run_digest(digest)


class CalendarMiner:
    """Mines a sequence of fpDNS days, optionally in parallel and
    through the result cache.

    The returned list is always in input (day) order and identical for
    every ``n_workers`` value and for cache-warm replays — the digest
    pipeline is deterministic per day, ``Pool.map`` preserves order,
    and cached results round-trip exactly.

    The parallel path dispatches *digest columns*, not datasets: the
    parent builds (or reuses — columnar artifact loads already carry
    one) each pending day's digest, publishes its
    :meth:`~repro.core.interning.DayDigest.to_columns` arrays through a
    :class:`~repro.core.ipc.ColumnChannel`, and pickles only the
    resulting refs.  ``ipc`` selects the transport (``auto`` resolves
    to shared memory where available, else artifact spill).  Every
    published payload is released in a ``finally`` — a worker raising
    mid-calendar leaks no segments.
    """

    def __init__(self, classifier: BinaryClassifier,
                 config: Optional[MinerConfig] = None,
                 suffix_list: Optional[SuffixList] = None,
                 n_workers: int = 1,
                 cache: Optional[MinerResultCache] = None,
                 ipc: str = IPC_AUTO) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if ipc not in IPC_MODES:
            raise ValueError(f"ipc mode {ipc!r} not in {IPC_MODES}")
        self.classifier = classifier
        self.config = config or MinerConfig()
        self.suffix_list = suffix_list
        self.n_workers = n_workers
        self.cache = cache
        self.ipc = ipc
        self._last_ipc: Optional[IpcStats] = None

    @property
    def last_ipc(self) -> Optional[IpcStats]:
        """Payload accounting for the most recent :meth:`mine_calendar`."""
        return self._last_ipc

    def _mine_parallel(self, pending_days: List[FpDnsDataset]
                       ) -> List[DailyMiningResult]:
        """Dispatch pending days to a worker pool as column refs."""
        mode = resolve_ipc_mode(self.ipc)
        spill_dir: Optional[tempfile.TemporaryDirectory] = None
        spill_root: Optional[str] = None
        if mode != IPC_SHM:
            spill_dir = tempfile.TemporaryDirectory(
                prefix="repro-miner-spill-")
            spill_root = spill_dir.name
        run_tag = f"repro-miner-{os.getpid()}"
        channel = ColumnChannel(mode, spill_root=spill_root)
        try:
            tasks: List[_MineDayTask] = []
            for position, dataset in enumerate(pending_days):
                digest = digest_of(dataset)
                ref = channel.publish(f"{run_tag}-d{position}",
                                      digest.to_columns())
                tasks.append(_MineDayTask(day=digest.day, columns_ref=ref,
                                          classifier=self.classifier,
                                          config=self.config,
                                          suffix_list=self.suffix_list))
            self._last_ipc = IpcStats(
                mode=mode,
                payload_bytes=sum(task.columns_ref.nbytes
                                  for task in tasks),
                segments=len(tasks))
            context = multiprocessing.get_context()
            n_processes = min(self.n_workers, len(tasks))
            with context.Pool(processes=n_processes) as pool:
                return pool.map(_mine_day_task, tasks)
        finally:
            channel.release_published()
            if spill_dir is not None:
                spill_dir.cleanup()

    def mine_calendar(self, datasets: Sequence[FpDnsDataset]
                      ) -> List[DailyMiningResult]:
        """Mine ``datasets``; one result per day, in input order."""
        results: List[Optional[DailyMiningResult]] = [None] * len(datasets)
        keys: List[Optional[str]] = [None] * len(datasets)
        pending: List[int] = []
        for index, dataset in enumerate(datasets):
            if self.cache is not None:
                key = miner_result_key(dataset, self.classifier, self.config)
                keys[index] = key
                cached = self.cache.load(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append(index)
        if pending:
            if self.n_workers > 1 and len(pending) > 1:
                mined = self._mine_parallel(
                    [datasets[index] for index in pending])
            else:
                self._last_ipc = IpcStats(mode="inline", payload_bytes=0,
                                          segments=0)
                mined = [mine_day(datasets[index], self.classifier,
                                  self.config, self.suffix_list)
                         for index in pending]
            for index, result in zip(pending, mined):
                results[index] = result
                key = keys[index]
                if self.cache is not None and key is not None:
                    self.cache.store(key, result)
        return [result for result in results if result is not None]
