"""Disposable zone miner — Algorithm 1 of the paper.

Starting from every effective 2LD in the domain name tree, the miner:

1. groups the black descendants of the zone under inspection by depth
   (the ``G_k`` sets) and builds their feature vectors,
2. classifies each group; a group scoring ≥ θ as disposable is
   *decolored* and the pair ``(zone, k)`` emitted,
3. recurses into every child of the zone, so nested disposable
   sub-zones (and non-disposable children of disposable zones) are
   found independently.

``min_group_size`` guards against classifying statistically
meaningless groups — the paper's labeled zones all had at least 15
disposable child names; the default here is deliberately lower so small
test trees still exercise the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.classifier.base import BinaryClassifier
from repro.core.features import FeatureExtractor, GroupFeatures
from repro.core.suffix import SuffixList, default_suffix_list
from repro.core.tree import DomainNameTree

__all__ = ["DisposableZoneFinding", "MinerConfig", "DisposableZoneMiner"]


@dataclass(frozen=True)
class DisposableZoneFinding:
    """One (zone, depth) pair the miner flagged as disposable."""

    zone: str
    depth: int
    confidence: float
    group_size: int

    def as_group_key(self) -> Tuple[str, int]:
        return (self.zone, self.depth)


@dataclass
class MinerConfig:
    """Tunables for Algorithm 1."""

    threshold: float = 0.9   # θ in Algorithm 1 line 5
    min_group_size: int = 5  # skip groups smaller than this
    max_recursion_depth: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {self.threshold}")
        if self.min_group_size < 1:
            raise ValueError(
                f"min_group_size must be >= 1, got {self.min_group_size}")


class DisposableZoneMiner:
    """Runs Algorithm 1 over a day's domain name tree."""

    def __init__(self, classifier: BinaryClassifier,
                 config: Optional[MinerConfig] = None,
                 suffix_list: Optional[SuffixList] = None) -> None:
        self.classifier = classifier
        self.config = config or MinerConfig()
        self.suffix_list = suffix_list or default_suffix_list()
        self.groups_examined = 0
        self.groups_skipped_small = 0

    def mine(self, tree: DomainNameTree, extractor: FeatureExtractor,
             roots: Optional[Sequence[str]] = None
             ) -> List[DisposableZoneFinding]:
        """Run the full mining pass; the tree is decolored in place.

        ``roots`` overrides the starting zones (Algorithm 1 mines from
        every effective 2LD of the tree).  The digest pipeline passes
        the memoised per-name effective-2LD column here, sorted — the
        same zones :meth:`~repro.core.tree.DomainNameTree.effective_2lds`
        would derive by re-walking the black nodes.
        """
        if roots is None:
            roots = tree.effective_2lds(self.suffix_list)
        findings: List[DisposableZoneFinding] = []
        for zone in roots:
            self._mine_zone(zone, tree, extractor, findings, recursion_depth=0)
        return findings

    def mine_zone(self, zone: str, tree: DomainNameTree,
                  extractor: FeatureExtractor) -> List[DisposableZoneFinding]:
        """Run Algorithm 1 rooted at one zone (mainly for tests)."""
        findings: List[DisposableZoneFinding] = []
        self._mine_zone(zone, tree, extractor, findings, recursion_depth=0)
        return findings

    def _mine_zone(self, zone: str, tree: DomainNameTree,
                   extractor: FeatureExtractor,
                   findings: List[DisposableZoneFinding],
                   recursion_depth: int) -> None:
        if recursion_depth > self.config.max_recursion_depth:
            return
        groups = tree.depth_groups(zone)
        if not groups:
            return  # Algorithm 1 lines 1-3: no black descendants
        for depth in sorted(groups):
            group = groups[depth]
            if len(group) < self.config.min_group_size:
                self.groups_skipped_small += 1
                continue
            features = extractor.features_for(zone, depth, group)
            confidence, label = self.classifier.classify(features.vector())
            self.groups_examined += 1
            if label == "disposable" and confidence >= self.config.threshold:
                tree.decolor_group(group)  # lines 9-11
                findings.append(DisposableZoneFinding(
                    zone=zone, depth=depth, confidence=confidence,
                    group_size=len(group)))
        # Lines 15-17: recurse into every child of the inspected zone.
        # Children without black descendants are pruned via the tree's
        # maintained subtree counters: they would return at the
        # lines-1-3 guard anyway, so no finding changes.
        for child in tree.children_with_black(zone):
            self._mine_zone(child, tree, extractor, findings,
                            recursion_depth + 1)

    @staticmethod
    def findings_as_groups(
            findings: List[DisposableZoneFinding]) -> Set[Tuple[str, int]]:
        """The miner output as (zone, depth) pairs, the form the
        analysis and mitigation code consumes."""
        return {finding.as_group_key() for finding in findings}
