"""Training-set construction from labeled zones (Section IV-B).

The authors manually labeled 398 zones as disposable and 401 popular
(Alexa top-1000) 2LDs as non-disposable, then extracted one feature
vector per labeled zone's relevant depth group.  Here the labels come
from the workload's ground truth (we *generated* the disposable zones,
so we know them), but the extraction path is identical: for each
labeled zone, take its depth groups from the observed tree and emit
feature vectors tagged with the zone's class.

For a disposable zone the group at the zone's disposable depth is the
positive example; for a non-disposable zone every sufficiently large
group is a negative example (popular zones have ordinary www/mail/cdn
children at several depths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.features import FeatureExtractor, GroupFeatures
from repro.core.tree import DomainNameTree

__all__ = ["LabeledZone", "TrainingSet", "build_training_set"]


@dataclass(frozen=True)
class LabeledZone:
    """A zone with a ground-truth class.

    ``depth`` restricts a disposable label to one specific depth group
    (the generated names' depth); ``None`` labels every group under the
    zone with the class — appropriate for non-disposable zones.
    """

    zone: str
    disposable: bool
    depth: Optional[int] = None


@dataclass
class TrainingSet:
    """Feature matrix + labels + provenance for each row."""

    X: np.ndarray
    y: np.ndarray
    provenance: List[Tuple[str, int]]  # (zone, depth) per row

    def __len__(self) -> int:
        return len(self.y)

    @property
    def n_positive(self) -> int:
        return int(self.y.sum())

    @property
    def n_negative(self) -> int:
        return int(len(self.y) - self.y.sum())


def build_training_set(labels: Sequence[LabeledZone],
                       tree: DomainNameTree,
                       extractor: FeatureExtractor,
                       min_group_size: int = 5) -> TrainingSet:
    """Extract one row per (labeled zone, qualifying depth group)."""
    rows: List[np.ndarray] = []
    targets: List[int] = []
    provenance: List[Tuple[str, int]] = []
    for labeled in labels:
        groups = tree.depth_groups(labeled.zone)
        for depth, group in sorted(groups.items()):
            if len(group) < min_group_size:
                continue
            if labeled.depth is not None and depth != labeled.depth:
                continue
            features = extractor.features_for(labeled.zone, depth, group)
            rows.append(features.vector())
            targets.append(1 if labeled.disposable else 0)
            provenance.append((labeled.zone, depth))
    if not rows:
        raise ValueError("no labeled zone produced a qualifying depth group")
    return TrainingSet(X=np.vstack(rows), y=np.array(targets, dtype=int),
                       provenance=provenance)
