"""Matching names against mined (zone, depth) groups.

The miner's output is a set of ``(zone, depth)`` pairs: "names at
``depth`` labels under ``zone`` are disposable".  This leaf module
holds the matcher every analysis layer shares, free of heavier
dependencies so it can be imported from anywhere.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.core.names import label_count, parent

__all__ = ["name_matches_groups"]


def name_matches_groups(name: str, groups: Set[Tuple[str, int]]) -> bool:
    """True if ``name`` sits at a flagged (zone, depth) position."""
    depth = label_count(name)
    ancestor = parent(name)
    while ancestor is not None:
        if (ancestor, depth) in groups:
            return True
        ancestor = parent(ancestor)
    return False
