"""Matching names against mined (zone, depth) groups.

The miner's output is a set of ``(zone, depth)`` pairs: "names at
``depth`` labels under ``zone`` are disposable".  This leaf module
holds the matcher every analysis layer shares, free of heavier
dependencies so it can be imported from anywhere.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.core.names import label_count, parent

__all__ = ["matching_group_zone", "name_matches_groups"]


def matching_group_zone(name: str,
                        groups: Set[Tuple[str, int]]) -> Optional[str]:
    """The flagged ancestor zone covering ``name``, or ``None``.

    A ``(zone, depth)`` pair matches when the name sits at exactly
    ``depth`` labels under the flagged zone.  Shared by the in-memory
    pDNS database and the segmented on-disk store, whose wildcard
    aggregation anchors the replacement row at this zone.
    """
    depth = label_count(name)
    ancestor = parent(name)
    while ancestor is not None:
        if (ancestor, depth) in groups:
            return ancestor
        ancestor = parent(ancestor)
    return None


def name_matches_groups(name: str, groups: Set[Tuple[str, int]]) -> bool:
    """True if ``name`` sits at a flagged (zone, depth) position."""
    return matching_group_zone(name, groups) is not None
