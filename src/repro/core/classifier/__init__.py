"""From-scratch classifiers for the disposable-zone miner.

The paper selected a LAD decision tree after comparing it against
naive Bayes, nearest neighbours, neural networks and logistic
regression (Section V-C); all five are implemented here behind the
shared :class:`BinaryClassifier` interface.
"""

from repro.core.classifier.base import BinaryClassifier, Standardizer
from repro.core.classifier.cart import DecisionTreeClassifier
from repro.core.classifier.compiled import CompiledLadTree, compile_lad_tree
from repro.core.classifier.knn import KNearestNeighbors
from repro.core.classifier.lad_tree import LadTreeClassifier
from repro.core.classifier.logistic import LogisticRegressionClassifier
from repro.core.classifier.mlp import NeuralNetworkClassifier
from repro.core.classifier.model_selection import (
    ConfusionCounts,
    CrossValidationResult,
    RocCurve,
    confusion_at,
    cross_validate,
    evaluate_classifiers,
    roc_curve,
    stratified_kfold_indices,
)
from repro.core.classifier.naive_bayes import GaussianNaiveBayes
from repro.core.classifier.persistence import (ModelFormatError,
                                               compiled_from_dict,
                                               compiled_to_dict,
                                               lad_tree_from_dict,
                                               lad_tree_to_dict,
                                               load_compiled_lad_tree,
                                               load_lad_tree,
                                               save_compiled_lad_tree,
                                               save_lad_tree)
from repro.core.classifier.stump import RegressionStump

__all__ = [
    "BinaryClassifier",
    "Standardizer",
    "DecisionTreeClassifier",
    "RegressionStump",
    "LadTreeClassifier",
    "CompiledLadTree", "compile_lad_tree",
    "GaussianNaiveBayes",
    "ModelFormatError", "lad_tree_from_dict", "lad_tree_to_dict",
    "load_lad_tree", "save_lad_tree",
    "compiled_from_dict", "compiled_to_dict",
    "load_compiled_lad_tree", "save_compiled_lad_tree",
    "KNearestNeighbors",
    "LogisticRegressionClassifier",
    "NeuralNetworkClassifier",
    "ConfusionCounts",
    "CrossValidationResult",
    "RocCurve",
    "confusion_at",
    "cross_validate",
    "evaluate_classifiers",
    "roc_curve",
    "stratified_kfold_indices",
]
