"""Model persistence for the LAD tree.

A production deployment trains the classifier once on the labeled
zones and then ships the model to the daily mining jobs; this module
serialises a trained :class:`LadTreeClassifier` to a small JSON
document (stumps are four numbers each) and back.  The format is
versioned, and load rejects anything it does not recognise.

Two formats ship: ``repro-lad-tree-v1`` (one object per stump — the
training-side interchange form) and ``repro-lad-tree-compiled-v1``
(parallel arrays — the serving form consumed by
:class:`~repro.core.classifier.compiled.CompiledLadTree`).
:func:`load_compiled_lad_tree` accepts either and always hands back a
compiled model, so the ``repro serve`` daemon can point at whichever
artifact the training job produced.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.classifier.compiled import CompiledLadTree, compile_lad_tree
from repro.core.classifier.lad_tree import LadTreeClassifier
from repro.core.classifier.stump import RegressionStump

__all__ = ["save_lad_tree", "load_lad_tree", "lad_tree_to_dict",
           "lad_tree_from_dict", "ModelFormatError",
           "save_compiled_lad_tree", "load_compiled_lad_tree",
           "compiled_to_dict", "compiled_from_dict"]

_FORMAT = "repro-lad-tree-v1"
_COMPILED_FORMAT = "repro-lad-tree-compiled-v1"

PathLike = Union[str, Path]


class ModelFormatError(ValueError):
    """Raised when a model document is malformed or the wrong kind."""


def lad_tree_to_dict(model: LadTreeClassifier) -> dict:
    """Serialisable representation of a *fitted* LAD tree."""
    if not model.stumps_:
        raise ModelFormatError("model is not fitted")
    return {
        "format": _FORMAT,
        "n_rounds": model.n_rounds,
        "z_clip": model.z_clip,
        "weight_floor": model.weight_floor,
        "prior_f": model.prior_f_,
        "stumps": [
            {"feature": stump.feature, "threshold": stump.threshold,
             "left": stump.left_value, "right": stump.right_value}
            for stump in model.stumps_
        ],
    }


def lad_tree_from_dict(document: dict) -> LadTreeClassifier:
    """Rebuild a fitted LAD tree from :func:`lad_tree_to_dict` output."""
    if not isinstance(document, dict) \
            or document.get("format") != _FORMAT:
        raise ModelFormatError(
            f"not a {_FORMAT} document: {document.get('format')!r}"
            if isinstance(document, dict) else "not a mapping")
    try:
        model = LadTreeClassifier(n_rounds=int(document["n_rounds"]),
                                  z_clip=float(document["z_clip"]),
                                  weight_floor=float(
                                      document["weight_floor"]))
        model.prior_f_ = float(document["prior_f"])
        model.stumps_ = [
            RegressionStump(feature=int(stump["feature"]),
                            threshold=float(stump["threshold"]),
                            left_value=float(stump["left"]),
                            right_value=float(stump["right"]))
            for stump in document["stumps"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(f"malformed model document: {exc}") from exc
    if not model.stumps_:
        raise ModelFormatError("model document contains no stumps")
    return model


def compiled_to_dict(model: CompiledLadTree) -> dict:
    """Serialisable representation of a compiled LAD tree."""
    return {
        "format": _COMPILED_FORMAT,
        "prior_f": model.prior_f,
        "features": model.features.tolist(),
        "thresholds": model.thresholds.tolist(),
        "left": model.left_values.tolist(),
        "right": model.right_values.tolist(),
    }


def compiled_from_dict(document: dict) -> CompiledLadTree:
    """Rebuild a compiled LAD tree from :func:`compiled_to_dict` output."""
    if not isinstance(document, dict) \
            or document.get("format") != _COMPILED_FORMAT:
        raise ModelFormatError(
            f"not a {_COMPILED_FORMAT} document: {document.get('format')!r}"
            if isinstance(document, dict) else "not a mapping")
    try:
        model = CompiledLadTree(
            features=np.array([int(value) for value
                               in document["features"]], dtype=np.int64),
            thresholds=np.array([float(value) for value
                                 in document["thresholds"]],
                                dtype=np.float64),
            left_values=np.array([float(value) for value
                                  in document["left"]], dtype=np.float64),
            right_values=np.array([float(value) for value
                                   in document["right"]], dtype=np.float64),
            prior_f=float(document["prior_f"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(
            f"malformed compiled-model document: {exc}") from exc
    return model


def save_lad_tree(model: LadTreeClassifier, path: PathLike) -> None:
    """Write a fitted model to ``path`` as JSON."""
    document = lad_tree_to_dict(model)
    Path(path).write_text(json.dumps(document, indent=1))


def save_compiled_lad_tree(model: CompiledLadTree, path: PathLike) -> None:
    """Write a compiled model to ``path`` as JSON."""
    Path(path).write_text(json.dumps(compiled_to_dict(model), indent=1))


def _read_document(path: PathLike) -> dict:
    """Parse the JSON document at ``path``; errors name the file."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ModelFormatError(f"{path}: model document is not a mapping")
    return document


def load_lad_tree(path: PathLike) -> LadTreeClassifier:
    """Load a model written by :func:`save_lad_tree`."""
    return lad_tree_from_dict(_read_document(path))


def load_compiled_lad_tree(path: PathLike) -> CompiledLadTree:
    """Load a serving model from ``path``.

    Accepts both on-disk formats: a ``repro-lad-tree-compiled-v1``
    document loads directly; a ``repro-lad-tree-v1`` (stump-object)
    document is compiled on the way in.  Anything else raises
    :class:`ModelFormatError` naming the offending file.
    """
    document = _read_document(path)
    kind = document.get("format")
    if kind == _COMPILED_FORMAT:
        return compiled_from_dict(document)
    if kind == _FORMAT:
        return compile_lad_tree(lad_tree_from_dict(document))
    raise ModelFormatError(
        f"{path}: not a {_FORMAT} or {_COMPILED_FORMAT} document: {kind!r}")
