"""Model persistence for the LAD tree.

A production deployment trains the classifier once on the labeled
zones and then ships the model to the daily mining jobs; this module
serialises a trained :class:`LadTreeClassifier` to a small JSON
document (stumps are four numbers each) and back.  The format is
versioned, and load rejects anything it does not recognise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.classifier.lad_tree import LadTreeClassifier
from repro.core.classifier.stump import RegressionStump

__all__ = ["save_lad_tree", "load_lad_tree", "lad_tree_to_dict",
           "lad_tree_from_dict", "ModelFormatError"]

_FORMAT = "repro-lad-tree-v1"

PathLike = Union[str, Path]


class ModelFormatError(ValueError):
    """Raised when a model document is malformed or the wrong kind."""


def lad_tree_to_dict(model: LadTreeClassifier) -> dict:
    """Serialisable representation of a *fitted* LAD tree."""
    if not model.stumps_:
        raise ModelFormatError("model is not fitted")
    return {
        "format": _FORMAT,
        "n_rounds": model.n_rounds,
        "z_clip": model.z_clip,
        "weight_floor": model.weight_floor,
        "prior_f": model.prior_f_,
        "stumps": [
            {"feature": stump.feature, "threshold": stump.threshold,
             "left": stump.left_value, "right": stump.right_value}
            for stump in model.stumps_
        ],
    }


def lad_tree_from_dict(document: dict) -> LadTreeClassifier:
    """Rebuild a fitted LAD tree from :func:`lad_tree_to_dict` output."""
    if not isinstance(document, dict) \
            or document.get("format") != _FORMAT:
        raise ModelFormatError(
            f"not a {_FORMAT} document: {document.get('format')!r}"
            if isinstance(document, dict) else "not a mapping")
    try:
        model = LadTreeClassifier(n_rounds=int(document["n_rounds"]),
                                  z_clip=float(document["z_clip"]),
                                  weight_floor=float(
                                      document["weight_floor"]))
        model.prior_f_ = float(document["prior_f"])
        model.stumps_ = [
            RegressionStump(feature=int(stump["feature"]),
                            threshold=float(stump["threshold"]),
                            left_value=float(stump["left"]),
                            right_value=float(stump["right"]))
            for stump in document["stumps"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise ModelFormatError(f"malformed model document: {exc}") from exc
    if not model.stumps_:
        raise ModelFormatError("model document contains no stumps")
    return model


def save_lad_tree(model: LadTreeClassifier, path: PathLike) -> None:
    """Write a fitted model to ``path`` as JSON."""
    document = lad_tree_to_dict(model)
    Path(path).write_text(json.dumps(document, indent=1))


def load_lad_tree(path: PathLike) -> LadTreeClassifier:
    """Load a model written by :func:`save_lad_tree`."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ModelFormatError(f"invalid JSON: {exc}") from exc
    return lad_tree_from_dict(document)
