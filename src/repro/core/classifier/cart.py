"""CART-style binary decision tree (Gini impurity).

Included alongside the paper's model-selection candidates as the most
common decision-tree baseline: a greedy top-down tree with Gini splits,
depth/leaf-size limits, and leaf class-probability estimates (Laplace
smoothed).  Useful both as a comparison point and as a readable
contrast to the boosted LAD tree the paper selected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.classifier.base import BinaryClassifier, check_training_data

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """Internal or leaf node of the tree."""

    probability: float                  # P(class=1) at this node
    feature: int = -1                   # -1 marks a leaf
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _gini(positives: float, total: float) -> float:
    if total <= 0:
        return 0.0
    p = positives / total
    return 2.0 * p * (1.0 - p)


def _best_split(X: np.ndarray, y: np.ndarray, max_candidates: int) \
        -> Optional[Tuple[int, float, float]]:
    """(feature, threshold, impurity decrease) or None."""
    n, n_features = X.shape
    total_pos = float(y.sum())
    parent_impurity = _gini(total_pos, n)
    best = None
    best_gain = 1e-12
    for j in range(n_features):
        order = np.argsort(X[:, j], kind="stable")
        col = X[order, j]
        labels = y[order]
        cum_pos = np.cumsum(labels)
        distinct = np.nonzero(np.diff(col) > 0)[0]
        if distinct.size == 0:
            continue
        if distinct.size > max_candidates:
            pick = np.linspace(0, distinct.size - 1, max_candidates)
            distinct = distinct[pick.astype(int)]
        for i in distinct:
            n_left = i + 1
            n_right = n - n_left
            pos_left = float(cum_pos[i])
            pos_right = total_pos - pos_left
            weighted = (n_left / n) * _gini(pos_left, n_left) \
                + (n_right / n) * _gini(pos_right, n_right)
            gain = parent_impurity - weighted
            if gain > best_gain:
                best_gain = gain
                best = (j, 0.5 * (col[i] + col[i + 1]), gain)
    return best


class DecisionTreeClassifier(BinaryClassifier):
    """Greedy Gini CART tree for binary classification."""

    def __init__(self, max_depth: int = 6, min_samples_leaf: int = 2,
                 max_candidates: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_candidates = max_candidates
        self._root: Optional[_Node] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        X, y = check_training_data(X, y)
        self._root = self._grow(X, y, depth=0)
        return self

    def _leaf_probability(self, y: np.ndarray) -> float:
        # Laplace smoothing keeps probabilities off the 0/1 walls.
        return (float(y.sum()) + 1.0) / (len(y) + 2.0)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(probability=self._leaf_probability(y))
        if (depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf
                or y.min() == y.max()):
            return node
        split = _best_split(X, y, self.max_candidates)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf \
                or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=float)
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold \
                    else node.right
            out[i] = node.probability
        return out

    def depth(self) -> int:
        """Actual depth of the grown tree."""
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self._root)

    def n_leaves(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)
        return walk(self._root)
