"""Compiled LAD tree: the stump ensemble as parallel numpy arrays.

:class:`~repro.core.classifier.lad_tree.LadTreeClassifier` scores a
batch by looping over its stump objects — one ``np.where`` per stump
per call, plus the Python dispatch between them.  The serving engine
(:mod:`repro.service`) instead *compiles* the fitted ensemble into
four parallel arrays (feature index, threshold, left value, right
value), so scoring N feature vectors is one gather + ``where`` per
ensemble, with no per-stump Python object dispatch:

    contrib = where(X[:, features] <= thresholds, left, right)   # (N, T)
    F(X)    = prior_f + 0.5*contrib[:, 0] + 0.5*contrib[:, 1] + ...

Determinism note: the stump contributions are accumulated column by
column in stump order — the *same association order* as the
interpreted model's ``F = F + 0.5 * stump.predict(X)`` loop, and
elementwise per row.  A single ``contrib.sum(axis=1)`` would be
faster but numpy's pairwise reduction regroups the additions by
array shape, so a 1-row call and an N-row call could disagree in the
last ulp.  With the sequential accumulation, ``decision_function``
on a 1-row matrix and on the same row inside an N-row matrix return
bit-identical floats, and both match the interpreted model exactly.
The serving engine's batch-vs-oracle equality guarantee rests on
this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classifier.lad_tree import LadTreeClassifier

__all__ = ["CompiledLadTree", "compile_lad_tree"]


@dataclass(frozen=True, eq=False)
class CompiledLadTree:
    """A fitted LAD tree flattened into parallel stump arrays.

    ``eq=False``: the generated dataclass ``__eq__`` would compare the
    numpy members elementwise and raise on ``bool(array)``; identity
    comparison is the useful semantics for a loaded model object.
    """

    features: np.ndarray      # int64  (T,) feature index per stump
    thresholds: np.ndarray    # float64 (T,)
    left_values: np.ndarray   # float64 (T,) prediction when x <= threshold
    right_values: np.ndarray  # float64 (T,)
    prior_f: float

    def __post_init__(self) -> None:
        arrays = (self.features, self.thresholds,
                  self.left_values, self.right_values)
        lengths = {array.shape for array in arrays}
        if len(lengths) != 1 or any(array.ndim != 1 for array in arrays):
            raise ValueError(
                f"stump arrays must be 1-d and parallel, got shapes "
                f"{[array.shape for array in arrays]}")
        if self.n_stumps == 0:
            raise ValueError("compiled model has no stumps")
        if int(self.features.min()) < 0:
            raise ValueError("negative feature index in compiled model")

    @property
    def n_stumps(self) -> int:
        return int(self.features.shape[0])

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """The additive score F(x) for every row of ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"expected a 2-d feature matrix, got {X.ndim}-d")
        if X.shape[1] <= int(self.features.max()):
            raise ValueError(
                f"feature matrix has {X.shape[1]} columns but the model "
                f"tests feature {int(self.features.max())}")
        contrib = np.where(X[:, self.features] <= self.thresholds,
                           self.left_values, self.right_values)
        # Accumulate in stump order (NOT contrib.sum(axis=1)): numpy's
        # pairwise row reduction regroups additions by shape, which
        # would make scores depend on the batch size.  See the module
        # docstring's determinism note.
        F = np.full(X.shape[0], self.prior_f)
        for column in range(self.n_stumps):
            F = F + 0.5 * contrib[:, column]
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(disposable) per row — same link as the interpreted model."""
        F = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-2.0 * F))


def compile_lad_tree(model: LadTreeClassifier) -> CompiledLadTree:
    """Flatten a *fitted* LAD tree into a :class:`CompiledLadTree`."""
    if not model.stumps_:
        raise ValueError("cannot compile an unfitted LadTreeClassifier")
    return CompiledLadTree(
        features=np.array([stump.feature for stump in model.stumps_],
                          dtype=np.int64),
        thresholds=np.array([stump.threshold for stump in model.stumps_],
                            dtype=np.float64),
        left_values=np.array([stump.left_value for stump in model.stumps_],
                             dtype=np.float64),
        right_values=np.array([stump.right_value for stump in model.stumps_],
                              dtype=np.float64),
        prior_f=float(model.prior_f_))
